//! Integration: causal request tracing, per-stage CPU profiling, and the
//! SLO burn-rate watchdog, exercised through the public HTTP surface.
//!
//! 1. A socket-level client sends W3C `traceparent` headers, drives a
//!    co-batched two-request load on `VirtualClock`, and reads the span
//!    tree back over `GET /v1/trace/{id}`: the shared batch span links
//!    both client trace ids, per-shard scan spans nest under it, and
//!    every span boundary is pinned to the exact virtual tick the round
//!    ran at (no real time leaks into recorded spans).
//! 2. `GET /v1/profile` reports nonzero per-stage CPU for the scan stage:
//!    stage sections accrue real `CLOCK_THREAD_CPUTIME_ID` deltas even
//!    while the wall clock is virtual, which is exactly the wall-vs-CPU
//!    split the profiler exists to expose.
//! 3. Span trees emitted by the plane are well-formed under proptest:
//!    children nest within their parents and the batch span covers every
//!    member's search span (the `tree_violations` checker is the oracle).
//! 4. The Prometheus exposition is validated line by line — HELP/TYPE
//!    precede every family's samples, counters end in `_total`, label
//!    values parse under the escaping rules — and its HELP/TYPE skeleton
//!    is pinned by a golden file (`VLITE_UPDATE_GOLDEN=1` regenerates).

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Barrier};

use proptest::prelude::*;
use vectorlite_rag::core::RealConfig;
use vectorlite_rag::metrics::spans::tree_violations;
use vectorlite_rag::serve::http::json::Json;
use vectorlite_rag::serve::http::{wire, HttpClient, HttpFrontend};
use vectorlite_rag::serve::trace::{GenSpans, RequestSpanTimes};
use vectorlite_rag::serve::{
    RagServer, ServeConfig, TraceConfig, TraceId, TracePlane, VirtualClock,
};
use vectorlite_rag::sim::{SimDuration, SimTime};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 4_000,
        dim: 12,
        n_centers: 16,
        zipf_exponent: 1.1,
        noise: 0.25,
        seed: 23,
    })
}

fn config() -> ServeConfig {
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(32),
        nprobe: 8,
        top_k: 8,
        n_profile_queries: 256,
        slo_search: 0.050,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0xab5,
        coverage_override: Some(0.3),
    };
    config
}

/// GET `path` and decode the JSON body, asserting the given status.
fn get_json(client: &mut HttpClient, path: &str, want_status: u16) -> Json {
    let response = client.get(path).expect("exchange");
    assert_eq!(
        response.status,
        want_status,
        "GET {path}: {}",
        String::from_utf8_lossy(&response.body)
    );
    response.json().expect("JSON body")
}

/// The `spans` array of a `/v1/trace/{id}` document.
fn spans_of(doc: &Json) -> &[Json] {
    doc.get("spans")
        .and_then(Json::as_array)
        .expect("trace doc has a spans array")
}

/// Finds the first span named `name` in a trace document.
fn find_span<'a>(doc: &'a Json, name: &str) -> Option<&'a Json> {
    spans_of(doc)
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
}

/// Polls `/v1/trace/{id}` until the trace exists *and* contains a span
/// named `span_name`. Span records land after the client's reply is sent
/// (the dispatcher records the batch span after unblocking the tickets),
/// so visibility is eventually-consistent; the poll is bounded and uses
/// `yield_now` only — no real sleeps, so `VirtualClock` determinism holds.
fn poll_trace(client: &mut HttpClient, id_hex: &str, span_name: &str) -> Json {
    for _ in 0..200_000 {
        let response = client
            .get(&format!("/v1/trace/{id_hex}"))
            .expect("exchange");
        if response.status == 200 {
            let doc = response.json().expect("trace JSON");
            if find_span(&doc, span_name).is_some() {
                return doc;
            }
        }
        std::thread::yield_now();
    }
    panic!("trace {id_hex} never exposed a `{span_name}` span");
}

/// Asserts every span boundary in the document equals `tick_s` exactly:
/// on `VirtualClock` no time passes unless the test advances it, so a
/// round that never advances must pin every boundary to its launch tick.
fn assert_pinned_to_tick(doc: &Json, tick_s: f64, what: &str) {
    for span in spans_of(doc) {
        let name = span.get("name").and_then(Json::as_str).unwrap_or("?");
        let start = span.get("start_s").and_then(Json::as_f64).expect("start_s");
        let end = span.get("end_s").and_then(Json::as_f64).expect("end_s");
        assert!(
            start == tick_s && end == tick_s,
            "{what} span `{name}` not pinned to tick {tick_s}: [{start}, {end}]"
        );
    }
}

#[test]
fn co_batched_requests_share_a_batch_span_pinned_to_exact_ticks() {
    let corpus = corpus();
    let config = config();
    let clock = Arc::new(VirtualClock::new());
    let server =
        RagServer::start_with_clock(&corpus, config.clone(), clock.clone()).expect("starts");
    let frontend = HttpFrontend::bind(server, &config.http).expect("frontend binds");
    let addr = frontend.addr();
    let body = wire::search_request_to_json(corpus.vectors.get(0)).render();

    // Co-batching two independent sockets is a race the one-batch-in-flight
    // protocol makes likely but not certain: an in-process "plug" occupies
    // the batch slot while both clients post behind a barrier, so the two
    // requests usually queue together and drain into the next batch as one.
    // Each round runs on a fresh exact tick; retry until a round wins.
    let mut won = false;
    for round in 1..=40u64 {
        let tick = clock.advance(SimDuration::from_millis(5.0));
        let tick_s = tick.as_nanos() as f64 / 1e9;
        let ids = [
            (0xAAAA_u128 << 64) | u128::from(round),
            (0xBBBB_u128 << 64) | u128::from(round),
        ];
        let plug = frontend
            .server()
            .submit(corpus.vectors.get(1).to_vec())
            .expect("plug admitted");
        let barrier = Arc::new(Barrier::new(2));
        let handles: Vec<_> = ids
            .iter()
            .map(|&id| {
                let barrier = Arc::clone(&barrier);
                let body = body.clone();
                std::thread::spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("client connects");
                    let parent = format!("00-{id:032x}-00000000000000aa-01");
                    barrier.wait();
                    client
                        .post_json("/v1/search", &[("traceparent", &parent)], &body)
                        .expect("exchange")
                })
            })
            .collect();
        let responses: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect();
        plug.wait().expect("plug completes");

        let mut client = HttpClient::connect(addr).expect("client connects");
        let mut batch_ids = Vec::new();
        for (&id, response) in ids.iter().zip(&responses) {
            assert_eq!(response.status, 200, "search must succeed");
            let id_hex = format!("{id:032x}");
            // The response propagates the client's trace id in both the
            // W3C header and the JSON body.
            let echoed = response.header("traceparent").expect("traceparent header");
            assert_eq!(
                echoed.split('-').nth(1),
                Some(id_hex.as_str()),
                "response traceparent must carry the client's trace id"
            );
            let body_json = response.json().expect("search response JSON");
            assert_eq!(
                body_json.get("trace_id").and_then(Json::as_str),
                Some(id_hex.as_str()),
                "search body must carry the client's trace id"
            );
            let doc = poll_trace(&mut client, &id_hex, "search");
            let search = find_span(&doc, "search").expect("search span");
            let links = search
                .get("links")
                .and_then(Json::as_array)
                .expect("search span links");
            assert_eq!(links.len(), 1, "search links exactly its batch trace");
            batch_ids.push((
                id_hex,
                links[0].as_str().expect("batch link is hex").to_string(),
                doc,
            ));
        }

        if batch_ids[0].1 != batch_ids[1].1 {
            continue; // the race lost this round; retry on the next tick
        }

        // The shared batch span: root of its own trace, linking every
        // member, with the per-shard scan spans nested beneath it.
        let batch_hex = batch_ids[0].1.clone();
        let batch_doc = poll_trace(&mut client, &batch_hex, "batch");
        let batch_span = find_span(&batch_doc, "batch").expect("batch span");
        assert!(
            batch_span.get("parent_id") == Some(&Json::Null),
            "the batch span is a root span"
        );
        let batch_span_id = batch_span.get("span_id").and_then(Json::as_u64).unwrap();
        let batch_links: Vec<&str> = batch_span
            .get("links")
            .and_then(Json::as_array)
            .expect("batch links")
            .iter()
            .filter_map(Json::as_str)
            .collect();
        for (id_hex, _, _) in &batch_ids {
            assert!(
                batch_links.contains(&id_hex.as_str()),
                "batch span must link member {id_hex} (links: {batch_links:?})"
            );
        }
        let scan_names: Vec<&str> = spans_of(&batch_doc)
            .iter()
            .filter(|s| {
                s.get("name")
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.starts_with("scan:"))
            })
            .map(|s| {
                assert_eq!(
                    s.get("parent_id").and_then(Json::as_u64),
                    Some(batch_span_id),
                    "scan spans nest under the batch span"
                );
                s.get("name").and_then(Json::as_str).unwrap()
            })
            .collect();
        assert!(
            scan_names.iter().any(|n| n.starts_with("scan:shard")),
            "expected per-shard scan children, got {scan_names:?}"
        );

        // Every boundary — in both request trees and the batch tree — is
        // the launch tick, exactly: admission, batch launch, merge, and
        // completion all happened at the same virtual instant.
        assert_pinned_to_tick(&batch_doc, tick_s, "batch");
        for (id_hex, _, doc) in &batch_ids {
            assert_pinned_to_tick(doc, tick_s, "request");
            for name in ["request", "queue"] {
                assert!(
                    find_span(doc, name).is_some(),
                    "request tree {id_hex} missing `{name}` span"
                );
            }
        }

        // The Chrome trace_event export of the same trace.
        let chrome = get_json(
            &mut client,
            &format!("/v1/trace/{batch_hex}?format=chrome"),
            200,
        );
        let events = chrome
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty(), "chrome export must carry events");
        for event in events {
            assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
            assert!(event.get("args").and_then(|a| a.get("trace_id")).is_some());
        }

        // Error surface: malformed ids 400, unknown ids 404, bad formats 400.
        let bad = client.get("/v1/trace/not-hex").expect("exchange");
        assert_eq!(bad.status, 400);
        let missing = client
            .get(&format!("/v1/trace/{}", "f".repeat(32)))
            .expect("exchange");
        assert_eq!(missing.status, 404);
        let format = client
            .get(&format!("/v1/trace/{batch_hex}?format=bogus"))
            .expect("exchange");
        assert_eq!(format.status, 400);

        won = true;
        break;
    }
    assert!(
        won,
        "no round co-batched the two socket requests in 40 tries"
    );
    frontend.shutdown();
}

#[test]
fn profile_reports_scan_stage_cpu_and_watchdog_surfaces_render() {
    let corpus = corpus();
    let config = config();
    let clock = Arc::new(VirtualClock::new());
    let server =
        RagServer::start_with_clock(&corpus, config.clone(), clock.clone()).expect("starts");
    let frontend = HttpFrontend::bind(server, &config.http).expect("frontend binds");

    let queries = corpus.queries(60, 99);
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| frontend.server().submit(q.to_vec()).expect("admitted"))
        .collect();
    for ticket in tickets {
        ticket.wait().expect("completed");
    }
    // The background sampler never spawns on a virtual clock (a real-time
    // poller would break determinism); tick it explicitly instead.
    for _ in 0..4 {
        frontend.server().trace_plane().sample_now();
    }

    let mut client = HttpClient::connect(frontend.addr()).expect("client connects");
    let profile = get_json(&mut client, "/v1/profile", 200);
    assert_eq!(profile.get("enabled").and_then(Json::as_bool), Some(true));
    let stages = profile
        .get("stages")
        .and_then(Json::as_array)
        .expect("stages array");
    let scan = stages
        .iter()
        .find(|s| s.get("stage").and_then(Json::as_str) == Some("shard_scan"))
        .expect("shard_scan stage row");
    let sections = scan.get("sections").and_then(Json::as_u64).unwrap_or(0);
    assert!(sections > 0, "scan stage recorded no instrumented sections");
    // Virtual wall time never advanced while scans ran, so the wall column
    // is zero — but the threads burned real CPU, which is the whole point
    // of the wall-vs-CPU split.
    assert_eq!(scan.get("wall_s").and_then(Json::as_f64), Some(0.0));
    #[cfg(target_os = "linux")]
    {
        assert_eq!(
            profile.get("cpu_clock_supported").and_then(Json::as_bool),
            Some(true)
        );
        let cpu_s = scan.get("cpu_s").and_then(Json::as_f64).expect("cpu_s");
        assert!(
            cpu_s > 0.0,
            "scan stage must accrue thread CPU time (got {cpu_s})"
        );
        let collapsed = profile
            .get("collapsed")
            .and_then(Json::as_str)
            .expect("collapsed stacks");
        assert!(
            collapsed
                .lines()
                .any(|l| l.starts_with("vlite;shard_scan ")),
            "collapsed stacks missing the scan stage: {collapsed:?}"
        );
    }

    // The SLO burn-rate watchdog surface: all three signals report, each
    // with a level, multi-window burn rates, and the configured target.
    let alerts = get_json(&mut client, "/v1/alerts", 200);
    assert_eq!(alerts.get("enabled").and_then(Json::as_bool), Some(true));
    let rows = alerts
        .get("alerts")
        .and_then(Json::as_array)
        .expect("alerts array");
    let signals: HashSet<&str> = rows
        .iter()
        .filter_map(|r| r.get("signal").and_then(Json::as_str))
        .collect();
    assert_eq!(
        signals,
        HashSet::from(["search", "ttft", "deadline"]),
        "the watchdog tracks all three SLO signals"
    );
    for row in rows {
        let level = row.get("level").and_then(Json::as_str).expect("level");
        assert!(
            ["ok", "warn", "critical"].contains(&level),
            "unexpected alert level {level:?}"
        );
        assert!(row.get("fast_burn").and_then(Json::as_f64).is_some());
        assert!(row.get("slow_burn").and_then(Json::as_f64).is_some());
    }

    // Journal severity: the filter narrows, an unknown severity is a 400,
    // and the healthz document reports the build version (satellites).
    let events = get_json(&mut client, "/v1/events?severity=critical", 200);
    assert_eq!(
        events.get("severity").and_then(Json::as_str),
        Some("critical")
    );
    for event in events
        .get("events")
        .and_then(Json::as_array)
        .expect("events array")
    {
        assert_eq!(
            event.get("severity").and_then(Json::as_str),
            Some("critical")
        );
    }
    let bad = client.get("/v1/events?severity=loud").expect("exchange");
    assert_eq!(bad.status, 400, "unknown severity must 400");

    let health = get_json(&mut client, "/healthz", 200);
    let version = health
        .get("version")
        .and_then(Json::as_str)
        .expect("healthz carries the build version");
    assert!(
        !version.is_empty() && version.contains('.'),
        "implausible version {version:?}"
    );

    frontend.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Driving the plane through its full recording surface — batches,
    /// per-shard scans, member requests (with and without generation),
    /// and migrations stalling an in-flight batch — always yields
    /// well-formed span trees, and the batch span covers every member's
    /// search span.
    #[test]
    fn span_trees_are_well_formed(
        rounds in prop::collection::vec(
            (
                1usize..4,    // members per batch
                0.0f64..10.0, // admission time
                (
                    prop::collection::vec(0.0f64..0.5, 3..4), // queue/search/tail widths
                    any::<bool>(),                            // generation phase?
                    any::<bool>(),                            // migration mid-batch?
                ),
            ),
            1..8,
        ),
    ) {
        let plane = TracePlane::new(&TraceConfig::default(), 0x5eed);
        let mut batches: Vec<(Vec<TraceId>, u128)> = Vec::new();
        let mut uid = 0u128;
        for (n_members, t0, (widths, with_gen, with_migration)) in rounds {
            let t1 = t0 + widths[0];
            let t2 = t1 + widths[1];
            let t3 = t2 + widths[2];
            let members: Vec<TraceId> = (0..n_members)
                .map(|_| {
                    uid += 1;
                    TraceId(uid)
                })
                .collect();
            let ctx = plane.begin_batch(&members).expect("tracing enabled");
            for shard in 0..2 {
                plane.record_scan(
                    &ctx,
                    format!("scan:shard{shard}"),
                    SimTime::from_secs_f64(t1),
                    SimTime::from_secs_f64(t2),
                );
            }
            if with_migration {
                // Mid-batch: the migration trace links the stalled batch and
                // the batch trace gets a zero-width stall marker back.
                plane.record_migration(
                    "repartition",
                    SimTime::from_secs_f64(t1),
                    SimTime::from_secs_f64(t2),
                );
            }
            plane.end_batch(&ctx, SimTime::from_secs_f64(t1), SimTime::from_secs_f64(t2));
            for &member in &members {
                let gen = if with_gen {
                    Some(GenSpans {
                        queue_s: widths[2] * 0.25,
                        prefill_s: widths[2] * 0.25,
                        decode_s: widths[2] * 0.25,
                    })
                } else {
                    None
                };
                plane.record_request(
                    member,
                    Some(ctx.trace_id),
                    RequestSpanTimes {
                        enqueued_s: t0,
                        search_start_s: t1,
                        search_end_s: t2,
                        end_s: t3,
                    },
                    gen,
                    None,
                );
            }
            batches.push((members, ctx.trace_id));
        }

        for (members, batch_id) in batches {
            let batch_spans = plane.trace_spans(batch_id).expect("batch trace held");
            let violations = tree_violations(&batch_spans);
            prop_assert!(violations.is_empty(), "batch trace malformed: {violations:?}");
            let batch = batch_spans
                .iter()
                .find(|s| s.name == "batch")
                .expect("batch span recorded");
            for member in &members {
                prop_assert!(
                    batch.links.contains(&member.0),
                    "batch span must link member {:032x}",
                    member.0
                );
                let spans = plane.trace_spans(member.0).expect("member trace held");
                let violations = tree_violations(&spans);
                prop_assert!(violations.is_empty(), "member trace malformed: {violations:?}");
                let search = spans
                    .iter()
                    .find(|s| s.name == "search")
                    .expect("search span recorded");
                prop_assert!(
                    search.start_s >= batch.start_s - 1e-9 && search.end_s <= batch.end_s + 1e-9,
                    "batch span [{}, {}] does not cover member search span [{}, {}]",
                    batch.start_s,
                    batch.end_s,
                    search.start_s,
                    search.end_s
                );
            }
        }
    }
}

/// Splits a Prometheus sample key into name and parsed labels, enforcing
/// the exposition's escaping rules (`\\`, `\"`, `\n` inside values).
fn parse_sample_key(key: &str) -> Result<(String, Vec<(String, String)>), String> {
    let Some(brace) = key.find('{') else {
        return Ok((key.to_string(), Vec::new()));
    };
    let name = key[..brace].to_string();
    let rest = &key[brace + 1..];
    let mut labels = Vec::new();
    let mut chars = rest.chars().peekable();
    loop {
        if chars.peek() == Some(&'}') {
            chars.next();
            break;
        }
        let mut label = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            if !(c.is_ascii_alphanumeric() || c == '_') {
                return Err(format!("bad label name char {c:?} in {key}"));
            }
            label.push(c);
        }
        if chars.next() != Some('"') {
            return Err(format!("label value must be quoted in {key}"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in {key}")),
                },
                Some('"') => break,
                Some(c) => value.push(c),
                None => return Err(format!("unterminated label value in {key}")),
            }
        }
        labels.push((label, value));
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            other => {
                return Err(format!(
                    "expected , or }} after value, got {other:?} in {key}"
                ))
            }
        }
    }
    if chars.next().is_some() {
        return Err(format!("trailing garbage after labels in {key}"));
    }
    Ok((name, labels))
}

#[test]
fn prometheus_exposition_is_well_formed_and_matches_golden() {
    let corpus = corpus();
    let config = config();
    // A virtual clock keeps the scrape deterministic: the control loop and
    // sampler stay quiescent, so the family skeleton is a pure function of
    // the configuration and golden-file comparison cannot flake.
    let clock = Arc::new(VirtualClock::new());
    let server =
        RagServer::start_with_clock(&corpus, config.clone(), clock.clone()).expect("starts");
    let frontend = HttpFrontend::bind(server, &config.http).expect("frontend binds");
    let mut client = HttpClient::connect(frontend.addr()).expect("client connects");
    let body = wire::search_request_to_json(corpus.vectors.get(0)).render();
    for _ in 0..8 {
        let response = client
            .post_json("/v1/search", &[], &body)
            .expect("exchange");
        assert_eq!(response.status, 200);
    }

    let scrape = client.get("/v1/metrics").expect("scrape");
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body).expect("UTF-8 exposition");
    frontend.shutdown();

    let mut help: HashSet<String> = HashSet::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut histogram_parts: HashMap<String, HashSet<&'static str>> = HashMap::new();
    let mut build_info_seen = false;
    let mut skeleton = String::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a family");
            assert!(
                rest.len() > name.len() + 1,
                "HELP for {name} carries no text"
            );
            assert!(help.insert(name.to_string()), "duplicate HELP for {name}");
            skeleton.push_str(line);
            skeleton.push('\n');
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a family");
            let kind = parts.next().expect("TYPE carries a kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "family {name} has unknown type {kind}"
            );
            if kind == "counter" {
                assert!(
                    name.ends_with("_total"),
                    "counter family {name} must end in _total"
                );
            }
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate TYPE for {name}"
            );
            skeleton.push_str(line);
            skeleton.push('\n');
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line {line:?}");

        // A sample: `name{labels} value`. Resolve its family, which must
        // have announced HELP and TYPE on earlier lines.
        let (key, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value),
            "sample {key} has unparseable value {value:?}"
        );
        let (name, labels) = parse_sample_key(key).expect("sample key parses");
        let family = if types.contains_key(&name) {
            name.clone()
        } else {
            let base = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suffix| name.strip_suffix(suffix))
                .unwrap_or_else(|| panic!("sample {name} belongs to no family"));
            assert_eq!(
                types.get(base).map(String::as_str),
                Some("histogram"),
                "series {name} must belong to a histogram family"
            );
            for (suffix, part) in [("_bucket", "bucket"), ("_sum", "sum"), ("_count", "count")] {
                if name.ends_with(suffix) {
                    let parts = histogram_parts.entry(base.to_string()).or_default();
                    parts.insert(part);
                    if part == "bucket" && labels.iter().any(|(k, v)| k == "le" && v == "+Inf") {
                        parts.insert("inf_bucket");
                    }
                }
            }
            base.to_string()
        };
        assert!(
            help.contains(&family),
            "sample {name} appears before (or without) its HELP line"
        );
        if name == "vlite_build_info" {
            build_info_seen = true;
            assert_eq!(value, "1", "build info is a constant 1 gauge");
            assert!(
                labels.iter().any(|(k, v)| k == "version" && !v.is_empty()),
                "build info must carry a version label"
            );
        }
    }
    assert!(build_info_seen, "vlite_build_info missing from exposition");
    for (name, kind) in &types {
        assert!(help.contains(name), "family {name} has TYPE but no HELP");
        if kind == "histogram" {
            if let Some(parts) = histogram_parts.get(name) {
                for part in ["bucket", "inf_bucket", "sum", "count"] {
                    assert!(
                        parts.contains(part),
                        "histogram {name} rendered samples but no {part}"
                    );
                }
            }
        }
    }

    // The HELP/TYPE skeleton is pinned: new families must update the
    // golden on purpose (VLITE_UPDATE_GOLDEN=1), not by accident.
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/metrics_exposition.prom"
    );
    if std::env::var_os("VLITE_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &skeleton).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file exists (regenerate with VLITE_UPDATE_GOLDEN=1)");
    assert_eq!(
        skeleton, golden,
        "Prometheus HELP/TYPE skeleton drifted from the golden file \
         (regenerate with VLITE_UPDATE_GOLDEN=1 if intentional)"
    );
}
