//! Integration: end-to-end retrieval → generation co-scheduling, pinned by
//! a deterministic TTFT harness.
//!
//! Every test here runs on the [`VirtualClock`]: the runtime's timestamps
//! are stepped virtual time, the generation worker's iteration waits
//! advance the clock instead of sleeping, and the recorded latencies are
//! exact functions of the LLM cost model — no wall-clock sleeps, no timing
//! tolerances, byte-identical numbers on every run and machine.
//!
//! Coverage:
//! - TTFT on a scripted sequential arrival sequence equals the cost
//!   model's prefill time to the exact tick (queue and search contribute
//!   zero virtual time), and the phase identity
//!   `ttft = queue + search + gen_queue + prefill` holds exactly.
//! - A scripted queueing sequence on the public [`GenerationStage`] pins
//!   the generation-queue phase boundary to the exact tick.
//! - A two-tenant flood reports nonzero per-tenant TTFT attainment in the
//!   [`ServeReport`], end to end and over the HTTP frontend.
//! - TTFT-keyed control observations trigger an online repartition at a
//!   pinned request index; the identical search-keyed server does not.

use std::sync::Arc;

use vectorlite_rag::core::{RealConfig, UpdateConfig};
use vectorlite_rag::serve::generation::{GenEvent, GenRequest, GenerationStage};
use vectorlite_rag::serve::http::json::Json;
use vectorlite_rag::serve::http::{wire, HttpClient, HttpFrontend};
use vectorlite_rag::serve::loadgen::RotatingQuerySource;
use vectorlite_rag::serve::{
    ControlConfig, GenerationConfig, RagServer, ServeConfig, SloSignal, TenantId, TenantSpec,
    VirtualClock,
};
use vectorlite_rag::sim::{SimDuration, SimTime};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn small_corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 2_000,
        dim: 8,
        n_centers: 16,
        zipf_exponent: 1.0,
        noise: 0.2,
        seed: 7,
    })
}

fn co_scheduled_config() -> ServeConfig {
    let mut config = ServeConfig::small();
    config.generation = Some(GenerationConfig::tiny());
    config
}

#[test]
fn sequential_arrivals_hit_ttft_to_the_exact_tick() {
    let corpus = small_corpus();
    let clock = Arc::new(VirtualClock::new());
    let server = RagServer::start_with_clock(&corpus, co_scheduled_config(), clock.clone())
        .expect("server starts");
    let gen_config = server.generation_config().expect("co-scheduled").clone();

    for i in 0..5 {
        // Distinct arrival ticks: the timeline is scripted by the test.
        clock.advance(SimDuration::from_millis(10.0));
        let ticket = server
            .submit(corpus.vectors.get(i).to_vec())
            .expect("admitted");
        let response = ticket.wait().expect("served");
        let gen = response
            .timings
            .generation
            .expect("co-scheduled server reports generation phases");

        // With one request in flight and a virtual clock, retrieval and
        // queueing consume zero virtual time, so TTFT is the cost model's
        // prefill time for the assembled prompt — exactly.
        let prompt_tokens = gen_config.prompt_tokens(response.neighbors.len());
        let expected_prefill = gen_config.cost.prefill_time(prompt_tokens, 1.0);
        assert_eq!(response.timings.queue, 0.0, "request {i} queue time");
        assert_eq!(response.timings.search, 0.0, "request {i} search time");
        assert_eq!(gen.gen_queue, 0.0, "request {i} generation queue time");
        assert_eq!(
            gen.prefill,
            expected_prefill.as_secs_f64(),
            "request {i} prefill duration must be the cost model's, exactly"
        );
        assert_eq!(
            gen.ttft,
            expected_prefill.as_secs_f64(),
            "request {i} TTFT = retrieval (0) + queue (0) + prefill"
        );
        // The additive phase identity, within one float conversion ulp.
        assert!(
            (gen.ttft
                - (response.timings.queue + response.timings.search + gen.gen_queue + gen.prefill))
                .abs()
                < 1e-12,
            "ttft must decompose into its phases"
        );
        assert!(gen.decode > 0.0, "multi-token output must decode");
        assert!(
            (response.timings.e2e - (gen.ttft + gen.decode)).abs() < 1e-12,
            "e2e must equal ttft + decode"
        );
    }

    let report = server.shutdown();
    assert_eq!(report.completed, 5);
    assert_eq!(report.ttft.count, 5);
    assert_eq!(report.ttft_attainment, 1.0, "sequential TTFTs are ~ms");
}

#[test]
fn scripted_queueing_pins_the_generation_queue_phase_exactly() {
    // Drive the public GenerationStage state machine synchronously, the
    // same way the control loop is unit-tested: max_batch = 1 serializes
    // the engine, output_tokens = 1 completes each request at its prefill,
    // so the second arrival's generation-queue time is exactly the first
    // request's prefill duration.
    let mut config = GenerationConfig::tiny();
    config.max_batch = 1;
    config.output_tokens = 1;
    let mut stage = GenerationStage::new(&config);

    let t0 = SimTime::ZERO;
    stage.submit(
        GenRequest {
            id: 0,
            n_docs: 4,
            admitted_at: t0,
        },
        t0,
    );
    stage.submit(
        GenRequest {
            id: 1,
            n_docs: 2,
            admitted_at: t0,
        },
        t0,
    );

    let p0 = config.cost.prefill_time(config.prompt_tokens(4), 1.0);
    let p1 = config.cost.prefill_time(config.prompt_tokens(2), 1.0);

    let step1 = stage.advance(t0).expect("work pending");
    assert_eq!(step1.busy_until, t0 + p0);
    assert_eq!(step1.events.len(), 2, "first token + completion");
    match step1.events[0] {
        GenEvent::FirstToken { id, at, phases } => {
            assert_eq!(id, 0);
            assert_eq!(at, t0 + p0);
            assert_eq!(phases.queued, SimDuration::ZERO);
            assert_eq!(phases.prefill, p0);
        }
        other => panic!("expected first token, got {other:?}"),
    }

    // Advancing from an earlier instant clamps to the engine's free time:
    // request 1 queued behind request 0 for exactly p0.
    let step2 = stage.advance(t0).expect("request 1 pending");
    assert_eq!(step2.busy_until, t0 + p0 + p1);
    match step2.events[0] {
        GenEvent::FirstToken { id, at, phases } => {
            assert_eq!(id, 1);
            assert_eq!(at, t0 + p0 + p1);
            assert_eq!(phases.queued, p0, "queued behind request 0's prefill");
            assert_eq!(phases.prefill, p1);
        }
        other => panic!("expected first token, got {other:?}"),
    }
    assert!(stage.is_idle());
    assert_eq!(stage.engine_stats().completed, 2);
}

#[test]
fn two_tenant_flood_reports_nonzero_per_tenant_ttft_attainment() {
    let corpus = small_corpus();
    let mut config = co_scheduled_config();
    config.tenants = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 512,
            slo_search: 0.05,
        },
        TenantSpec {
            weight: 1,
            queue_capacity: 512,
            slo_search: 0.05,
        },
    ];
    let clock = Arc::new(VirtualClock::new());
    let server = RagServer::start_with_clock(&corpus, config, clock).expect("server starts");

    // Flood both tenants with no pacing at all: the generation engine
    // backlogs, so early requests meet the 250 ms TTFT SLO and late ones
    // blow far past it in virtual time.
    let mut tickets = Vec::new();
    for i in 0..360 {
        let tenant = TenantId((i % 2) as u16);
        let query = corpus.vectors.get(i % 500).to_vec();
        tickets.push(server.submit_for(tenant, query).expect("admitted"));
    }
    let mut served = [0u64; 2];
    for ticket in tickets {
        let response = ticket.wait().expect("served");
        served[response.tenant.index()] += 1;
        assert!(response.timings.generation.is_some());
    }
    let report = server.shutdown();

    assert_eq!(report.completed, 360);
    assert_eq!(report.ttft.count, 360, "every request has a TTFT sample");
    assert_eq!(report.slo_ttft, Some(GenerationConfig::tiny().slo_ttft));
    assert!(
        report.ttft_attainment > 0.0 && report.ttft_attainment < 1.0,
        "the flood must straddle the TTFT SLO, got {}",
        report.ttft_attainment
    );
    for (t, report_row) in report.tenants.iter().enumerate() {
        assert_eq!(report_row.completed, served[t]);
        assert_eq!(report_row.ttft.count as u64, served[t]);
        assert!(
            report_row.ttft_attainment > 0.0,
            "tenant {t} TTFT attainment must be nonzero, got {}",
            report_row.ttft_attainment
        );
        assert!(report_row.ttft.p99 >= report_row.ttft.p50);
    }
    // The rendered report carries the TTFT section.
    let rendered = report.render();
    assert!(
        rendered.contains("TTFT SLO"),
        "render misses TTFT: {rendered}"
    );
    assert!(rendered.contains("ttft"), "latency table misses ttft row");
}

#[test]
fn shutdown_drains_the_generation_backlog() {
    let corpus = small_corpus();
    let clock = Arc::new(VirtualClock::new());
    let server =
        RagServer::start_with_clock(&corpus, co_scheduled_config(), clock).expect("server starts");
    let tickets: Vec<_> = (0..40)
        .map(|i| {
            server
                .submit(corpus.vectors.get(i).to_vec())
                .expect("admitted")
        })
        .collect();
    let report = server.shutdown();
    assert_eq!(report.completed, 40, "generation backlog fully served");
    assert_eq!(report.ttft.count, 40);
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket
            .wait()
            .unwrap_or_else(|| panic!("ticket {i} orphaned by shutdown"));
        assert!(response.timings.generation.is_some());
    }
}

/// Config for the TTFT-keyed repartition pin: the workload's hot set is
/// rotated away from the calibration profile from the very first request,
/// so hit-rate divergence is present throughout; whether the dual trigger
/// fires then depends *only* on the SLO signal.
fn drift_config(signal: SloSignal) -> ServeConfig {
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(64),
        nprobe: 12,
        top_k: 10,
        n_profile_queries: 512,
        // Enormous search SLO: the search side never breaches, so a
        // search-keyed dual trigger can never fire.
        slo_search: 10.0,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.3),
    };
    config.control = ControlConfig {
        update: UpdateConfig {
            slo_attainment_threshold: 0.9,
            hit_rate_divergence: 0.08,
            window_requests: 80,
        },
        profile_window: 512,
        cooldown_requests: 100,
        require_slo_breach: true,
        slo_signal: signal,
    };
    let mut generation = GenerationConfig::tiny();
    // Unmeetable TTFT SLO: every TTFT-keyed observation is a breach.
    generation.slo_ttft = 1e-9;
    config.generation = Some(generation);
    config
}

fn drift_corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 6_000,
        dim: 16,
        n_centers: 32,
        zipf_exponent: 1.2,
        noise: 0.25,
        seed: 9,
    })
}

/// Runs 150 rotated-hot-set requests through a co-scheduled server and
/// returns its final report.
fn run_drifted(signal: SloSignal) -> vectorlite_rag::serve::ServeReport {
    let corpus = drift_corpus();
    let clock = Arc::new(VirtualClock::new());
    let server =
        RagServer::start_with_clock(&corpus, drift_config(signal), clock).expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(&corpus, 5);
    source.set_rotation(16); // hot set moved before the first request
    let tickets: Vec<_> = (0..150)
        .map(|_| server.submit(source.next_query()).expect("admitted"))
        .collect();
    for ticket in tickets {
        ticket.wait().expect("served");
    }
    server.shutdown()
}

#[test]
fn ttft_keyed_observations_trigger_repartition_at_a_pinned_index() {
    let report = run_drifted(SloSignal::Ttft);
    // Every observation breaches the 1 ns TTFT SLO and diverges in hit
    // rate, so the dual trigger fires the moment the start-up cooldown
    // (100 requests) expires — at observation 100 exactly, deterministic
    // under the virtual clock.
    assert!(
        !report.repartitions.is_empty(),
        "TTFT-keyed SLO breaches must drive a repartition"
    );
    assert_eq!(
        report.repartitions[0].at_request, 100,
        "trigger must fire the moment the cooldown expires"
    );
    assert_eq!(report.ttft_attainment, 0.0, "nothing meets a 1 ns TTFT SLO");
    assert_eq!(report.completed, 150);
}

#[test]
fn search_keyed_observations_ignore_ttft_breaches() {
    // The identical run keyed off search latency: the 10 s search SLO is
    // never breached, so despite identical drift and identical TTFT pain,
    // the paper's dual condition never fires. This pins that the previous
    // test's trigger really came through the TTFT path.
    let report = run_drifted(SloSignal::Search);
    assert!(
        report.repartitions.is_empty(),
        "search-keyed control must not react to TTFT breaches"
    );
    assert_eq!(report.generation, 0);
    assert_eq!(report.completed, 150);
}

#[test]
fn kv_admission_estimate_and_rejection_are_pinned_to_the_exact_tick() {
    // Scripted virtual-time scenario on the public GenerationStage, the
    // same harness style as the queueing-phase test: request 0 fills the
    // KV pool; request 1 arrives while the engine is busy and the pool
    // full, and its shed decision — and the condemning estimate — must be
    // exact functions of the cost model at the scripted tick.
    let mut config = GenerationConfig::tiny();
    config.kv_admission = true;
    config.output_tokens = 64;
    // Pool of exactly 512 tokens: request 0's claim (384 prompt + 64
    // output) fits alone; adding request 1's equal claim cannot.
    config.kv_bytes = config.cost.model().kv_bytes_per_token() * 512;
    let prompt = config.prompt_tokens(10); // 64 + 32·10 = 384
    assert_eq!(prompt, 384);
    let p0 = config.cost.prefill_time(prompt, 1.0);
    // SLO wide enough for an idle admit (one prefill), far too tight for
    // a drain-then-prefill wait.
    config.slo_ttft = 1.5 * p0.as_secs_f64();
    let mut stage = GenerationStage::new(&config);

    let t0 = SimTime::ZERO;
    // Idle stage: request 0 admits — its estimate is one prefill.
    assert_eq!(
        stage.estimate_first_token(prompt, t0),
        t0 + p0,
        "idle estimate is exactly one prefill"
    );
    stage
        .submit_or_shed(
            GenRequest {
                id: 0,
                n_docs: 10,
                admitted_at: t0,
            },
            t0,
        )
        .expect("idle engine admits");
    let step = stage.advance(t0).expect("prefill runs");
    assert_eq!(step.busy_until, t0 + p0);

    // Request 1 at the same scripted tick: the engine is busy until
    // t0 + p0, its 384 resident prompt tokens leave no room, so the
    // estimate is engine-free wait + full decode drain + its own prefill.
    let decode = config.cost.decode_step_time(1, 384, 1.0);
    let drain = vectorlite_rag::sim::SimDuration::from_secs_f64(
        decode.as_secs_f64() * 63.0, // 64 output tokens, 1 emitted at prefill
    );
    let expected = ((t0 + p0) + drain + p0) - t0;
    assert_eq!(
        stage.estimate_first_token(prompt, t0),
        t0 + p0 + drain + p0,
        "busy estimate must be exact"
    );
    let shed = stage
        .submit_or_shed(
            GenRequest {
                id: 1,
                n_docs: 10,
                admitted_at: t0,
            },
            t0,
        )
        .expect_err("KV-full engine must shed");
    assert_eq!(shed, expected, "the condemning estimate is pinned");
    assert_eq!(
        stage.queue_len(),
        0,
        "a shed request never enters the queue"
    );

    // The admitted request is unaffected: it still completes.
    let mut done = false;
    let mut now = step.busy_until;
    for _ in 0..200 {
        match stage.advance(now) {
            Some(step) => {
                done |= step
                    .events
                    .iter()
                    .any(|e| matches!(e, GenEvent::Completed { id: 0, .. }));
                now = step.busy_until;
            }
            None => break,
        }
    }
    assert!(done, "request 0 must finish despite the shed");
}

#[test]
fn kv_admission_sheds_are_counted_in_per_tenant_ttft_attainment() {
    let corpus = small_corpus();
    let mut config = co_scheduled_config();
    let generation = config.generation.as_mut().unwrap();
    generation.kv_admission = true;
    generation.output_tokens = 32;
    // Admission bar: an idle prefill fits comfortably, a backlog of them
    // does not — so a flood is guaranteed to produce both outcomes.
    let base_prefill = generation
        .cost
        .prefill_time(generation.prompt_tokens(10), 1.0);
    generation.slo_ttft = 4.0 * base_prefill.as_secs_f64();
    config.tenants = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 512,
            slo_search: 0.05,
        },
        TenantSpec {
            weight: 1,
            queue_capacity: 512,
            slo_search: 0.05,
        },
    ];
    let clock = Arc::new(VirtualClock::new());
    let server = RagServer::start_with_clock(&corpus, config, clock).expect("server starts");

    let mut tickets = Vec::new();
    for i in 0..360 {
        let tenant = TenantId((i % 2) as u16);
        tickets.push(
            server
                .submit_for(tenant, corpus.vectors.get(i % 500).to_vec())
                .expect("admitted"),
        );
    }
    let mut shed_by_tenant = [0u64; 2];
    let mut served_by_tenant = [0u64; 2];
    for ticket in tickets {
        let response = ticket.wait().expect("served");
        match response.timings.generation {
            // A shed reply carries the retrieval results and its timings
            // end at the merge: e2e = queue + search, exactly.
            None => {
                shed_by_tenant[response.tenant.index()] += 1;
                assert_eq!(
                    response.timings.e2e,
                    response.timings.queue + response.timings.search,
                    "shed timings end at the merge tick"
                );
                assert!(!response.neighbors.is_empty(), "retrieval still served");
            }
            Some(gen) => {
                served_by_tenant[response.tenant.index()] += 1;
                assert!(gen.ttft > 0.0);
            }
        }
    }
    let report = server.shutdown();

    let sheds: u64 = shed_by_tenant.iter().sum();
    let served: u64 = served_by_tenant.iter().sum();
    assert!(sheds > 0, "the flood must shed");
    assert!(served > 0, "the flood must also serve");
    assert_eq!(report.completed, 360);
    assert_eq!(report.gen_sheds, sheds);
    // TTFT samples exist only for served requests; the attainment
    // denominator nevertheless includes every shed as a miss.
    assert_eq!(report.ttft.count as u64, served);
    assert!(report.ttft_attainment < 1.0, "sheds must dent attainment");
    for (t, row) in report.tenants.iter().enumerate() {
        assert_eq!(row.gen_sheds, shed_by_tenant[t], "tenant {t} shed count");
        assert_eq!(row.ttft.count as u64, served_by_tenant[t]);
        assert!(
            row.ttft_attainment
                <= served_by_tenant[t] as f64 / (served_by_tenant[t] + shed_by_tenant[t]) as f64
                    + 1e-9,
            "tenant {t} attainment must count its sheds as misses"
        );
    }
    let rendered = report.render();
    assert!(
        rendered.contains("KV-admission sheds"),
        "render must surface sheds: {rendered}"
    );
}

#[test]
fn co_scheduled_ttft_attainment_is_served_over_the_http_frontend() {
    let corpus = small_corpus();
    let config = co_scheduled_config();
    let clock = Arc::new(VirtualClock::new());
    let server =
        RagServer::start_with_clock(&corpus, config.clone(), clock).expect("server starts");
    let frontend = HttpFrontend::bind(server, &config.http).expect("frontend binds");
    let mut client = HttpClient::connect(frontend.addr()).expect("client connects");

    for i in 0..3 {
        let body = wire::search_request_to_json(corpus.vectors.get(i)).render();
        let response = client.post_json("/v1/search", &[], &body).expect("search");
        assert_eq!(response.status, 200);
        let decoded = wire::search_response_from_json(&response.json().unwrap()).expect("decodes");
        let gen = decoded
            .timings
            .generation
            .expect("generation phases cross the wire");
        assert!(gen.ttft > 0.0 && gen.prefill > 0.0);
    }

    let report_json = client.get("/v1/report").expect("report").json().unwrap();
    assert_eq!(
        report_json.get("slo_ttft").and_then(Json::as_f64),
        Some(GenerationConfig::tiny().slo_ttft),
    );
    let attainment = report_json
        .get("ttft_attainment")
        .and_then(Json::as_f64)
        .expect("report carries ttft_attainment");
    assert!(
        attainment > 0.0,
        "sequential ms-scale TTFTs meet a 250 ms SLO"
    );
    let tenant_ttft_count = report_json
        .get("tenants")
        .and_then(Json::as_array)
        .and_then(|rows| rows[0].get("ttft"))
        .and_then(|t| t.get("count"))
        .and_then(Json::as_u64);
    assert_eq!(tenant_ttft_count, Some(3), "per-tenant TTFT rows over HTTP");

    let final_report = frontend.shutdown();
    assert_eq!(final_report.completed, 3);
    assert_eq!(final_report.ttft.count, 3);
    assert!(final_report.ttft_attainment > 0.0);
}
