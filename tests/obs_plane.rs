//! Integration: the always-on telemetry plane against the exact report.
//!
//! The obs plane is *additive*: the mutex-guarded `ServeMetrics` stays the
//! source of truth for `ServeReport`, and the lock-free counters/histograms
//! mirror it. These tests pin the contract from the outside:
//!
//! 1. After a run, every Prometheus-scraped counter equals the exact
//!    report's total, and the stage histograms saw exactly one sample per
//!    completed request (retrieval-only and co-scheduled).
//! 2. The trace rings capture per-request waterfalls whose span boundaries
//!    reproduce the delivered timings, and a zero slow-threshold routes
//!    every trace into the slow ring.
//! 3. A disabled plane records nothing while leaving the exact report
//!    untouched.
//! 4. Hot-path recording is lock-free: writers hammering one plane from
//!    many threads lose no samples even while a scraper renders the
//!    exposition concurrently (no global lock to convoy on).

use std::sync::Arc;

use vectorlite_rag::core::RealConfig;
use vectorlite_rag::serve::{GenerationConfig, ObsConfig, ObsPlane, RagServer, ServeConfig};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 4_000,
        dim: 12,
        n_centers: 16,
        zipf_exponent: 1.1,
        noise: 0.25,
        seed: 23,
    })
}

fn config() -> ServeConfig {
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(32),
        nprobe: 8,
        top_k: 8,
        n_profile_queries: 256,
        slo_search: 0.050,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0xab5,
        coverage_override: Some(0.3),
    };
    config
}

/// Extracts one sample value from a Prometheus text exposition. `name`
/// includes labels when the family has them, e.g.
/// `vlite_stage_seconds_count{stage="search"}`.
fn prom_value(text: &str, name: &str) -> f64 {
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        if let Some((key, value)) = line.rsplit_once(' ') {
            if key == name {
                return value
                    .parse()
                    .unwrap_or_else(|_| panic!("metric {name} has non-numeric value {value:?}"));
            }
        }
    }
    panic!("metric {name} not found in exposition");
}

#[test]
fn scraped_counters_match_the_exact_report() {
    let corpus = corpus();
    let server = RagServer::start(&corpus, config()).expect("server starts");
    let queries = corpus.queries(48, 17);
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.to_vec()).expect("admitted"))
        .collect();
    for ticket in tickets {
        ticket.wait().expect("server alive");
    }

    // Counters that settle before the ticket reply is sent (the obs hook
    // runs first in `complete_query`) are exact the moment every wait
    // returns — scrape and compare against the live report.
    let text = server.prometheus_text();
    let report = server.report();
    assert_eq!(
        prom_value(&text, "vlite_admitted_total") as u64,
        report.admitted
    );
    assert_eq!(
        prom_value(&text, "vlite_rejected_total") as u64,
        report.rejected
    );
    assert_eq!(
        prom_value(&text, "vlite_completed_total") as u64,
        report.completed
    );
    assert_eq!(report.completed, 48);
    assert_eq!(
        prom_value(&text, "vlite_stage_seconds_count{stage=\"search\"}") as u64,
        report.completed,
        "one search sample per completed request"
    );
    assert_eq!(
        prom_value(&text, "vlite_stage_seconds_count{stage=\"queue\"}") as u64,
        report.completed
    );
    assert_eq!(
        prom_value(&text, "vlite_stage_seconds_count{stage=\"e2e\"}") as u64,
        report.completed
    );
    // Retrieval-only server: no generation stages recorded.
    assert_eq!(
        prom_value(&text, "vlite_stage_seconds_count{stage=\"ttft\"}"),
        0.0
    );
    assert_eq!(prom_value(&text, "vlite_gen_sheds_total"), 0.0);

    // Batch counters are finalized by the dispatcher after the last reply,
    // so compare them post-shutdown (every worker joined) via the handle
    // that outlives the server.
    let obs = server.obs_handle();
    let report = server.shutdown();
    assert_eq!(obs.admitted.get(), report.admitted);
    assert_eq!(obs.completed.get(), report.completed);
    assert_eq!(obs.rejected.get(), report.rejected);
    assert_eq!(obs.batches.get(), report.batches);
    assert_eq!(
        obs.batched_requests.get(),
        (report.mean_batch * report.batches as f64).round() as u64,
        "mean batch size is batched_requests / batches"
    );
    // Histogram sums track the exact recorders (sums are exact up to
    // nanosecond truncation — only the *positions* are bucketed).
    let search = obs.stage("search").expect("known stage");
    assert_eq!(search.count(), report.completed);
    let exact_sum = report.search.mean * report.completed as f64;
    assert!(
        (search.sum_seconds() - exact_sum).abs() <= 1e-6 * exact_sum.max(1.0),
        "histogram sum {} vs exact {}",
        search.sum_seconds(),
        exact_sum
    );
}

#[test]
fn co_scheduled_run_records_generation_stages_and_traces() {
    let corpus = corpus();
    let mut config = config();
    config.generation = Some(GenerationConfig::tiny());
    // Capture every request in the slow ring regardless of latency.
    config.obs.slow_threshold_s = 0.0;
    let n = 32;
    let server = RagServer::start(&corpus, config).expect("server starts");
    let queries = corpus.queries(n, 29);
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.to_vec()).expect("admitted"))
        .collect();
    for ticket in tickets {
        let response = ticket.wait().expect("server alive");
        assert!(response.timings.generation.is_some(), "co-scheduled reply");
    }

    let obs = server.obs_handle();
    let report = server.shutdown();
    assert_eq!(report.completed, n as u64);
    assert_eq!(obs.completed.get(), report.completed);
    assert_eq!(obs.gen_sheds.get(), report.gen_sheds);

    // Generation stages record once per delivered (non-shed) request.
    let delivered = report.completed - report.gen_sheds;
    for stage in ["ttft", "gen_queue", "prefill", "decode"] {
        assert_eq!(
            obs.stage(stage).expect("known stage").count(),
            delivered,
            "stage {stage}"
        );
    }

    // Every trace landed in both rings (threshold 0.0), with a waterfall
    // whose boundaries reproduce the TTFT identity.
    let recent = obs.recent_traces();
    let slow = obs.slow_traces();
    assert_eq!(recent.len(), n);
    assert_eq!(slow.len(), n);
    for trace in &recent {
        if trace.shed {
            continue;
        }
        let span = |stage: &str| {
            trace
                .spans
                .iter()
                .find(|s| s.stage == stage)
                .unwrap_or_else(|| panic!("trace {} missing span {stage}", trace.id))
        };
        // Cumulative offsets: each stage starts where the previous ended.
        assert_eq!(span("queue").start_s, 0.0);
        assert_eq!(span("queue").end_s, span("search").start_s);
        assert_eq!(span("search").end_s, span("gen_queue").start_s);
        assert_eq!(span("gen_queue").end_s, span("prefill").start_s);
        assert_eq!(span("prefill").end_s, span("decode").start_s);
        // first_token is a zero-length marker at the prefill boundary:
        // ttft = queue + search + gen_queue + prefill.
        let first = span("first_token");
        assert_eq!(first.start_s, first.end_s);
        assert!((first.start_s - span("prefill").end_s).abs() < 1e-9);
        assert!(
            span("decode").end_s <= trace.e2e_s + 1e-9,
            "decode must end by e2e"
        );
    }
}

#[test]
fn disabled_plane_records_nothing_and_report_is_unaffected() {
    let corpus = corpus();
    let mut config = config();
    config.obs.enabled = false;
    let server = RagServer::start(&corpus, config).expect("server starts");
    let queries = corpus.queries(16, 31);
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.to_vec()).expect("admitted"))
        .collect();
    for ticket in tickets {
        ticket.wait().expect("server alive");
    }

    // The exposition still renders (scrape-time gauges stay live), but
    // every plane-recorded family reads zero.
    let text = server.prometheus_text();
    assert_eq!(prom_value(&text, "vlite_admitted_total"), 0.0);
    assert_eq!(prom_value(&text, "vlite_completed_total"), 0.0);

    let obs = server.obs_handle();
    let report = server.shutdown();
    assert!(!obs.enabled());
    assert_eq!(obs.completed.get(), 0);
    assert!(obs.recent_traces().is_empty());
    assert!(obs.slow_traces().is_empty());
    assert!(obs.journal_snapshot().is_empty());
    // The exact report never depended on the plane.
    assert_eq!(report.completed, 16);
}

// The lock-freedom pin: concurrent writers plus a concurrent scraper, no
// global lock to convoy on, and the final totals are exact. A mutex-guarded
// plane would still pass the counting half, but the scraper here renders
// the full exposition in a tight loop the whole time — with the writers'
// hot path taking any shared lock this test becomes a convoy (and the
// sharded `Counter` in `vlite_metrics::obs` has its own loss-freedom
// proptest); together they pin "recording never serializes on a lock".
#[test]
fn concurrent_recording_with_live_scrapes_loses_nothing() {
    use vectorlite_rag::serve::TenantId;

    let plane = Arc::new(ObsPlane::new(&ObsConfig {
        slow_threshold_s: 0.5,
        ..ObsConfig::default()
    }));
    let writers = 8;
    let per_writer: u64 = 20_000;
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let scraper = {
        let plane = Arc::clone(&plane);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let mut out = String::new();
                plane.prometheus_into(&mut out);
                assert!(out.contains("vlite_admitted_total"));
                scrapes += 1;
            }
            scrapes
        })
    };

    let handles: Vec<_> = (0..writers)
        .map(|w| {
            let plane = Arc::clone(&plane);
            std::thread::spawn(move || {
                for i in 0..per_writer {
                    plane.on_admit();
                    let timings = vectorlite_rag::serve::RequestTimings {
                        queue: 1e-4,
                        search: 1e-3 * (1.0 + (i % 7) as f64),
                        e2e: 1e-4 + 1e-3 * (1.0 + (i % 7) as f64),
                        generation: None,
                    };
                    plane.on_request(
                        w * per_writer + i,
                        TenantId(0),
                        i,
                        &timings,
                        true,
                        None,
                        false,
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("writer");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper");

    let total = writers * per_writer;
    assert_eq!(plane.admitted.get(), total);
    assert_eq!(plane.completed.get(), total);
    assert_eq!(plane.stage("search").expect("stage").count(), total);
    assert_eq!(plane.stage("e2e").expect("stage").count(), total);
    assert!(scrapes > 0, "scraper ran concurrently with the writers");
}
