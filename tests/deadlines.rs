//! Integration: per-request deadline budgets enforced across the pipeline.
//!
//! The VirtualClock tests pin the degradation ladder to the exact tick:
//! time advances only where the test says so, so every shed, shrink and
//! budget-burn number below is a deterministic function of the scripted
//! timeline — no wall-clock sleeps, no timing tolerances.
//!
//! Coverage:
//! - A zero-budget request is shed at batch formation (rung 2) on the
//!   exact tick it was submitted: the ticket's reply channel disconnects,
//!   the shed is attributed to the queue stage, and the journal event is
//!   stamped at the submission tick to the nanosecond.
//! - A measure-only policy (enforce off) records budget burn and deadline
//!   attainment without shedding or degrading anything.
//! - A budget worth half the search estimate shrinks the probe list to
//!   exactly `ceil(nprobe/2)` (rung 3) and the request still answers —
//!   degraded, attributed, and on time.
//! - A budget that fits the fast tier but not a cold scan drops the
//!   request's cold-tier probes (rung 4) and still answers.
//! - Over the HTTP frontend: `X-Deadline-Ms` is validated (400 on garbage),
//!   a generous budget answers 200, an impossible budget answers 504 with
//!   a JSON error body, and the shed shows up in `/v1/metrics` and the
//!   report.
//! - Property: truncating the probe list (what rung 3 does) degrades
//!   gracefully — probe lists are prefix-consistent and recall against
//!   brute force is monotone in `nprobe`, so a degraded response is a
//!   prefix-quality subset of the full-probe response, never an error.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use vectorlite_rag::ann::{IvfConfig, IvfIndex, VecSet};
use vectorlite_rag::serve::http::json::Json;
use vectorlite_rag::serve::http::{wire, HttpClient, HttpFrontend};
use vectorlite_rag::serve::{RagServer, ServeConfig, TenantId, VirtualClock};
use vectorlite_rag::sim::SimDuration;
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 2_000,
        dim: 8,
        n_centers: 16,
        zipf_exponent: 1.0,
        noise: 0.2,
        seed: 7,
    })
}

fn enforcing_config() -> ServeConfig {
    let mut config = ServeConfig::small();
    config.deadline.enforce = true;
    config
}

#[test]
fn zero_budget_request_is_shed_in_queue_at_the_exact_tick() {
    let corpus = corpus();
    let clock = Arc::new(VirtualClock::new());
    let server = RagServer::start_with_clock(&corpus, enforcing_config(), clock.clone())
        .expect("server starts");

    // Script the timeline: submission happens at exactly t = 5 ms.
    let t_submit = clock.advance(SimDuration::from_millis(5.0));
    let ticket = server
        .submit_with_deadline(
            TenantId(0),
            corpus.vectors.get(0).to_vec(),
            Some(Duration::ZERO),
        )
        .expect("an idle queue has no wait estimate, so admission admits");
    assert_eq!(
        ticket.deadline(),
        Some(t_submit),
        "a zero budget stamps the deadline at the submission tick"
    );

    // Batch formation reads the same (never-advanced) tick, so
    // `started >= deadline` holds by equality: the job is shed, its reply
    // sender dropped, and the waiter sees a disconnect — not a hang.
    assert!(
        ticket.wait().is_none(),
        "a queue-shed request must disconnect its waiter"
    );

    let report = server.report();
    assert_eq!(
        report.deadline_sheds,
        [0, 1, 0],
        "exactly one shed, attributed to the queue stage"
    );
    assert_eq!(report.deadline_met, 0);
    assert_eq!(report.deadline_missed, 0, "shed requests never complete");
    assert_eq!(report.degraded_probes, 0);

    // The journal stamps the shed at the batch-formation tick — which the
    // scripted timeline pins to the submission tick, to the nanosecond.
    let journal = server.obs().journal_snapshot();
    let shed = journal
        .iter()
        .find(|e| e.kind == "deadline-shed")
        .expect("queue sheds are journaled");
    assert_eq!(shed.at_ns, 5_000_000, "shed at exactly t = 5 ms");
    assert!(
        shed.detail.contains("expired in queue"),
        "unexpected detail: {}",
        shed.detail
    );
}

#[test]
fn measure_only_policy_records_attainment_without_shedding() {
    let corpus = corpus();
    let mut config = ServeConfig::small();
    config.deadline.default_deadline = Some(10.0); // enforce stays off
    let clock = Arc::new(VirtualClock::new());
    let server = RagServer::start_with_clock(&corpus, config, clock).expect("server starts");

    let ticket = server
        .submit(corpus.vectors.get(0).to_vec())
        .expect("admitted");
    let response = ticket.wait().expect("measure-only never sheds");
    assert_eq!(response.neighbors[0].id, 0);

    let report = server.report();
    assert_eq!(report.deadline_sheds, [0, 0, 0]);
    assert_eq!(report.degraded_probes, 0);
    assert_eq!(report.cold_skips, 0);
    assert_eq!(report.deadline_met, 1, "zero virtual time beats any budget");
    assert_eq!(report.deadline_missed, 0);
    assert_eq!(report.deadline_attainment, Some(1.0));
    // Budget burn was measured for both stages even though nothing acted
    // on it — that is the whole point of measure-only mode.
    assert_eq!(report.burn_queue.count, 1);
    assert_eq!(report.burn_search.count, 1);
}

#[test]
fn half_budget_shrinks_probes_to_exactly_half_and_still_answers() {
    let corpus = corpus();
    let mut config = enforcing_config();
    // Everything hot: rung 4 (cold skip) has nothing to drop, so the only
    // budget action in play is the probe shrink under test.
    config.real.coverage_override = Some(1.0);
    let est_search = config.deadline.est_search;
    let nprobe = config.real.nprobe;
    let clock = Arc::new(VirtualClock::new());
    let server = RagServer::start_with_clock(&corpus, config, clock).expect("server starts");

    // With a never-advanced VirtualClock, batch formation happens at the
    // submission tick, so remaining == budget exactly. A budget of half
    // the search estimate scales the probe list by exactly 0.5.
    let budget = Duration::from_secs_f64(est_search * 0.5);
    let ticket = server
        .submit_with_deadline(TenantId(0), corpus.vectors.get(0).to_vec(), Some(budget))
        .expect("admitted");
    let response = ticket.wait().expect("degraded, not shed");
    assert_eq!(
        response.neighbors[0].id, 0,
        "the vector's own cluster is the closest probe — a prefix keeps it"
    );

    let report = server.report();
    let expected = (nprobe as f64 * 0.5).ceil() as usize;
    assert_eq!(report.degraded_probes, 1, "exactly one degraded request");
    assert_eq!(
        report.deadline_sheds,
        [0, 0, 0],
        "degradation avoided the shed"
    );
    assert_eq!(report.deadline_met, 1, "the degraded request still made it");
    let journal = server.obs().journal_snapshot();
    let degrade = journal
        .iter()
        .find(|e| e.kind == "degrade")
        .expect("probe shrinks are journaled");
    assert!(
        degrade
            .detail
            .contains(&format!("probes shrunk {nprobe} -> {expected}")),
        "unexpected detail: {}",
        degrade.detail
    );
}

#[test]
fn fast_tier_only_budget_skips_cold_probes_and_still_answers() {
    let corpus = corpus();
    let mut config = enforcing_config();
    // Pin the hot tier small so the full probe list must cross into the
    // cold tier, making the skip observable.
    config.real.coverage_override = Some(0.25);
    let est_search = config.deadline.est_search;
    let est_cold = config.deadline.est_cold;
    let clock = Arc::new(VirtualClock::new());
    let server = RagServer::start_with_clock(&corpus, config, clock).expect("server starts");

    // Enough remaining budget for the fast tier (no probe shrink), not
    // enough to absorb a cold-tier scan on top.
    let budget = Duration::from_secs_f64(est_search + est_cold * 0.5);
    let ticket = server
        .submit_with_deadline(TenantId(0), corpus.vectors.get(0).to_vec(), Some(budget))
        .expect("admitted");
    let response = ticket.wait().expect("cold-skipped, not shed");
    assert!(!response.neighbors.is_empty());

    let report = server.report();
    assert_eq!(report.cold_skips, 1, "the cold-tier probes were dropped");
    assert_eq!(report.degraded_probes, 0, "the probe count itself was kept");
    assert_eq!(report.deadline_sheds, [0, 0, 0]);
    assert_eq!(report.deadline_met, 1);
}

#[test]
fn http_deadline_header_is_validated_and_enforced() {
    let corpus = corpus();
    let config = enforcing_config();
    let server = RagServer::start(&corpus, config.clone()).expect("server starts");
    let frontend = HttpFrontend::bind(server, &config.http).expect("frontend binds");
    let addr = frontend.addr();
    let mut client = HttpClient::connect(addr).expect("client connects");
    let body = wire::search_request_to_json(corpus.vectors.get(0)).render();

    // Garbage budgets are rejected before admission.
    for bad in ["banana", "-5", "0", "inf", "NaN"] {
        let response = client
            .post_json("/v1/search", &[("X-Deadline-Ms", bad)], &body)
            .expect("exchange");
        assert_eq!(response.status, 400, "X-Deadline-Ms {bad:?} must 400");
    }

    // A generous budget serves normally.
    let ok = client
        .post_json("/v1/search", &[("X-Deadline-Ms", "60000")], &body)
        .expect("exchange");
    assert_eq!(ok.status, 200);

    // An impossible budget (1 ns) expires before batch formation: the
    // runtime sheds it in the queue and the frontend answers 504 with a
    // JSON error body instead of hanging the connection.
    let shed = client
        .post_json("/v1/search", &[("X-Deadline-Ms", "0.000001")], &body)
        .expect("exchange");
    assert_eq!(
        shed.status, 504,
        "an unmeetable budget must gateway-timeout"
    );
    let err = shed.json().expect("504 carries a JSON error body");
    let message = err.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(
        message.contains("deadline") || message.contains("shed"),
        "unexpected error message: {message}"
    );

    // The shed is attributed in the scrape and the report. The counter
    // write happens before the reply channel drops, and the 504 above
    // observed the drop, so the value is already visible.
    let scrape = String::from_utf8(client.get("/v1/metrics").expect("metrics").body).expect("utf8");
    assert!(
        scrape.contains("vlite_deadline_sheds_total{stage=\"queue\"} 1"),
        "queue shed missing from exposition"
    );
    let report = client.get("/v1/report").expect("report");
    let report_json = report.json().expect("report is JSON");
    assert_eq!(
        report_json
            .get("deadline_sheds")
            .and_then(|sheds| sheds.get("queue"))
            .and_then(Json::as_u64),
        Some(1),
        "report must attribute the queue shed"
    );

    drop(client);
    let report = frontend.shutdown();
    assert_eq!(report.deadline_sheds[1], 1);
    assert_eq!(
        report.completed, 1,
        "only the generous-budget request completed"
    );
}

/// Deterministic pseudo-random f32 in [0, 1): splitmix-style bit mixing,
/// no RNG dependency, so every proptest case is a pure function of its
/// seed.
fn mixed_unit(seed: u64, i: usize, j: usize) -> f32 {
    let mut x =
        seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + i as u64 * 131 + j as u64));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 40) as f32 / (1u64 << 24) as f32
}

/// Exact top-k ids by L2 over the whole set (the recall ground truth).
fn brute_force_ids(data: &VecSet, query: &[f32], k: usize) -> HashSet<u64> {
    let mut scored: Vec<(f32, u64)> = (0..data.len())
        .map(|i| {
            let row = data.get(i);
            let d: f32 = row.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum();
            (d, i as u64)
        })
        .collect();
    scored.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    scored.iter().take(k).map(|&(_, id)| id).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Rung 3's graceful-degradation contract, at the index layer: the
    /// probe list is closeness-ordered, so a truncated probe run scans a
    /// *prefix* of the full run's clusters. A degraded search is therefore
    /// a prefix-quality subset of the full search — its recall against
    /// brute force never exceeds (and its candidates never leave) the
    /// full-probe run's, and no probe count errors or returns nothing.
    #[test]
    fn degraded_probe_runs_are_prefix_quality_subsets(seed in 0u64..1_000) {
        let n = 256;
        let dim = 8;
        let nlist = 16;
        let k = 10;
        let data = VecSet::from_fn(n, dim, |i, j| mixed_unit(seed, i, j));
        let index = IvfIndex::train(&data, &IvfConfig::new(nlist)).expect("trains");
        let query: Vec<f32> = (0..dim).map(|j| mixed_unit(seed ^ 0xdead_beef, n, j)).collect();

        // Probe lists are prefix-consistent: shrinking nprobe truncates,
        // never reorders — exactly what the batcher's rung 3 relies on.
        let full_probes = index.probe(&query, nlist);
        for np in 1..=full_probes.len() {
            let pre = index.probe(&query, np);
            prop_assert_eq!(pre.len(), np);
            prop_assert_eq!(&pre[..], &full_probes[..np]);
        }

        // Recall against brute force is monotone in nprobe: a degraded
        // run's candidates are a subset of the full run's, and exact
        // re-ranking keeps every true neighbor the subset already had.
        let truth = brute_force_ids(&data, &query, k);
        let mut prev_recall = -1.0f64;
        for np in 1..=nlist {
            let neighbors = index.search(&query, k, np);
            prop_assert!(!neighbors.is_empty(), "degraded search must still answer");
            let hits = neighbors.iter().filter(|nb| truth.contains(&nb.id)).count();
            let recall = hits as f64 / k as f64;
            prop_assert!(
                recall + 1e-12 >= prev_recall,
                "recall fell from {prev_recall} to {recall} at nprobe {np}"
            );
            prev_recall = recall;
        }
        prop_assert!((prev_recall - 1.0).abs() < 1e-12, "full probe sweep is exhaustive");
    }
}
