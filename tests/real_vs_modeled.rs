//! Integration: the real tier (actual IVF index + threaded dispatcher) and
//! its consistency with the modeled tier's abstractions.

use vectorlite_rag::ann::{eval, FlatIndex, IvfConfig, ListStorage, Metric};
use vectorlite_rag::core::{RealConfig, RealDeployment};
use vectorlite_rag::serve::hybrid_search_batch;
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 12_000,
        dim: 24,
        n_centers: 48,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 21,
    })
}

#[test]
fn real_deployment_full_stack() {
    let corpus = corpus();
    let mut config = RealConfig::small();
    config.ivf = IvfConfig::new(96);
    config.n_shards = 3;
    let deployment = RealDeployment::build(&corpus, config).expect("builds");

    // Offline stage invariants on measured (not modeled) statistics.
    assert!((0.0..=1.0).contains(&deployment.decision.coverage));
    assert!(
        deployment.profile.mean_hit_rate(0.2) > 0.2,
        "measured skew present"
    );
    assert!(deployment.estimator.sigma2_max() > 0.0);

    // Hybrid serving equals the single-path scan exactly.
    let queries = corpus.queries(10, 33);
    let outcome = hybrid_search_batch(&deployment, &queries);
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(outcome.results[qi], deployment.search_flat_path(q));
    }
    // All queries dispatched exactly once.
    let mut order = outcome.completion_order.clone();
    order.sort_unstable();
    assert_eq!(order, (0..10).collect::<Vec<_>>());
}

#[test]
fn real_index_quality_is_high() {
    // Quality of the *index structure* (coarse quantization + routing) is
    // measured with flat list storage: the paper's 0.91-NDCG operating
    // point concerns recall of the probed clusters, not PQ resolution.
    // (On this synthetic blob corpus, aggressive PQ collapses within-blob
    // distances to ties, which is exercised separately in the PQ unit
    // tests via reconstruction error.)
    let corpus = corpus();
    let mut config = RealConfig::small();
    config.ivf = IvfConfig::new(96).storage(ListStorage::Flat);
    config.nprobe = 24;
    let deployment = RealDeployment::build(&corpus, config).expect("builds");
    let flat = FlatIndex::new(corpus.vectors.clone(), Metric::L2);
    let queries = corpus.queries(20, 44);
    let (mut ndcg, mut recall) = (0.0, 0.0);
    for q in queries.iter() {
        let truth = flat.search(q, 10);
        let approx = deployment.search_flat_path(q);
        ndcg += eval::ndcg_at_k(&truth, &approx, 10);
        recall += eval::recall_at_k(&truth, &approx, 10);
    }
    ndcg /= 20.0;
    recall /= 20.0;
    assert!(ndcg > 0.9, "NDCG@10 too low: {ndcg}");
    assert!(recall > 0.9, "recall@10 too low: {recall}");
}

#[test]
fn real_profile_feeds_the_same_estimator_api() {
    // The modeled and real tiers share AccessProfile/HitRateEstimator —
    // verify the measured profile supports the full estimation chain.
    let corpus = corpus();
    let deployment = RealDeployment::build(&corpus, RealConfig::small()).expect("builds");
    let est = &deployment.estimator;
    let m1 = est.eta_min(0.2, 1);
    let m8 = est.eta_min(0.2, 8);
    assert!(m8 <= m1 + 1e-9, "order statistic must not grow with batch");
    let cov = est.hit_rate_to_coverage(m8.max(0.01), 8);
    assert!((0.0..=1.0).contains(&cov));
}
