//! Integration: the serving runtime over the physical storage tiers of
//! `vlite-store`.
//!
//! Three contracts, all on the deterministic [`VirtualClock`]:
//!
//! 1. **Save → load → serve is bit-identical.** A server started against
//!    an existing segment file (same corpus, same seeds, pinned coverage)
//!    reopens it — verified by content checksums — and serves exactly the
//!    same neighbors, bit for bit, as the server that wrote it.
//! 2. **Repartition-triggered migration never stalls the dispatcher.** A
//!    mid-run hot-set rotation trips the drift monitor; the control loop
//!    hot-swaps the router *and* orders a tier migration; the migrator
//!    promotes/demotes cluster extents while batches keep completing —
//!    zero snapshot waits, every request served.
//! 3. **Tier accounting is physical.** Fast/cold probe counters and
//!    fast-tier residency in the report reflect where bytes actually
//!    live, end to end through render/CSV/JSON.

use std::sync::Arc;

use vectorlite_rag::ann::Neighbor;
use vectorlite_rag::core::{RealConfig, UpdateConfig};
use vectorlite_rag::serve::loadgen::{run_open_loop, RotatingQuerySource};
use vectorlite_rag::serve::{ControlConfig, RagServer, ServeConfig, VirtualClock};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 6_000,
        dim: 16,
        n_centers: 32,
        zipf_exponent: 1.2,
        noise: 0.25,
        seed: 9,
    })
}

/// Pinned-coverage config: with `coverage_override` set, the split is a
/// pure function of the (seeded) calibration profile, so two servers built
/// from the same corpus produce identical placements — the precondition
/// for bit-identical save → load results.
fn config() -> ServeConfig {
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(64),
        nprobe: 12,
        top_k: 10,
        n_profile_queries: 512,
        slo_search: 0.050,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.3),
    };
    config.control = ControlConfig {
        update: UpdateConfig {
            slo_attainment_threshold: 0.9,
            hit_rate_divergence: 0.08,
            window_requests: 200,
        },
        profile_window: 600,
        cooldown_requests: 200,
        require_slo_breach: false,
        ..ControlConfig::default()
    };
    config
}

fn serve_fixed_queries(server: &RagServer, corpus: &SyntheticCorpus) -> Vec<Vec<Neighbor>> {
    let queries = corpus.queries(24, 41);
    queries
        .iter()
        .map(|q| {
            server
                .submit(q.to_vec())
                .expect("admitted")
                .wait()
                .expect("served")
                .neighbors
        })
        .collect()
}

#[test]
fn save_load_round_trip_serves_bit_identical_results() {
    let corpus = corpus();
    let dir = std::env::temp_dir().join(format!("vlite-tiered-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = config();
    config.store.dir = Some(dir.clone());

    // First server writes the segment and serves from it.
    let server =
        RagServer::start_with_clock(&corpus, config.clone(), Arc::new(VirtualClock::new()))
            .expect("server starts");
    assert!(server.store().is_some(), "flat index must build a store");
    let first = serve_fixed_queries(&server, &corpus);
    let report = server.shutdown();
    let store = report.store.as_ref().expect("tiered report");
    assert!(!store.opened_existing, "first run writes the segment");
    assert!(store.fast_clusters > 0 && store.fast_clusters < store.total_clusters);
    assert!(store.hot_probes > 0, "hot clusters were probed");
    assert!(store.cold_probes > 0, "cold clusters were probed");
    assert!(dir.join("vlite-store.seg").exists(), "segment persisted");

    // Second server — identical offline build — must *reopen* the file
    // (content-checksum verified) and serve byte-identical neighbors.
    let server = RagServer::start_with_clock(&corpus, config, Arc::new(VirtualClock::new()))
        .expect("server restarts");
    let second = serve_fixed_queries(&server, &corpus);
    let report = server.shutdown();
    let store = report.store.as_ref().expect("tiered report");
    assert!(store.opened_existing, "second run must reopen the segment");

    assert_eq!(first, second, "save → load must be bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repartition_migration_completes_while_the_dispatcher_keeps_draining() {
    let corpus = corpus();
    let server = RagServer::start_with_clock(&corpus, config(), Arc::new(VirtualClock::new()))
        .expect("server starts");

    // Rotate the hot set mid-run: drift trips the monitor, the control
    // loop repartitions, and the migrator must move tiers to match — all
    // while the open-loop load keeps flowing.
    let mut source = RotatingQuerySource::from_corpus(&corpus, 5);
    let n = 1_200;
    let outcome = run_open_loop(&server, &mut source, 1_500.0, n, 13, |i, source| {
        if i == n / 2 {
            source.set_rotation(16);
        }
    });
    let report = server.shutdown();

    // The dispatcher never stalled: every admitted request completed and
    // no scan ever waited on the tier map.
    assert_eq!(outcome.rejected, 0);
    assert_eq!(report.completed, report.admitted);
    assert_eq!(outcome.responses.len(), n);
    assert!(!report.repartitions.is_empty(), "drift must repartition");

    let store = report.store.as_ref().expect("tiered report");
    assert_eq!(store.snapshot_waits, 0, "migration must not block scans");
    assert_eq!(
        store.migrations.len(),
        report.repartitions.len(),
        "every repartition orders exactly one migration"
    );
    let migration = &store.migrations[0];
    assert_eq!(
        migration.placement_generation, report.repartitions[0].generation,
        "migration realizes the swapped placement"
    );
    assert_eq!(migration.triggered_by, report.repartitions[0].triggered_by);
    assert!(
        migration.promoted > 0 && migration.demoted > 0,
        "a rotated hot set must move clusters both ways: {migration:?}"
    );
    assert!(migration.bytes_promoted > 0 && migration.bytes_demoted > 0);
    assert!(
        migration.batches_after >= migration.batches_before,
        "batch counter is monotone through the migration"
    );
    assert_eq!(store.store_generation, store.migrations.len() as u64);
    assert!(store.bytes_promoted >= migration.bytes_promoted);

    // Both tiers were physically exercised.
    assert!(store.hot_probes > 0 && store.cold_probes > 0);
    assert!(store.hot_bytes_scanned > 0 && store.cold_bytes_scanned > 0);
    // Render and CSV carry the tier section.
    let rendered = report.render();
    assert!(rendered.contains("tiered store:"), "render: {rendered}");
    assert!(rendered.contains("tier migrations"), "render: {rendered}");
    let csv = report.store_to_csv();
    assert!(csv.starts_with("fast_clusters,"), "csv: {csv}");
}

#[test]
fn unsupported_metric_falls_back_to_in_index_lists_with_real_results() {
    // Cosine (flat lists) cannot be SQ8-tiered: the runtime must fall
    // back to the in-index scan path — with the index's lists intact —
    // and still serve correct neighbors, not silently empty ones.
    let corpus = corpus();
    let mut config = config();
    config.real.ivf =
        vectorlite_rag::ann::IvfConfig::new(64).metric(vectorlite_rag::ann::Metric::Cosine);
    let server = RagServer::start_with_clock(&corpus, config, Arc::new(VirtualClock::new()))
        .expect("cosine server starts");
    assert!(server.store().is_none(), "cosine cannot build a store");
    let response = server
        .submit(corpus.vectors.get(7).to_vec())
        .expect("admitted")
        .wait()
        .expect("served");
    assert_eq!(
        response.neighbors.first().map(|n| n.id),
        Some(7),
        "a vector must still be its own nearest neighbor"
    );
    let report = server.shutdown();
    assert!(report.store.is_none());
}

#[test]
fn final_tiers_match_the_final_placement() {
    // After shutdown the migrator has drained its order queue, so the
    // store's hot flags must equal the installed router's hot set even
    // when repartitions fired mid-run.
    let corpus = corpus();
    let server = RagServer::start_with_clock(&corpus, config(), Arc::new(VirtualClock::new()))
        .expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(&corpus, 5);
    let n = 1_000;
    run_open_loop(&server, &mut source, 1_500.0, n, 13, |i, source| {
        if i == n / 2 {
            source.set_rotation(16);
        }
    });
    // Shutdown joins every thread (migrator included) before reporting,
    // so the cloned store handle reads the *final* tier map.
    let store = server.store().expect("tiered").clone();
    let shard_clusters = server.current_shard_clusters();
    let generation = server.placement_generation();
    let report = server.shutdown();
    let flags = store.hot_flags();
    assert!(generation >= 1, "drift must have repartitioned");
    assert!(!report.store.unwrap().migrations.is_empty());
    let mut router_hot = vec![false; flags.len()];
    for clusters in &shard_clusters {
        for &c in clusters {
            router_hot[c as usize] = true;
        }
    }
    assert_eq!(
        flags, router_hot,
        "store tiers must converge to the router placement"
    );
}
