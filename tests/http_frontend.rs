//! Integration: the HTTP/1.1 network frontend over real loopback sockets.
//!
//! Covers the request path end to end (submit → batch → dispatch → JSON
//! response), the protocol edges a hand-rolled parser must get right
//! (malformed request lines, reads split across `read()` calls, oversized
//! bodies, keep-alive pipelining), the ops endpoints, and JSON round-trip
//! properties for the wire types.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use proptest::prelude::*;

use vectorlite_rag::ann::Neighbor;
use vectorlite_rag::serve::http::json::Json;
use vectorlite_rag::serve::http::{wire, HttpClient, HttpFrontend};
use vectorlite_rag::serve::{
    GenerationTimings, RagServer, RequestTimings, SearchResponse, ServeConfig, TenantId, TraceId,
};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 2_000,
        dim: 8,
        n_centers: 16,
        zipf_exponent: 1.0,
        noise: 0.2,
        seed: 7,
    })
}

/// A tiny single-tenant server behind a frontend on an OS-picked port.
fn tiny_frontend(max_body: usize) -> (HttpFrontend, SocketAddr, SyntheticCorpus) {
    let corpus = corpus();
    let mut config = ServeConfig::small();
    config.http.max_body = max_body;
    let server = RagServer::start(&corpus, config.clone()).expect("server starts");
    let frontend = HttpFrontend::bind(server, &config.http).expect("frontend binds");
    let addr = frontend.addr();
    (frontend, addr, corpus)
}

fn search_body(query: &[f32]) -> String {
    wire::search_request_to_json(query).render()
}

/// Sends raw bytes and reads until the server closes the connection.
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream.write_all(bytes).expect("writes");
    let mut out = String::new();
    stream.read_to_string(&mut out).expect("reads to close");
    out
}

#[test]
fn end_to_end_search_report_and_health_over_the_socket() {
    let (frontend, addr, corpus) = tiny_frontend(1 << 20);
    let mut client = HttpClient::connect(addr).expect("client connects");

    let health = client.get("/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let health_json = health.json().expect("healthz is JSON");
    assert_eq!(health_json.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health_json.get("tenants").and_then(Json::as_u64), Some(1));

    let tenants = client.get("/v1/tenants").expect("tenants");
    assert_eq!(tenants.status, 200);
    assert_eq!(
        tenants.json().unwrap().as_array().map(<[_]>::len),
        Some(1),
        "implicit single tenant"
    );

    // A vector is its own nearest neighbor, through the whole HTTP path.
    let response = client
        .post_json("/v1/search", &[], &search_body(corpus.vectors.get(0)))
        .expect("search");
    assert_eq!(response.status, 200);
    let decoded = wire::search_response_from_json(&response.json().unwrap()).expect("decodes");
    assert_eq!(decoded.tenant, TenantId(0));
    assert_eq!(decoded.neighbors[0].id, 0);
    assert!(decoded.timings.e2e >= decoded.timings.search);

    let report = client.get("/v1/report").expect("report");
    assert_eq!(report.status, 200);
    let report_json = report.json().expect("report is JSON");
    assert_eq!(report_json.get("completed").and_then(Json::as_u64), Some(1));

    let final_report = frontend.shutdown();
    assert_eq!(final_report.completed, 1);
    assert_eq!(final_report.admitted, 1);
}

#[test]
fn observability_endpoints_over_the_socket() {
    let (frontend, addr, corpus) = tiny_frontend(1 << 20);
    let mut client = HttpClient::connect(addr).expect("client connects");

    let n = 5;
    for qi in 0..n {
        let response = client
            .post_json("/v1/search", &[], &search_body(corpus.vectors.get(qi)))
            .expect("search");
        assert_eq!(response.status, 200);
    }

    // The scrape endpoint speaks Prometheus text exposition, not JSON.
    let metrics = client.get("/v1/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "exposition content type"
    );
    let text = String::from_utf8(metrics.body.clone()).expect("UTF-8 exposition");
    let value = |name: &str| -> f64 {
        text.lines()
            .filter(|l| !l.starts_with('#'))
            .find_map(|l| {
                let (key, v) = l.rsplit_once(' ')?;
                (key == name).then(|| v.parse().expect("numeric sample"))
            })
            .unwrap_or_else(|| panic!("metric {name} missing from scrape"))
    };
    assert_eq!(value("vlite_admitted_total") as u64, n as u64);
    assert_eq!(value("vlite_completed_total") as u64, n as u64);
    assert_eq!(value("vlite_rejected_total"), 0.0);
    assert_eq!(
        value("vlite_stage_seconds_count{stage=\"search\"}") as u64,
        n as u64
    );
    assert!(value("vlite_uptime_seconds") >= 0.0);
    assert!(value("vlite_queue_depth") >= 0.0);

    // Scraped totals agree with the JSON report of the same run.
    let report = client.get("/v1/report").expect("report");
    let report_json = report.json().expect("report is JSON");
    assert_eq!(
        report_json.get("completed").and_then(Json::as_u64),
        Some(value("vlite_completed_total") as u64)
    );

    // Trace timelines: every search of this run is in the recent ring.
    let traces = client.get("/v1/traces").expect("traces");
    assert_eq!(traces.status, 200);
    let traces_json = traces.json().expect("traces are JSON");
    let recent = traces_json
        .get("recent")
        .and_then(Json::as_array)
        .expect("recent ring");
    assert_eq!(recent.len(), n);
    for trace in recent {
        let spans = trace.get("spans").and_then(Json::as_array).expect("spans");
        assert!(spans.len() >= 2, "queue and search spans at minimum");
    }

    // The event journal renders (possibly empty on an undisturbed run).
    let events = client.get("/v1/events").expect("events");
    assert_eq!(events.status, 200);
    assert!(events
        .json()
        .expect("events are JSON")
        .get("events")
        .is_some());

    // /healthz carries the new lock-free liveness fields.
    let health = client.get("/healthz").expect("healthz");
    let health_json = health.json().expect("healthz is JSON");
    assert_eq!(
        health_json.get("completed").and_then(Json::as_u64),
        Some(n as u64)
    );
    assert_eq!(
        health_json.get("worker_panics").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(health_json.get("obs_enabled"), Some(&Json::Bool(true)));

    // The new paths are GET-only.
    let post = client
        .post_json("/v1/metrics", &[], "{}")
        .expect("405 exchange");
    assert_eq!(post.status, 405);
    assert_eq!(post.header("allow"), Some("GET"));

    frontend.shutdown();
}

#[test]
fn malformed_request_lines_get_400_and_a_closed_connection() {
    let (frontend, addr, _) = tiny_frontend(1 << 20);
    for bad in [
        "BADLY FORMED\r\n\r\n",
        "GET /healthz HTTP/9.9\r\n\r\n",
        "GET /healthz HTTP/1.1 junk\r\n\r\n",
    ] {
        let reply = raw_exchange(addr, bad.as_bytes());
        let status: &str = reply.split("\r\n").next().unwrap();
        assert!(
            status.contains("400") || status.contains("505"),
            "{bad:?} answered {status:?}"
        );
        assert!(reply.contains("Connection: close"));
    }
    // The frontend survives garbage: a well-formed request still works.
    let mut client = HttpClient::connect(addr).expect("connects after garbage");
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    frontend.shutdown();
}

#[test]
fn requests_split_across_many_reads_still_parse() {
    let (frontend, addr, corpus) = tiny_frontend(1 << 20);
    let body = search_body(corpus.vectors.get(3));
    let request = format!(
        "POST /v1/search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let bytes = request.as_bytes();
    let mut stream = TcpStream::connect(addr).expect("connects");
    // Dribble the request out a few bytes at a time, across the head/body
    // boundary, with pauses longer than the server's poll interval.
    for chunk in bytes.chunks(bytes.len() / 5 + 1) {
        stream.write_all(chunk).expect("writes chunk");
        stream.flush().unwrap();
        // vlite-allow(clock-discipline): deliberately dribbles bytes slower
        // than the server's poll interval; the pause is the test subject.
        std::thread::sleep(Duration::from_millis(60));
    }
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("reads");
    assert!(reply.starts_with("HTTP/1.1 200"), "got {reply}");
    assert!(reply.contains("\"neighbors\":[{\"id\":3,"));
    frontend.shutdown();
}

#[test]
fn oversized_bodies_are_rejected_with_413() {
    let (frontend, addr, _) = tiny_frontend(128);
    let request = format!(
        "POST /v1/search HTTP/1.1\r\nHost: t\r\nContent-Length: 4096\r\n\r\n{}",
        "x".repeat(64) // only part of the body; the head alone must trip it
    );
    let reply = raw_exchange(addr, request.as_bytes());
    assert!(reply.starts_with("HTTP/1.1 413"), "got {reply}");
    assert!(reply.contains("Connection: close"));
    // In-limit requests still fine on a fresh connection.
    let mut client = HttpClient::connect(addr).expect("connects");
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    frontend.shutdown();
}

#[test]
fn keep_alive_pipelining_answers_every_buffered_request_in_order() {
    let (frontend, addr, corpus) = tiny_frontend(1 << 20);
    let body = search_body(corpus.vectors.get(5));
    let pipelined = format!(
        "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
         POST /v1/search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{}\
         GET /v1/tenants HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        body.len(),
        body
    );
    let reply = raw_exchange(addr, pipelined.as_bytes());
    let statuses: Vec<usize> = reply
        .match_indices("HTTP/1.1 200 OK")
        .map(|(i, _)| i)
        .collect();
    assert_eq!(statuses.len(), 3, "three pipelined responses in {reply}");
    // Responses come back in request order: health, search, tenants.
    let health_at = reply.find("\"status\":\"ok\"").expect("health body");
    let search_at = reply.find("\"neighbors\"").expect("search body");
    let tenants_at = reply.find("\"queue_capacity\"").expect("tenants body");
    assert!(health_at < search_at && search_at < tenants_at);
    assert_eq!(reply.matches("Connection: keep-alive").count(), 2);
    assert_eq!(reply.matches("Connection: close").count(), 1);
    let report = frontend.shutdown();
    assert_eq!(report.completed, 1, "one search among the pipeline");
}

#[test]
fn routing_errors_are_distinguishable() {
    let (frontend, addr, corpus) = tiny_frontend(1 << 20);
    let mut client = HttpClient::connect(addr).expect("connects");

    let wrong_method = client.get("/v1/search").expect("405 exchange");
    assert_eq!(wrong_method.status, 405);
    assert_eq!(wrong_method.header("allow"), Some("POST"));

    let missing = client.get("/v1/nope").expect("404 exchange");
    assert_eq!(missing.status, 404);

    let bad_tenant = client
        .post_json(
            "/v1/search",
            &[("X-Tenant", "7")],
            &search_body(corpus.vectors.get(0)),
        )
        .expect("unknown-tenant exchange");
    assert_eq!(bad_tenant.status, 400, "tenant 7 of 1 is unknown");

    let bad_json = client
        .post_json("/v1/search", &[], "{\"query\":[1,2,")
        .expect("bad-JSON exchange");
    assert_eq!(bad_json.status, 400);

    let empty_query = client
        .post_json("/v1/search", &[], "{\"query\":[]}")
        .expect("empty-query exchange");
    assert_eq!(empty_query.status, 400);

    frontend.shutdown();
}

#[test]
fn malformed_query_vectors_are_refused_at_admission_not_downstream() {
    // Regression: a wrong-dimension or non-finite query used to sail
    // through `submit_for` and panic a shard worker (the SIMD wrappers
    // assert on slice lengths, NaN poisons the top-k order). Admission
    // must refuse it, and over the socket that is a 400 — not a hung
    // connection over a dead worker.
    let (frontend, addr, corpus) = tiny_frontend(1 << 20);
    let mut client = HttpClient::connect(addr).expect("connects");

    // Wrong dimension: 3 components against an 8-d index.
    let wrong_dim = client
        .post_json("/v1/search", &[], &search_body(&[1.0, 2.0, 3.0]))
        .expect("wrong-dim exchange");
    assert_eq!(wrong_dim.status, 400);
    let message = wrong_dim
        .json()
        .expect("JSON error body")
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    assert!(
        message.contains("dimensions"),
        "the 400 must say why: {message}"
    );

    // NaN cannot transit JSON, so the wire layer already 400s it.
    let nan_body = client
        .post_json("/v1/search", &[], "{\"query\":[NaN,0,0,0,0,0,0,0]}")
        .expect("NaN exchange");
    assert_eq!(nan_body.status, 400);

    // In process (the path loadgen and embedders use), a non-finite
    // component is an admission error with the non-finite flag set.
    let server = frontend.server();
    let err = server
        .submit(vec![f32::NAN, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        .expect_err("NaN query must be refused");
    assert_eq!(
        err,
        vectorlite_rag::serve::AdmissionError::InvalidQuery {
            expected_dim: 8,
            got_dim: 8,
            non_finite: true,
        }
    );

    // The worker pool survived all of it: the same connection still
    // serves a healthy query, and no worker panicked.
    let ok = client
        .post_json("/v1/search", &[], &search_body(corpus.vectors.get(0)))
        .expect("healthy exchange");
    assert_eq!(ok.status, 200);
    let health = client.get("/healthz").expect("healthz").json().unwrap();
    assert_eq!(
        health.get("worker_panics").and_then(Json::as_u64),
        Some(0),
        "malformed queries must never reach (and kill) a worker"
    );

    frontend.shutdown();
}

#[test]
fn dropping_the_frontend_quiesces_and_releases_the_port() {
    let (frontend, addr, _) = tiny_frontend(1 << 20);
    assert_eq!(
        HttpClient::connect(addr)
            .unwrap()
            .get("/healthz")
            .unwrap()
            .status,
        200
    );
    drop(frontend); // no shutdown() call — the Drop path must tear down
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be closed after drop"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Query vectors survive encode → render → parse → decode bit-exactly
    /// (f32 → f64 is exact and Rust renders the shortest round-tripping
    /// decimal).
    #[test]
    fn search_request_json_round_trips(query in prop::collection::vec(-1e6f32..1e6, 1..64)) {
        let text = wire::search_request_to_json(&query).render();
        let back = wire::search_request_from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back, query);
    }

    /// Full search responses round-trip field for field, with and without
    /// the co-scheduled generation phase timings.
    #[test]
    fn search_response_json_round_trips(
        id in 0u64..u64::from(u32::MAX),
        tenant in 0u16..8,
        generation in 0u64..1000,
        hit_rate in 0.0f64..1.0,
        queue in 0.0f64..10.0,
        search in 0.0f64..10.0,
        co_scheduled in any::<bool>(),
        gen_queue in 0.0f64..1.0,
        prefill in 0.0f64..1.0,
        decode in 0.0f64..10.0,
        ids in prop::collection::vec(0u64..1_000_000, 0..32),
        distances in prop::collection::vec(0.0f32..1e5, 0..32),
    ) {
        // `zip` truncates to the shorter list, so the neighbor count varies.
        let neighbors: Vec<Neighbor> = ids
            .iter()
            .zip(&distances)
            .map(|(&id, &d)| Neighbor::new(id, d))
            .collect();
        let gen_timings = co_scheduled.then_some(GenerationTimings {
            gen_queue,
            prefill,
            decode,
            ttft: queue + search + gen_queue + prefill,
        });
        let e2e = match &gen_timings {
            Some(g) => g.ttft + g.decode,
            None => queue + search,
        };
        let original = SearchResponse {
            id,
            tenant: TenantId(tenant),
            neighbors,
            timings: RequestTimings { queue, search, e2e, generation: gen_timings },
            hit_rate,
            generation,
            trace: TraceId(u128::from(id) << 32 | 1),
        };
        let text = wire::search_response_to_json(&original).render();
        let back = wire::search_response_from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back.id, original.id);
        prop_assert_eq!(back.tenant, original.tenant);
        prop_assert_eq!(back.neighbors, original.neighbors);
        prop_assert_eq!(back.timings, original.timings);
        prop_assert_eq!(back.hit_rate, original.hit_rate);
        prop_assert_eq!(back.generation, original.generation);
        prop_assert_eq!(back.trace, original.trace);
    }

    /// A timings object missing the `generation` key (an old client's
    /// encoding) still decodes, as retrieval-only.
    #[test]
    fn legacy_response_without_generation_key_decodes(queue in 0.0f64..1.0, search in 0.0f64..1.0) {
        let text = format!(
            "{{\"id\":1,\"tenant\":0,\"generation\":0,\"hit_rate\":0.5,\
             \"timings\":{{\"queue\":{queue},\"search\":{search},\"e2e\":{}}},\
             \"neighbors\":[]}}",
            queue + search
        );
        let back = wire::search_response_from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(back.timings.generation, None);
    }
}
