//! Round-trip tests for `ServeReport::to_csv` / `to_json`, including the
//! TTFT columns added with the generation stage: header/row arity, and
//! parse-back equality of every numeric cell.

use std::time::Duration;

use vectorlite_rag::metrics::Summary;
use vectorlite_rag::serve::http::json::Json;
use vectorlite_rag::serve::{
    MigrationEvent, RepartitionEvent, ServeReport, StageProfile, StoreReport, TenantId,
    TenantReport,
};

fn summary(seed: f64) -> Summary {
    Summary {
        count: 100,
        mean: seed * 1.5,
        min: seed * 0.5,
        max: seed * 9.0,
        p50: seed,
        p90: seed * 2.0,
        p95: seed * 3.0,
        p99: seed * 4.0,
    }
}

fn tenant(i: u16, seed: f64) -> TenantReport {
    TenantReport {
        tenant: TenantId(i),
        weight: u32::from(i) + 1,
        queue_capacity: 256,
        admitted: 1_000 + u64::from(i),
        rejected: 17 * u64::from(i),
        completed: 990 + u64::from(i),
        peak_queue_depth: 31,
        queue: summary(seed * 0.1),
        search: summary(seed),
        e2e: summary(seed * 2.0),
        slo_target: 0.05,
        slo_attainment: 0.9625,
        ttft: summary(seed * 1.7),
        ttft_attainment: 0.8421,
        gen_sheds: 3 + u64::from(i),
        mean_hit_rate: 0.615,
    }
}

/// A fully populated co-scheduled report (every new field nonzero).
fn co_scheduled_report() -> ServeReport {
    ServeReport {
        admitted: 2_001,
        rejected: 17,
        completed: 1_981,
        peak_queue_depth: 44,
        queue: summary(0.0004),
        search: summary(0.002),
        e2e: summary(0.031),
        slo_target: 0.05,
        slo_attainment: 0.9812,
        ttft: summary(0.012),
        gen_queue: summary(0.0015),
        prefill: summary(0.0061),
        decode: summary(0.024),
        slo_ttft: Some(0.25),
        ttft_attainment: 0.9031,
        gen_sheds: 7,
        batches: 77,
        mean_batch: 25.7,
        max_batch: 64,
        mean_hit_rate: 0.633,
        tenants: vec![tenant(0, 0.002), tenant(1, 0.003)],
        repartitions: vec![RepartitionEvent {
            generation: 1,
            at_request: 512,
            triggered_by: TenantId(1),
            observed_by_tenant: vec![200, 312],
            old_coverage: 0.25,
            new_coverage: 0.3125,
            hot_overlap: 0.41,
            queue_depth_at_swap: 9,
            duration: Duration::from_micros(8_500),
        }],
        store: Some(StoreReport {
            fast_clusters: 34,
            total_clusters: 128,
            fast_bytes: 5_120_000,
            cold_bytes: 1_280_000,
            fast_residency: 0.8,
            hot_probes: 4_321,
            cold_probes: 1_234,
            hot_bytes_scanned: 99_000_000,
            cold_bytes_scanned: 7_000_000,
            blocked_scans: 612,
            kernel: "avx2_fma",
            bytes_promoted: 2_000_000,
            bytes_demoted: 1_500_000,
            store_generation: 2,
            snapshot_waits: 0,
            opened_existing: true,
            migrations: vec![MigrationEvent {
                placement_generation: 1,
                store_generation: 1,
                triggered_by: TenantId(1),
                promoted: 9,
                demoted: 7,
                bytes_promoted: 2_000_000,
                bytes_demoted: 1_500_000,
                batches_before: 40,
                batches_after: 55,
                duration: Duration::from_micros(2_750),
            }],
        }),
        generation: 1,
        worker_panics: 0,
        deadline_sheds: [2, 5, 3],
        degraded_probes: 11,
        cold_skips: 4,
        deadline_met: 900,
        deadline_missed: 100,
        deadline_attainment: Some(0.9),
        burn_queue: summary(0.1),
        burn_search: summary(0.4),
        burn_gen: summary(0.3),
        profile: vec![StageProfile {
            stage: "shard_scan",
            wall_s: 1.25,
            cpu_s: 1.0,
            stall_s: 0.25,
            sections: 77,
            sampled_cpu_s: 0.9,
            samples: 18,
        }],
    }
}

#[test]
fn csv_has_stable_arity_and_round_trips_every_cell() {
    let report = co_scheduled_report();
    let csv = report.to_csv();
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    assert_eq!(header, vec!["stage", "p50", "p95", "p99", "mean", "max"]);

    let rows: Vec<Vec<&str>> = lines.map(|l| l.split(',').collect()).collect();
    // Three retrieval stages + four generation stages, always.
    assert_eq!(rows.len(), 7, "stage rows: {csv}");
    let stages: Vec<&str> = rows.iter().map(|r| r[0]).collect();
    assert_eq!(
        stages,
        vec![
            "queue",
            "search",
            "e2e",
            "gen_queue",
            "prefill",
            "decode",
            "ttft"
        ]
    );
    for row in &rows {
        assert_eq!(row.len(), header.len(), "row arity: {row:?}");
    }
    // Parse back every numeric cell and compare against the source summary
    // at the CSV's 6-decimal precision.
    for (row, (_, s)) in rows.iter().zip(report.stages()) {
        for (cell, want) in row[1..].iter().zip([s.p50, s.p95, s.p99, s.mean, s.max]) {
            let parsed: f64 = cell.parse().expect("numeric cell");
            assert!(
                (parsed - want).abs() < 5e-7,
                "cell {cell} drifted from {want}"
            );
        }
    }
}

#[test]
fn retrieval_only_csv_keeps_the_same_shape_with_zero_generation_rows() {
    let mut report = co_scheduled_report();
    report.slo_ttft = None;
    report.ttft = Summary::default();
    report.gen_queue = Summary::default();
    report.prefill = Summary::default();
    report.decode = Summary::default();
    let csv = report.to_csv();
    assert_eq!(csv.lines().count(), 8, "header + 7 stage rows");
    let ttft_row = csv.lines().last().unwrap();
    assert_eq!(
        ttft_row,
        "ttft,0.000000,0.000000,0.000000,0.000000,0.000000"
    );
}

#[test]
fn tenants_csv_header_matches_row_arity_and_round_trips() {
    let report = co_scheduled_report();
    let csv = report.tenants_to_csv();
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    assert!(header.contains(&"ttft_p50"));
    assert!(header.contains(&"ttft_p99"));
    assert!(header.contains(&"ttft_attainment"));
    let rows: Vec<Vec<&str>> = lines.map(|l| l.split(',').collect()).collect();
    assert_eq!(rows.len(), report.tenants.len());
    for (row, t) in rows.iter().zip(&report.tenants) {
        assert_eq!(row.len(), header.len(), "row arity: {row:?}");
        let cell = |name: &str| -> f64 {
            let i = header.iter().position(|h| h.trim() == name).unwrap();
            row[i].parse().expect("numeric cell")
        };
        assert_eq!(cell("tenant") as u16, t.tenant.0);
        assert_eq!(cell("admitted") as u64, t.admitted);
        assert_eq!(cell("rejected") as u64, t.rejected);
        assert_eq!(cell("completed") as u64, t.completed);
        assert!((cell("ttft_p50") - t.ttft.p50).abs() < 5e-7);
        assert!((cell("ttft_p99") - t.ttft.p99).abs() < 5e-7);
        assert!((cell("ttft_attainment") - t.ttft_attainment).abs() < 5e-5);
        assert!((cell("attainment") - t.slo_attainment).abs() < 5e-5);
    }
}

#[test]
fn json_round_trips_exactly_including_ttft_fields() {
    let report = co_scheduled_report();
    let text = report.to_json().render();
    let json = Json::parse(&text).expect("rendered report parses back");

    let num = |v: &Json, k: &str| v.get(k).and_then(Json::as_f64).unwrap();
    // f64 renders shortest-round-trip, so parse-back equality is exact.
    assert_eq!(num(&json, "slo_ttft"), 0.25);
    assert_eq!(num(&json, "ttft_attainment"), report.ttft_attainment);
    assert_eq!(num(&json, "slo_attainment"), report.slo_attainment);
    assert_eq!(num(&json, "completed"), report.completed as f64);
    for (key, s) in [
        ("ttft", &report.ttft),
        ("gen_queue", &report.gen_queue),
        ("prefill", &report.prefill),
        ("decode", &report.decode),
        ("queue", &report.queue),
        ("search", &report.search),
        ("e2e", &report.e2e),
    ] {
        let obj = json.get(key).unwrap();
        assert_eq!(num(obj, "count"), s.count as f64, "{key}.count");
        assert_eq!(num(obj, "mean"), s.mean, "{key}.mean");
        assert_eq!(num(obj, "p50"), s.p50, "{key}.p50");
        assert_eq!(num(obj, "p99"), s.p99, "{key}.p99");
        assert_eq!(num(obj, "max"), s.max, "{key}.max");
    }
    let tenants = json.get("tenants").and_then(Json::as_array).unwrap();
    assert_eq!(tenants.len(), 2);
    for (row, t) in tenants.iter().zip(&report.tenants) {
        assert_eq!(num(row, "ttft_attainment"), t.ttft_attainment);
        let ttft = row.get("ttft").unwrap();
        assert_eq!(num(ttft, "p99"), t.ttft.p99);
        assert_eq!(num(row, "slo_attainment"), t.slo_attainment);
    }
    let repartitions = json.get("repartitions").and_then(Json::as_array).unwrap();
    assert_eq!(num(&repartitions[0], "at_request"), 512.0);
    assert_eq!(num(&repartitions[0], "triggered_by"), 1.0);
    assert_eq!(num(&json, "gen_sheds"), 7.0);

    // The deadline-budget section round-trips: per-stage sheds,
    // degradation counters, attainment, and burn summaries.
    let sheds = json.get("deadline_sheds").expect("deadline_sheds object");
    assert_eq!(num(sheds, "admission"), 2.0);
    assert_eq!(num(sheds, "queue"), 5.0);
    assert_eq!(num(sheds, "generation"), 3.0);
    assert_eq!(num(&json, "degraded_probes"), 11.0);
    assert_eq!(num(&json, "cold_skips"), 4.0);
    assert_eq!(num(&json, "deadline_met"), 900.0);
    assert_eq!(num(&json, "deadline_missed"), 100.0);
    assert_eq!(num(&json, "deadline_attainment"), 0.9);
    for (key, s) in [
        ("burn_queue", &report.burn_queue),
        ("burn_search", &report.burn_search),
        ("burn_gen", &report.burn_gen),
    ] {
        let obj = json.get(key).unwrap();
        assert_eq!(num(obj, "p99"), s.p99, "{key}.p99");
        assert_eq!(num(obj, "mean"), s.mean, "{key}.mean");
    }

    // The per-stage profile section round-trips.
    let profile = json.get("profile").and_then(Json::as_array).unwrap();
    assert_eq!(profile.len(), 1);
    assert_eq!(
        profile[0].get("stage").and_then(Json::as_str),
        Some("shard_scan")
    );
    assert_eq!(num(&profile[0], "wall_s"), 1.25);
    assert_eq!(num(&profile[0], "cpu_s"), 1.0);
    assert_eq!(num(&profile[0], "stall_s"), 0.25);
    assert_eq!(num(&profile[0], "sections"), 77.0);
    assert_eq!(num(&profile[0], "samples"), 18.0);

    // The tiered-store section round-trips, including its migrations.
    let store = json.get("store").expect("store object");
    let s = report.store.as_ref().unwrap();
    assert_eq!(num(store, "fast_clusters"), s.fast_clusters as f64);
    assert_eq!(num(store, "fast_residency"), s.fast_residency);
    assert_eq!(num(store, "hot_probes"), s.hot_probes as f64);
    assert_eq!(num(store, "cold_probes"), s.cold_probes as f64);
    assert_eq!(num(store, "bytes_promoted"), s.bytes_promoted as f64);
    assert_eq!(num(store, "snapshot_waits"), 0.0);
    assert_eq!(store.get("opened_existing"), Some(&Json::Bool(true)));
    let migrations = store.get("migrations").and_then(Json::as_array).unwrap();
    assert_eq!(migrations.len(), 1);
    assert_eq!(num(&migrations[0], "promoted"), 9.0);
    assert_eq!(num(&migrations[0], "batches_after"), 55.0);
}

#[test]
fn storeless_json_encodes_store_as_null_and_csv_as_empty() {
    let mut report = co_scheduled_report();
    report.store = None;
    let text = report.to_json().render();
    let json = Json::parse(&text).unwrap();
    assert_eq!(json.get("store"), Some(&Json::Null));
    assert_eq!(report.store_to_csv(), "");
}

#[test]
fn store_csv_has_matching_header_and_row_arity() {
    let report = co_scheduled_report();
    let csv = report.store_to_csv();
    let mut lines = csv.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    let row: Vec<&str> = lines.next().expect("row").split(',').collect();
    assert_eq!(header.len(), row.len());
    let cell = |name: &str| -> &str {
        let i = header.iter().position(|h| h.trim() == name).unwrap();
        row[i]
    };
    assert_eq!(cell("fast_clusters"), "34");
    assert_eq!(cell("bytes_promoted"), "2000000");
    assert_eq!(cell("opened_existing"), "true");
    assert_eq!(cell("migrations"), "1");
}

#[test]
fn retrieval_only_json_encodes_slo_ttft_as_null() {
    let mut report = co_scheduled_report();
    report.slo_ttft = None;
    let text = report.to_json().render();
    let json = Json::parse(&text).unwrap();
    assert_eq!(json.get("slo_ttft"), Some(&Json::Null));
}

#[test]
fn unbudgeted_json_encodes_deadline_attainment_as_null() {
    let mut report = co_scheduled_report();
    report.deadline_attainment = None;
    let text = report.to_json().render();
    let json = Json::parse(&text).unwrap();
    assert_eq!(json.get("deadline_attainment"), Some(&Json::Null));
}

#[test]
fn render_surfaces_the_deadline_section_only_when_budgeted() {
    let report = co_scheduled_report();
    let text = report.render();
    assert!(text.contains("deadlines: 90.0% met (900 met / 100 missed)"));
    assert!(text.contains("sheds adm/queue/gen 2/5/3"));
    assert!(text.contains("degraded probes 11"));
    assert!(text.contains("budget burn p99"));

    let mut unbudgeted = co_scheduled_report();
    unbudgeted.deadline_attainment = None;
    unbudgeted.deadline_sheds = [0, 0, 0];
    assert!(!unbudgeted.render().contains("deadlines:"));
}
