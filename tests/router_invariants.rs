//! Integration: `Router::route` pruning invariants over a *real* IVF
//! index's probe lists (the unit tests cover modeled workloads; this ties
//! the mapping tables to actual coarse-quantizer output).
//!
//! Invariants:
//! - every probe lands on exactly one destination (one shard or the CPU);
//! - shard-local cluster ids round-trip through the mapping tables back to
//!   the global ids the quantizer produced;
//! - pruning: a shard never receives a cluster it does not host.

use vectorlite_rag::core::{IndexSplit, Placement, RealConfig, RealDeployment, Router};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn deployment(coverage: Option<f64>, n_shards: usize) -> (SyntheticCorpus, RealDeployment) {
    let corpus = SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 8_000,
        dim: 16,
        n_centers: 32,
        zipf_exponent: 1.1,
        noise: 0.25,
        seed: 77,
    });
    let mut config = RealConfig::small();
    config.ivf = vectorlite_rag::ann::IvfConfig::new(64);
    config.n_shards = n_shards;
    config.coverage_override = coverage;
    let deployment = RealDeployment::build(&corpus, config).expect("builds");
    (corpus, deployment)
}

#[test]
fn every_real_probe_lands_on_exactly_one_destination() {
    let (corpus, d) = deployment(Some(0.3), 3);
    let queries = corpus.queries(64, 5);
    for q in queries.iter() {
        let probes = d.probe_global(q);
        let routed = d.router.route(&probes);

        // Conservation: counts match exactly.
        assert_eq!(routed.total_probes(), probes.len());

        // Exactly-once: the multiset of routed global ids equals the input.
        let mut all: Vec<u32> = routed.cpu_probes.clone();
        for list in &routed.shard_probes_global {
            all.extend(list);
        }
        let mut expected = probes.clone();
        all.sort_unstable();
        expected.sort_unstable();
        assert_eq!(all, expected);

        // Placement agreement: CPU probes are cold, shard probes are hot
        // on exactly the shard that received them.
        for &c in &routed.cpu_probes {
            assert_eq!(d.router.split().placement(c), Placement::Cpu, "cluster {c}");
        }
        for (shard, globals) in routed.shard_probes_global.iter().enumerate() {
            for &c in globals {
                match d.router.split().placement(c) {
                    Placement::Gpu { shard: s, .. } => {
                        assert_eq!(usize::from(s), shard, "cluster {c} on the wrong shard")
                    }
                    Placement::Cpu => panic!("cold cluster {c} sent to shard {shard}"),
                }
            }
        }
    }
}

#[test]
fn shard_local_ids_round_trip_through_mapping_tables() {
    let (corpus, d) = deployment(Some(0.4), 4);
    let queries = corpus.queries(48, 9);
    for q in queries.iter() {
        let routed = d.router.route(&d.probe_global(q));
        for (shard, (locals, globals)) in routed
            .shard_probes
            .iter()
            .zip(&routed.shard_probes_global)
            .enumerate()
        {
            assert_eq!(locals.len(), globals.len());
            for (&local, &global) in locals.iter().zip(globals) {
                // local id -> global id through the shard's cluster table.
                assert_eq!(
                    d.router.split().shard_clusters(shard)[local as usize],
                    global,
                    "shard {shard} local {local}"
                );
                // global id -> (shard, local) through the placement table.
                assert_eq!(
                    d.router.split().placement(global),
                    Placement::Gpu {
                        shard: shard as u16,
                        local
                    },
                );
            }
        }
    }
}

#[test]
fn pruning_holds_for_every_coverage_and_shard_count() {
    let (corpus, d) = deployment(None, 2);
    let queries = corpus.queries(16, 21);
    for &coverage in &[0.0, 0.15, 0.5, 1.0] {
        for shards in 1..=4usize {
            let split = IndexSplit::build(&d.profile, coverage, shards);
            let hot_count = split.hot_count();
            let router = Router::new(split);
            for q in queries.iter() {
                let probes = d.probe_global(q);
                let routed = router.route(&probes);
                assert_eq!(routed.total_probes(), probes.len());
                // Per-shard lists never exceed what the shard hosts.
                for (shard, list) in routed.shard_probes.iter().enumerate() {
                    assert!(
                        list.len() <= router.split().shard_clusters(shard).len(),
                        "shard {shard} got more probes than resident clusters"
                    );
                }
                if coverage == 0.0 {
                    assert_eq!(routed.gpu_probe_count(), 0);
                    assert_eq!(hot_count, 0);
                }
                if coverage == 1.0 {
                    assert!(routed.cpu_probes.is_empty());
                }
            }
        }
    }
}

#[test]
fn route_batch_matches_per_query_routing() {
    let (corpus, d) = deployment(Some(0.25), 2);
    let queries = corpus.queries(12, 33);
    let probe_lists: Vec<Vec<u32>> = queries.iter().map(|q| d.probe_global(q)).collect();
    let batched = d.router.route_batch(&probe_lists);
    for (probes, routed) in probe_lists.iter().zip(&batched) {
        assert_eq!(routed, &d.router.route(probes));
    }
}
