//! Integration: multi-tenant isolation in the `vlite-serve` runtime.
//!
//! The scenario the per-tenant queues exist for: a light tenant at a
//! steady, modest rate shares the server with a heavy tenant that floods
//! far past its weighted share (weights 1:4, heavy offered well over 5× its
//! share — in fact over the whole server's capacity). Admission must shed
//! the heavy tenant against its own quota only, and the light tenant's
//! search SLO attainment must hold within 5 points of a solo run on an
//! identically configured server. That flood comparison is inherently a
//! wall-clock experiment, so it stays this file's one *real-time* smoke
//! (trimmed to the shortest window that still floods); the remaining
//! scenarios assert accounting/isolation logic only and run on the
//! deterministic `VirtualClock` with no pacing sleeps at all.

use std::sync::Arc;

use vectorlite_rag::core::RealConfig;
use vectorlite_rag::serve::loadgen::{run_open_loop_tenants, LoadPhase, TenantLoad};
use vectorlite_rag::serve::{
    AdmissionError, RagServer, SearchResponse, ServeConfig, TenantId, TenantSpec, VirtualClock,
};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

const LIGHT: TenantId = TenantId(0);
const HEAVY: TenantId = TenantId(1);
const SLO_SEARCH: f64 = 0.050;

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 6_000,
        dim: 16,
        n_centers: 32,
        zipf_exponent: 1.2,
        noise: 0.25,
        seed: 9,
    })
}

/// Two tenants, weights 1:4; the heavy tenant gets a deliberately small
/// queue so open-loop overload sheds quickly instead of building latency.
fn config() -> ServeConfig {
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(64),
        nprobe: 12,
        top_k: 10,
        n_profile_queries: 512,
        slo_search: SLO_SEARCH,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.3),
    };
    config.tenants = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 256,
            slo_search: SLO_SEARCH,
        },
        TenantSpec {
            weight: 4,
            queue_capacity: 128,
            slo_search: SLO_SEARCH,
        },
    ];
    config
}

/// The light tenant's steady stream: 300 requests at 300/s (a 1-second
/// window — the shortest run whose attainment comparison is still stable).
fn light_load(corpus: &SyntheticCorpus) -> TenantLoad {
    TenantLoad {
        tenant: LIGHT,
        source: vectorlite_rag::serve::loadgen::RotatingQuerySource::from_corpus(corpus, 3),
        phases: vec![LoadPhase {
            rate: 300.0,
            n: 300,
        }],
    }
}

fn attainment(responses: &[SearchResponse]) -> f64 {
    responses
        .iter()
        .filter(|r| r.timings.search <= SLO_SEARCH)
        .count() as f64
        / responses.len() as f64
}

// The file's real-time smoke: the attainment comparison is a wall-clock
// experiment, so it intentionally keeps `RealClock` and the Poisson sleeps.
#[test]
fn heavy_tenant_flood_cannot_steal_the_light_tenants_slo() {
    let corpus = corpus();

    // Solo baseline: the light tenant alone on an identical server.
    let solo_server = RagServer::start(&corpus, config()).expect("server starts");
    let mut solo = vec![light_load(&corpus)];
    let solo_outcome = run_open_loop_tenants(&solo_server, &mut solo, 17);
    solo_server.shutdown();
    let solo_light = &solo_outcome.tenants[0];
    assert_eq!(solo_light.rejected, 0, "solo light load must not be shed");
    assert_eq!(solo_light.responses.len(), 300);
    let solo_attainment = attainment(&solo_light.responses);

    // Contended run: same light stream, plus the heavy tenant offered far
    // beyond the server's total capacity (≫ 5× its weighted share) for the
    // whole window the light tenant is active.
    let server = RagServer::start(&corpus, config()).expect("server starts");
    let mut loads = vec![
        light_load(&corpus),
        TenantLoad {
            tenant: HEAVY,
            source: vectorlite_rag::serve::loadgen::RotatingQuerySource::from_corpus(&corpus, 7),
            phases: vec![LoadPhase {
                rate: 40_000.0,
                n: 42_000,
            }],
        },
    ];
    let outcome = run_open_loop_tenants(&server, &mut loads, 23);
    let report = server.shutdown();

    let light = &outcome.tenants[0];
    let heavy = &outcome.tenants[1];

    // Only the over-quota tenant is shed; its rejections never evict or
    // reject the light tenant's submissions.
    assert_eq!(light.rejected, 0, "light tenant was shed under contention");
    assert!(
        heavy.rejected > 0,
        "heavy tenant offered past capacity must be shed"
    );
    assert_eq!(report.tenants[LIGHT.index()].rejected, 0);
    assert_eq!(
        report.tenants[HEAVY.index()].rejected,
        heavy.rejected as u64
    );

    // Every admitted request (both tenants) was served.
    assert_eq!(report.completed, report.admitted);
    assert_eq!(light.responses.len(), 300);

    // Responses carry their tenant through the pipeline.
    assert!(light.responses.iter().all(|r| r.tenant == LIGHT));
    assert!(heavy.responses.iter().all(|r| r.tenant == HEAVY));

    // The acceptance bar: the light tenant's SLO attainment under the flood
    // stays within 5 points of its solo run.
    let contended_attainment = attainment(&light.responses);
    assert!(
        contended_attainment >= solo_attainment - 0.05,
        "light tenant attainment fell from {solo_attainment:.3} (solo) to \
         {contended_attainment:.3} under the heavy tenant's flood"
    );

    // The per-tenant report rows agree with the driver's accounting.
    assert_eq!(report.tenants.len(), 2);
    assert_eq!(report.tenants[LIGHT.index()].weight, 1);
    assert_eq!(report.tenants[HEAVY.index()].weight, 4);
    assert_eq!(report.tenants[LIGHT.index()].completed, 300);
    assert_eq!(
        report.tenants[HEAVY.index()].completed,
        heavy.responses.len() as u64
    );
}

#[test]
fn virtual_clock_flood_sheds_only_the_over_quota_tenant() {
    // The admission-isolation half of the flood scenario with no wall
    // clock at all: on the `VirtualClock` the Poisson schedule advances
    // stepped time, so both tenants' streams are offered as fast as the
    // machine can push them. The light tenant's lane is sized for its whole
    // burst; the heavy tenant's is not, so only the heavy tenant sheds, and
    // every admitted request is still served on shutdown.
    let corpus = corpus();
    let mut cfg = config();
    cfg.tenants[LIGHT.index()].queue_capacity = 512; // burst-sized: never sheds
    cfg.tenants[HEAVY.index()].queue_capacity = 64;
    let server = RagServer::start_with_clock(&corpus, cfg, Arc::new(VirtualClock::new()))
        .expect("server starts");
    let mut loads = vec![
        TenantLoad {
            tenant: LIGHT,
            source: vectorlite_rag::serve::loadgen::RotatingQuerySource::from_corpus(&corpus, 3),
            phases: vec![LoadPhase {
                rate: 300.0,
                n: 400,
            }],
        },
        TenantLoad {
            tenant: HEAVY,
            source: vectorlite_rag::serve::loadgen::RotatingQuerySource::from_corpus(&corpus, 7),
            phases: vec![LoadPhase {
                rate: 40_000.0,
                n: 4_000,
            }],
        },
    ];
    let outcome = run_open_loop_tenants(&server, &mut loads, 23);
    let report = server.shutdown();

    let light = &outcome.tenants[0];
    let heavy = &outcome.tenants[1];
    assert_eq!(light.rejected, 0, "light tenant shed under virtual flood");
    assert!(
        heavy.rejected > 0,
        "heavy burst must overflow its 64-slot lane"
    );
    assert_eq!(light.responses.len(), 400, "every light request served");
    assert_eq!(report.completed, report.admitted, "backlog fully drained");
    assert_eq!(report.tenants[LIGHT.index()].rejected, 0);
    assert_eq!(
        report.tenants[HEAVY.index()].rejected,
        heavy.rejected as u64
    );
    assert!(light.responses.iter().all(|r| r.tenant == LIGHT));
    assert!(heavy.responses.iter().all(|r| r.tenant == HEAVY));
    // Weighted-fair draining kept the light tenant inside contested
    // batches rather than behind the heavy backlog.
    assert_eq!(report.tenants[LIGHT.index()].completed, 400);
}

#[test]
fn unknown_tenant_is_rejected_without_a_request_id_leak() {
    let corpus = corpus();
    let server = RagServer::start(&corpus, config()).expect("server starts");
    let err = server
        .submit_for(TenantId(2), corpus.vectors.get(0).to_vec())
        .unwrap_err();
    assert_eq!(
        err,
        AdmissionError::UnknownTenant {
            tenant: TenantId(2),
            n_tenants: 2
        }
    );
    // The rejected submission must not appear anywhere in the accounting.
    let report = server.shutdown();
    assert_eq!(report.admitted, 0);
    assert_eq!(report.rejected, 0);
}

#[test]
fn single_tenant_config_still_reports_one_implicit_tenant() {
    let corpus = corpus();
    let mut cfg = config();
    cfg.tenants.clear(); // fall back to the implicit tenant
    cfg.queue_capacity = 512;
    let server = RagServer::start(&corpus, cfg).expect("server starts");
    let ticket = server
        .submit(corpus.vectors.get(0).to_vec())
        .expect("admitted");
    assert_eq!(ticket.tenant(), TenantId(0));
    let response = ticket.wait().expect("served");
    assert_eq!(response.tenant, TenantId(0));
    let report = server.shutdown();
    assert_eq!(report.tenants.len(), 1);
    assert_eq!(report.tenants[0].queue_capacity, 512);
    assert_eq!(report.tenants[0].completed, 1);
}
