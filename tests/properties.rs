//! Property-based invariants across the workspace (proptest).

use proptest::prelude::*;

use vectorlite_rag::ann::{merge_sorted, Neighbor, TopK, VecSet};
use vectorlite_rag::core::stats::{expected_batch_min, BetaDist, PiecewiseLinear};
use vectorlite_rag::core::{AccessProfile, HitRateEstimator, IndexSplit, Placement, Router};
use vectorlite_rag::llm::PagedKvCache;
use vectorlite_rag::workload::{ClusterWorkload, DatasetPreset, ZipfSampler};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Top-k selection must agree exactly with full sort + truncate.
    #[test]
    fn topk_equals_sorted_truth(distances in prop::collection::vec(0.0f32..1e6, 1..200), k in 1usize..32) {
        let mut top = TopK::new(k);
        for (i, &d) in distances.iter().enumerate() {
            top.push(i as u64, d);
        }
        let got = top.into_sorted();
        let mut truth: Vec<Neighbor> = distances
            .iter()
            .enumerate()
            .map(|(i, &d)| Neighbor::new(i as u64, d))
            .collect();
        truth.sort();
        truth.truncate(k);
        prop_assert_eq!(got, truth);
    }

    /// Merging partial sorted lists equals selecting over their union.
    #[test]
    fn merge_sorted_equals_union_topk(
        a in prop::collection::vec(0.0f32..100.0, 0..50),
        b in prop::collection::vec(0.0f32..100.0, 0..50),
        k in 1usize..16,
    ) {
        let la: Vec<Neighbor> = a.iter().enumerate().map(|(i, &d)| Neighbor::new(i as u64, d)).collect();
        let lb: Vec<Neighbor> = b.iter().enumerate().map(|(i, &d)| Neighbor::new((i + 1000) as u64, d)).collect();
        let merged = merge_sorted(&[la.clone(), lb.clone()], k);
        let mut union: Vec<Neighbor> = la.into_iter().chain(lb).collect();
        union.sort();
        union.truncate(k);
        prop_assert_eq!(merged, union);
    }

    /// Beta CDF is monotone and bounded for any feasible parameters.
    #[test]
    fn beta_cdf_monotone(alpha in 0.05f64..20.0, beta in 0.05f64..20.0) {
        let d = BetaDist::new(alpha, beta);
        let mut prev = 0.0;
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            let f = d.cdf(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-9);
            prev = f;
        }
    }

    /// The batch-minimum expectation never exceeds the mean and decreases
    /// with batch size.
    #[test]
    fn batch_min_below_mean_and_decreasing(mean in 0.05f64..0.95, sigma in 0.005f64..0.2) {
        let var = (4.0 * sigma * mean * (1.0 - mean)).min(0.95 * mean * (1.0 - mean));
        prop_assume!(var > 0.0);
        let d = BetaDist::from_mean_variance(mean, var).unwrap();
        let mut prev = f64::INFINITY;
        for batch in [1usize, 2, 4, 8] {
            let m = expected_batch_min(&d, batch);
            prop_assert!(m <= d.mean() + 2e-3, "E[min of {batch}] {m} above mean {}", d.mean());
            prop_assert!(m <= prev + 1e-9);
            prev = m;
        }
    }

    /// Piecewise-linear fits reproduce their knots exactly.
    #[test]
    fn piecewise_interpolates_knots(points in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..20)) {
        // Deduplicate x values (duplicates are averaged by the builder).
        let mut seen = std::collections::BTreeSet::new();
        let unique: Vec<(f64, f64)> = points
            .into_iter()
            .filter(|(x, _)| seen.insert(x.to_bits()))
            .collect();
        let f = PiecewiseLinear::from_points(unique.clone()).unwrap();
        for (x, y) in unique {
            prop_assert!((f.eval(x) - y).abs() < 1e-9);
        }
    }

    /// The paged KV allocator conserves blocks across arbitrary
    /// reserve/free interleavings.
    #[test]
    fn kv_allocator_conserves_blocks(ops in prop::collection::vec((1u64..200, any::<bool>()), 1..60)) {
        let mut kv = PagedKvCache::new(16, 128);
        let mut live = Vec::new();
        for (tokens, free_one) in ops {
            if free_one && !live.is_empty() {
                let handle = live.swap_remove(0);
                kv.free(handle);
            } else if let Some(handle) = kv.try_reserve(tokens) {
                live.push(handle);
            }
            prop_assert!(kv.used_blocks() <= kv.total_blocks());
        }
        for handle in live {
            kv.free(handle);
        }
        prop_assert_eq!(kv.used_blocks(), 0);
    }

    /// Zipf weights are a normalized, descending distribution.
    #[test]
    fn zipf_weights_are_distribution(n in 1usize..500, s in 0.0f64..4.0) {
        let w = ZipfSampler::weights(n, s);
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(w.windows(2).all(|p| p[0] >= p[1] - 1e-12));
    }

    /// Probe sets are always distinct clusters of the requested size.
    #[test]
    fn probe_sets_are_distinct(nlist in 16usize..256, seed in 0u64..1000) {
        let nprobe = nlist / 4;
        let wl = ClusterWorkload::new(nlist, nprobe, 1.0, 0);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let probes = wl.gen_probe_set(&mut rng);
        prop_assert!(!probes.is_empty() && probes.len() <= nprobe);
        let mut sorted = probes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), probes.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Router conservation: every probe routes to exactly one destination,
    /// and mapping tables are bijections, for arbitrary coverage/shards.
    #[test]
    fn router_conserves_probes(coverage in 0.0f64..1.0, shards in 1usize..6, seed in 0u64..50) {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(seed);
        let profile = AccessProfile::from_workload(&preset, &wl, 300, seed);
        let split = IndexSplit::build(&profile, coverage, shards);
        // Bijection check.
        let mut gpu_total = 0usize;
        for c in 0..profile.nlist() as u32 {
            if let Placement::Gpu { shard, local } = split.placement(c) {
                prop_assert_eq!(split.shard_clusters(usize::from(shard))[local as usize], c);
                gpu_total += 1;
            }
        }
        prop_assert_eq!(gpu_total, split.hot_count());
        // Conservation check.
        let router = Router::new(split);
        let probes: Vec<u32> = (0..preset.nlist as u32).step_by(3).collect();
        let routed = router.route(&probes);
        prop_assert_eq!(routed.total_probes(), probes.len());
    }

    /// The estimator's coverage inversion is sound: the returned coverage
    /// achieves at least the requested batch-minimum hit rate.
    #[test]
    fn hit_rate_inversion_is_sound(target in 0.05f64..0.9, batch in 1usize..16, seed in 0u64..20) {
        let preset = DatasetPreset::tiny();
        let wl = preset.workload(seed);
        let profile = AccessProfile::from_workload(&preset, &wl, 500, seed);
        let est = HitRateEstimator::from_profile(&profile);
        let coverage = est.hit_rate_to_coverage(target, batch);
        prop_assert!((0.0..=1.0).contains(&coverage));
        if coverage < 1.0 {
            prop_assert!(
                est.eta_min(coverage, batch) >= target - 1e-6,
                "coverage {} gives {} < target {}",
                coverage,
                est.eta_min(coverage, batch),
                target
            );
        }
    }

    /// VecSet row selection preserves content.
    #[test]
    fn vecset_select_preserves_rows(n in 1usize..50, dim in 1usize..16) {
        let set = VecSet::from_fn(n, dim, |i, j| (i * dim + j) as f32);
        let rows: Vec<usize> = (0..n).rev().collect();
        let sel = set.select(&rows);
        for (out_row, &src_row) in rows.iter().enumerate() {
            prop_assert_eq!(sel.get(out_row), set.get(src_row));
        }
    }
}
