//! Integration: the analytic estimator against empirical sampling — the
//! repository-level version of the paper's Fig. 10 validation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use vectorlite_rag::core::stats::expected_batch_min_empirical;
use vectorlite_rag::core::{AccessProfile, HitRateEstimator};
use vectorlite_rag::workload::{ClusterWorkload, DatasetPreset};

#[test]
fn beta_tail_estimate_tracks_empirical_min_hit_rate() {
    let preset = DatasetPreset::tiny();
    let wl = preset.workload(55);
    let profile = AccessProfile::from_workload(&preset, &wl, 4000, 55);
    let est = HitRateEstimator::from_profile(&profile);
    let coverage = 0.2;

    // Empirical: sample fresh queries, compute per-query hit rates, take
    // window minima.
    let hot = profile.hot_set(coverage);
    let mask = {
        let mut mask = vec![false; preset.nlist];
        for c in hot {
            mask[c as usize] = true;
        }
        mask
    };
    let mut rng = StdRng::seed_from_u64(77);
    let samples: Vec<f64> = (0..6000)
        .map(|_| ClusterWorkload::hit_rate(&wl.gen_probe_set(&mut rng), &mask))
        .collect();

    for batch in [1usize, 4, 8] {
        let empirical = expected_batch_min_empirical(&samples, batch);
        let predicted = est.eta_min(coverage, batch);
        assert!(
            (empirical - predicted).abs() < 0.15,
            "batch {batch}: empirical {empirical:.3} vs predicted {predicted:.3}"
        );
    }
}

#[test]
fn mean_hit_rate_estimates_match_sampling() {
    let preset = DatasetPreset::tiny();
    let wl = preset.workload(56);
    let profile = AccessProfile::from_workload(&preset, &wl, 4000, 56);
    for coverage in [0.1, 0.3, 0.5] {
        let analytic = wl.mean_hit_rate(coverage);
        let profiled = profile.mean_hit_rate(coverage);
        assert!(
            (analytic - profiled).abs() < 0.05,
            "coverage {coverage}: workload model {analytic:.3} vs profiled {profiled:.3}"
        );
    }
}

#[test]
fn variance_parabola_holds_on_fresh_samples() {
    // The σ² ≈ 4σ²max·m(1−m) approximation (paper Fig. 8 right) must hold
    // out of sample, not just on the profiling draw.
    let preset = DatasetPreset::tiny();
    let wl = preset.workload(57);
    let profile = AccessProfile::from_workload(&preset, &wl, 4000, 57);
    let sigma2_max = profile.fit_sigma2_max();
    let mut worst = 0.0f64;
    for step in 2..=18 {
        let coverage = step as f64 / 20.0;
        let (mean, var) = profile.hit_rate_moments(coverage);
        if !(0.05..0.95).contains(&mean) {
            continue;
        }
        let model = 4.0 * sigma2_max * mean * (1.0 - mean);
        worst = worst.max((var - model).abs());
    }
    assert!(worst < 0.08, "parabola deviation too large: {worst}");
}
