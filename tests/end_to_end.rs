//! Integration: the full offline + serving path across all systems.

use vectorlite_rag::core::{PipelineConfig, RagConfig, RagPipeline, RagSystem, SystemKind};

fn run(
    kind: SystemKind,
    rate: f64,
    n: usize,
    seed: u64,
) -> (RagSystem, vectorlite_rag::core::RunResult) {
    let system = RagSystem::build(RagConfig::tiny(kind));
    let result = RagPipeline::new(&system).run(&PipelineConfig::new(rate, n, seed));
    (system, result)
}

#[test]
fn every_system_serves_every_request() {
    for kind in SystemKind::main_four() {
        let (_, result) = run(kind, 10.0, 120, 1);
        assert_eq!(result.completed, 120, "{kind:?} dropped requests");
        assert_eq!(result.ttft.len(), 120);
    }
}

#[test]
fn vectorlite_attainment_dominates_cpu_only() {
    // The headline claim at moderate load: vLiteRAG's TTFT distribution
    // (under the same combined SLO) beats the CPU-only baseline.
    let (vl_sys, vl) = run(SystemKind::VectorLite, 25.0, 300, 2);
    let (_, cpu) = run(SystemKind::CpuOnly, 25.0, 300, 2);
    let target = vl_sys.slo_ttft();
    assert!(
        vl.slo_attainment(target) >= cpu.slo_attainment(target),
        "vLiteRAG {} < CPU-only {}",
        vl.slo_attainment(target),
        cpu.slo_attainment(target)
    );
}

#[test]
fn vectorlite_search_is_faster_than_cpu_only() {
    let (_, mut vl) = run(SystemKind::VectorLite, 20.0, 300, 3);
    let (_, mut cpu) = run(SystemKind::CpuOnly, 20.0, 300, 3);
    assert!(
        vl.search_exec.percentile(0.9) <= cpu.search_exec.percentile(0.9),
        "hybrid search P90 {} should not exceed CPU-only {}",
        vl.search_exec.percentile(0.9),
        cpu.search_exec.percentile(0.9)
    );
}

#[test]
fn overload_shows_up_in_queueing_not_lost_requests() {
    // A near-instantaneous burst far past retrieval capacity: requests pile
    // into the on-demand batcher, so P90 queueing exceeds P90 execution
    // while every request is still served.
    let (_, mut result) = run(SystemKind::CpuOnly, 10_000.0, 300, 4);
    assert_eq!(result.completed, 300);
    assert!(
        result.search_queue.percentile(0.9) > result.search_exec.percentile(0.9),
        "queue p90 {} should exceed exec p90 {}",
        result.search_queue.percentile(0.9),
        result.search_exec.percentile(0.9)
    );
}

#[test]
fn memory_never_oversubscribed_in_any_system() {
    for kind in SystemKind::main_four() {
        let system = RagSystem::build(RagConfig::tiny(kind));
        for (gpu, ledger) in system.ledgers.iter().enumerate() {
            assert!(
                ledger.used() <= ledger.capacity(),
                "{kind:?} oversubscribes GPU {gpu}"
            );
        }
    }
}

#[test]
fn dispatcher_ablation_improves_mean_search_latency() {
    let mut on_cfg = RagConfig::tiny(SystemKind::VectorLite);
    on_cfg.dispatcher = true;
    let mut off_cfg = RagConfig::tiny(SystemKind::VectorLite);
    off_cfg.dispatcher = false;
    let on_sys = RagSystem::build(on_cfg);
    let off_sys = RagSystem::build(off_cfg);
    let on = RagPipeline::new(&on_sys).run(&PipelineConfig::new(40.0, 300, 5));
    let off = RagPipeline::new(&off_sys).run(&PipelineConfig::new(40.0, 300, 5));
    assert!(
        on.search_exec.mean() <= off.search_exec.mean() + 1e-9,
        "dispatcher on ({}) should not be slower than off ({})",
        on.search_exec.mean(),
        off.search_exec.mean()
    );
}

#[test]
fn deterministic_end_to_end() {
    let (_, a) = run(SystemKind::VectorLite, 15.0, 100, 9);
    let (_, b) = run(SystemKind::VectorLite, 15.0, 100, 9);
    assert_eq!(a.ttft.samples(), b.ttft.samples());
    assert_eq!(a.e2e.samples(), b.e2e.samples());
}
