//! Integration: the `vlite-serve` runtime under open-loop Poisson load.
//!
//! Two scenarios on a tiny corpus:
//! 1. Steady load meets the search SLO and serves every admitted request
//!    through the persistent shard-worker/dispatcher pipeline, with results
//!    identical to the single-path scan. This is the file's one *real-time*
//!    smoke: its SLO assertions are about wall-clock behaviour, so it keeps
//!    the wall clock and the Poisson sleeps.
//! 2. Rotating the workload's Zipf hot set mid-run makes observed hit
//!    rates diverge from the estimator's expectation, which must trigger at
//!    least one `DriftMonitor`-driven online repartition — placement
//!    changes, the queue is never drained, and no request is lost. This
//!    scenario asserts *logical* behaviour only, so it runs on the
//!    deterministic `VirtualClock`: the load generator's Poisson schedule
//!    advances virtual time instead of sleeping, cutting the test's
//!    wall-clock runtime to the scan work alone.

use std::sync::Arc;

use vectorlite_rag::core::{RealConfig, UpdateConfig};
use vectorlite_rag::serve::loadgen::{run_open_loop, RotatingQuerySource};
use vectorlite_rag::serve::{ControlConfig, RagServer, ServeConfig, VirtualClock};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 6_000,
        dim: 16,
        n_centers: 32,
        zipf_exponent: 1.2,
        noise: 0.25,
        seed: 9,
    })
}

fn config() -> ServeConfig {
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(64),
        nprobe: 12,
        top_k: 10,
        n_profile_queries: 512,
        // Generous search SLO for CI machines: the point is that steady
        // load *meets* it, not that the hardware is fast.
        slo_search: 0.050,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        // Mid-range pinned coverage so the hot set matters (see the
        // rag_server example for the rationale).
        coverage_override: Some(0.3),
    };
    config.control = ControlConfig {
        update: UpdateConfig {
            slo_attainment_threshold: 0.9,
            hit_rate_divergence: 0.08,
            window_requests: 200,
        },
        profile_window: 600,
        cooldown_requests: 200,
        require_slo_breach: false,
        ..ControlConfig::default()
    };
    config
}

// The file's real-time smoke: wall-clock pacing and SLO attainment are the
// subject here, so it intentionally keeps `RealClock` and the sleeps.
#[test]
fn steady_poisson_load_meets_search_slo() {
    let corpus = corpus();
    let server = RagServer::start(&corpus, config()).expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(&corpus, 3);

    let n = 600;
    let outcome = run_open_loop(&server, &mut source, 800.0, n, 11, |_, _| {});
    let report = server.shutdown();

    assert_eq!(outcome.rejected, 0, "steady load must not be shed");
    assert_eq!(outcome.responses.len(), n, "every request completes");
    assert_eq!(report.completed as usize, n);
    assert!(
        report.slo_attainment >= 0.95,
        "search SLO attainment {:.3} below 0.95 (p99 {:.4}s against {:.3}s)",
        report.slo_attainment,
        report.search.p99,
        report.slo_target,
    );
    // Dynamic batching actually batched under queueing.
    assert!(report.batches >= 1 && report.mean_batch >= 1.0);
    // Timeline sanity per response: queue + search == e2e (within float
    // noise), all non-negative.
    for r in &outcome.responses {
        assert!(r.timings.queue >= 0.0 && r.timings.search >= 0.0);
        assert!((r.timings.queue + r.timings.search - r.timings.e2e).abs() < 1e-6);
    }
}

#[test]
fn responses_match_single_path_search_exactly() {
    let corpus = corpus();
    // Tiering disabled: this test pins the hybrid *merge* against the
    // full-precision single-path scan, which only holds when cold
    // clusters are not SQ8-quantized. The tiered scan path has its own
    // equivalence and round-trip suite in tests/tiered_serve.rs.
    let mut storeless = config();
    storeless.store.disabled = true;
    let server = RagServer::start(&corpus, storeless).expect("server starts");
    let queries = corpus.queries(24, 41);

    let tickets: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.to_vec()).expect("admitted"))
        .collect();
    let responses: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("server alive"))
        .collect();

    // Reconstruct the ground truth from a fresh offline deployment with the
    // same seed/config: the hybrid merge must equal the single-path scan.
    let deployment = vectorlite_rag::core::RealDeployment::build(&corpus, {
        let mut real = config().real.clone();
        real.seed = 0x7ea1;
        real
    })
    .expect("builds");
    for (qi, response) in responses.iter().enumerate() {
        let plain = deployment.search_flat_path(queries.get(qi));
        assert_eq!(
            response.neighbors, plain,
            "request {qi} diverged from single-path scan"
        );
    }
    server.shutdown();
}

#[test]
fn hot_set_rotation_triggers_online_repartition() {
    // Virtual clock: the 1,200-request Poisson schedule advances stepped
    // time instead of sleeping (~0.8s of wall-clock sleeps removed); the
    // drift trigger runs on hit-rate observations, which are identical.
    let corpus = corpus();
    let server = RagServer::start_with_clock(&corpus, config(), Arc::new(VirtualClock::new()))
        .expect("server starts");
    let placement_before = server.current_shard_clusters();
    assert_eq!(server.placement_generation(), 0);

    let mut source = RotatingQuerySource::from_corpus(&corpus, 5);
    let n = 1_200;
    let rotate_at = n / 2;
    let outcome = run_open_loop(&server, &mut source, 1_500.0, n, 13, |i, source| {
        if i == rotate_at {
            source.set_rotation(16); // half the 32 topics: hot set moves
        }
    });

    let placement_after = server.current_shard_clusters();
    let generation = server.placement_generation();
    let report = server.shutdown();

    // Every request was served; admission never paused for the update.
    assert_eq!(outcome.rejected, 0, "no shedding at this load");
    assert_eq!(report.completed, report.admitted);
    assert_eq!(outcome.responses.len(), n);

    // At least one online repartition fired, after the rotation point.
    assert!(
        generation >= 1,
        "drift must advance the placement generation"
    );
    assert!(!report.repartitions.is_empty());
    let event = &report.repartitions[0];
    assert!(
        event.at_request as usize > rotate_at,
        "repartition at {} should follow the rotation at {rotate_at}",
        event.at_request
    );
    // The hot set genuinely moved and the new placement is installed.
    assert!(
        event.hot_overlap < 0.9,
        "hot set barely moved: {}",
        event.hot_overlap
    );
    assert_ne!(placement_before, placement_after, "placement must change");

    // Later responses carry the new generation (hot swap, not restart).
    assert!(outcome.responses.iter().any(|r| r.generation == 0));
    assert!(outcome.responses.iter().any(|r| r.generation >= 1));
}

#[test]
fn dropping_the_server_without_shutdown_serves_the_backlog() {
    // Regression: `Drop` must run the same graceful quiesce as
    // `shutdown()` — close admission, serve every queued request, join the
    // threads — so panicking tests and early-return callers don't orphan
    // in-flight tickets. A torn-down-mid-batch runtime would make some
    // `wait()` below return `None`.
    let corpus = corpus();
    let server = RagServer::start(&corpus, config()).expect("server starts");
    let queries = corpus.queries(64, 43);
    let tickets: Vec<_> = queries
        .iter()
        .map(|q| server.submit(q.to_vec()).expect("admitted"))
        .collect();
    drop(server); // no shutdown() call
    for (i, ticket) in tickets.into_iter().enumerate() {
        let response = ticket
            .wait()
            .unwrap_or_else(|| panic!("ticket {i} orphaned by drop"));
        assert!(!response.neighbors.is_empty(), "request {i} served empty");
    }
}
