//! Quickstart: build a VectorLiteRAG deployment and serve a request trace.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vectorlite_rag::core::{PipelineConfig, RagConfig, RagPipeline, RagSystem, SystemKind};
use vectorlite_rag::metrics::fmt_seconds;

fn main() {
    // 1. Configure a deployment: serving system, dataset, model, node.
    //    `tiny` keeps this example fast; see `rag_serving.rs` for the
    //    paper-scale configurations.
    let config = RagConfig::tiny(SystemKind::VectorLite);

    // 2. Run the offline stage: profiling, hit-rate estimation, bare-LLM
    //    throughput measurement, Algorithm 1, index splitting.
    let system = RagSystem::build(config);
    println!("=== offline stage ===");
    println!(
        "cache coverage rho   : {:.1}%",
        100.0 * system.decision.coverage
    );
    println!(
        "GPU-resident index   : {:.1} MiB across {} shards",
        system.decision.index_bytes as f64 / (1 << 20) as f64,
        system.router.split().n_shards()
    );
    println!("bare LLM throughput  : {:.1} req/s", system.mu_llm0);
    println!(
        "estimated throughput : {:.1} req/s (after KV reduction)",
        system.decision.mu_llm
    );
    println!("expected batch size  : {}", system.decision.expected_batch);
    println!(
        "predicted search lat : {} (budget {})",
        fmt_seconds(system.decision.predicted_latency),
        fmt_seconds(system.decision.tau_s)
    );

    // 3. Serve a Poisson trace through the runtime pipeline.
    let mut result = RagPipeline::new(&system).run(&PipelineConfig::new(12.0, 400, 42));
    println!("\n=== serving 400 requests at 12 req/s ===");
    println!("completed            : {}", result.completed);
    println!("TTFT                 : {}", result.ttft.summary());
    println!("end-to-end           : {}", result.e2e.summary());
    println!("search (incl. queue) : {}", result.search_total.summary());
    println!(
        "mean search batch    : {:.1}",
        result.search_stats.mean_batch()
    );
    println!(
        "TTFT SLO attainment  : {:.1}% (target {})",
        100.0 * result.slo_attainment(system.slo_ttft()),
        fmt_seconds(system.slo_ttft())
    );
}
