//! Paper-scale serving comparison: four systems on ORCAS 1K + Qwen3-32B.
//!
//! Reproduces one panel of the paper's Fig. 11 interactively: sweeps the
//! arrival rate and prints TTFT SLO attainment plus end-to-end latency for
//! CPU-Only, DED-GPU, ALL-GPU and VectorLiteRAG.
//!
//! Run with:
//! ```sh
//! cargo run --release --example rag_serving
//! ```

use vectorlite_rag::core::{PipelineConfig, RagConfig, RagPipeline, RagSystem, SystemKind};
use vectorlite_rag::llm::ModelSpec;
use vectorlite_rag::metrics::Table;
use vectorlite_rag::workload::DatasetPreset;

fn main() {
    // Sweep arrival rates relative to the bare node capacity (the paper's
    // vertical dashed line), on a grid shared by all systems — crossing
    // each system's *reduced* capacity is what exposes the collapse order.
    let rate_fractions = [0.6, 0.8, 0.95, 1.1, 1.25];
    let n_requests = 800;

    let bare_capacity = RagSystem::build(RagConfig::paper_default(
        SystemKind::CpuOnly,
        DatasetPreset::orcas_1k(),
        ModelSpec::qwen3_32b(),
    ))
    .mu_llm0;
    let rates: Vec<f64> = rate_fractions.iter().map(|f| f * bare_capacity).collect();

    let mut table = Table::new(vec![
        "system",
        "rate (req/s)",
        "SLO attainment",
        "P90 TTFT (ms)",
        "mean E2E (s)",
        "coverage",
    ]);

    for kind in SystemKind::main_four() {
        let config =
            RagConfig::paper_default(kind, DatasetPreset::orcas_1k(), ModelSpec::qwen3_32b());
        let system = RagSystem::build(config);
        let target = system.slo_ttft();
        for &rate in &rates {
            let mut result =
                RagPipeline::new(&system).run(&PipelineConfig::new(rate, n_requests, 11));
            table.row(vec![
                kind.name().to_string(),
                format!("{rate:.0}"),
                format!("{:.1}%", 100.0 * result.slo_attainment(target)),
                format!("{:.0}", result.ttft.percentile(0.90) * 1e3),
                format!("{:.2}", result.e2e.mean()),
                format!("{:.1}%", 100.0 * system.decision.coverage),
            ]);
        }
    }

    println!("ORCAS 1K + Qwen3-32B on the 8xH100 node (paper Fig. 11, middle panel)");
    println!("{}", table.render());
    println!("The SLO-compliant range should be widest for vLiteRAG, with CPU-Only");
    println!("violating earliest and ALL-GPU degrading at high rates from contention.");
}
