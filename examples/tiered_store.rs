//! The persisted-index workload: **build → save → reload → serve**, with
//! bit-identical results asserted across the restart.
//!
//! Run with `cargo run --release --example tiered_store` (CI runs it as an
//! e2e step).
//!
//! The first server trains the index, runs Algorithm 1, and detaches the
//! index's list payloads into a `vlite-store` segment file on disk: hot
//! clusters stay resident at full precision, cold clusters are scanned
//! straight from the segment's mmap'd SQ8 extents. The second server —
//! built from the same corpus and seeds — finds the segment already on
//! disk, verifies it against the freshly trained index (per-cluster
//! content checksums), reopens it instead of rewriting, and must serve
//! exactly the same neighbors, bit for bit.

use std::sync::Arc;

use vectorlite_rag::ann::Neighbor;
use vectorlite_rag::core::RealConfig;
use vectorlite_rag::serve::{RagServer, ServeConfig, VirtualClock};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn config(dir: std::path::PathBuf) -> ServeConfig {
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(128),
        nprobe: 16,
        top_k: 10,
        n_profile_queries: 512,
        slo_search: 0.050,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        // Pinned coverage: the split is then a pure function of the seeded
        // calibration profile, so both servers build identical placements
        // — the precondition for a bit-identical round trip.
        coverage_override: Some(0.25),
    };
    config.store.dir = Some(dir);
    config
}

fn serve_queries(server: &RagServer, queries: &vectorlite_rag::ann::VecSet) -> Vec<Vec<Neighbor>> {
    queries
        .iter()
        .map(|q| {
            server
                .submit(q.to_vec())
                .expect("admitted")
                .wait()
                .expect("served")
                .neighbors
        })
        .collect()
}

fn main() {
    let corpus = SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 12_000,
        dim: 32,
        n_centers: 64,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 3,
    });
    let queries = corpus.queries(48, 41);
    let dir = std::env::temp_dir().join(format!("vlite-tiered-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- build + save -----------------------------------------------------
    println!("[1/2] building the deployment and writing the segment…");
    let server =
        RagServer::start_with_clock(&corpus, config(dir.clone()), Arc::new(VirtualClock::new()))
            .expect("server starts");
    {
        let store = server.store().expect("flat index builds a tiered store");
        let residency = store.residency();
        println!(
            "      segment: {}  ({} clusters, {}/{} fast, {:.1}% of bytes resident, mmap: {})",
            store.path().display(),
            residency.total_clusters,
            residency.hot_clusters,
            residency.total_clusters,
            100.0 * residency.byte_fraction(),
            store.is_mapped(),
        );
    }
    let first = serve_queries(&server, &queries);
    let report = server.shutdown();
    let store_report = report.store.as_ref().expect("tiered report");
    assert!(
        !store_report.opened_existing,
        "first run must write a fresh segment"
    );
    assert!(store_report.hot_probes > 0 && store_report.cold_probes > 0);
    println!(
        "      served {} requests: {} fast-tier probes, {} cold-tier probes",
        report.completed, store_report.hot_probes, store_report.cold_probes
    );

    // ---- reload + serve ---------------------------------------------------
    println!("[2/2] rebuilding the deployment and reloading the segment…");
    let server =
        RagServer::start_with_clock(&corpus, config(dir.clone()), Arc::new(VirtualClock::new()))
            .expect("server restarts");
    let second = serve_queries(&server, &queries);
    let report = server.shutdown();
    let store_report = report.store.as_ref().expect("tiered report");
    assert!(
        store_report.opened_existing,
        "second run must reopen (and checksum-verify) the existing segment"
    );

    assert_eq!(
        first, second,
        "save → load → serve must return bit-identical top-k results"
    );
    println!(
        "      reloaded segment served {} requests with bit-identical top-{} results ✓",
        report.completed,
        first[0].len()
    );
    println!("\n{}", report.render());

    let _ = std::fs::remove_dir_all(&dir);
}
