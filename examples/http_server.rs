//! The `vlite-serve` runtime behind its HTTP/1.1 network frontend: start a
//! two-tenant server on a real socket, drive it with the bundled client the
//! way `curl` would, and shut down gracefully.
//!
//! Run with:
//! ```sh
//! cargo run --release --example http_server
//! ```
//!
//! To poke the server from a shell instead, set `VLITE_HTTP_HOLD=30` and
//! copy the printed curl lines within that many seconds.

use vectorlite_rag::core::RealConfig;
use vectorlite_rag::serve::http::{HttpClient, HttpFrontend};
use vectorlite_rag::serve::loadgen::RotatingQuerySource;
use vectorlite_rag::serve::{RagServer, ServeConfig, TenantSpec};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn main() {
    let corpus = SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 10_000,
        dim: 32,
        n_centers: 64,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 5,
    });

    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(96),
        nprobe: 16,
        top_k: 5,
        n_profile_queries: 512,
        slo_search: 0.050,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.25),
    };
    config.tenants = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 256,
            slo_search: 0.050,
        },
        TenantSpec {
            weight: 4,
            queue_capacity: 256,
            slo_search: 0.050,
        },
    ];
    // Port 0: the OS picks a free port, printed below.
    config.http.addr = "127.0.0.1:0".into();

    println!("training IVF index, profiling, partitioning ...");
    let server = RagServer::start(&corpus, config.clone()).expect("server starts");
    let frontend = HttpFrontend::bind(server, &config.http).expect("frontend binds");
    let addr = frontend.addr();

    println!("\nHTTP frontend listening on http://{addr}");
    println!("endpoints:");
    println!("  GET  /healthz      liveness, queue depth, placement generation, completed");
    println!("  GET  /v1/tenants   the tenant table");
    println!("  GET  /v1/report    full ServeReport as JSON");
    println!("  GET  /v1/metrics   live Prometheus text exposition (lock-free scrape)");
    println!("  GET  /v1/traces    recent + slow per-request trace timelines");
    println!("  GET  /v1/events    the unified runtime event journal");
    println!("  POST /v1/search    body {{\"query\":[...]}}, X-Tenant header picks the tenant");
    println!("\ntry it:");
    println!("  curl http://{addr}/healthz");
    println!("  curl http://{addr}/v1/metrics");
    println!("  curl http://{addr}/v1/traces");
    println!(
        "  curl -X POST http://{addr}/v1/search -H 'X-Tenant: 1' \\\n       -d '{{\"query\":[{}]}}'",
        corpus
            .vectors
            .get(0)
            .iter()
            .map(|x| format!("{x:.3}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    println!("  curl http://{addr}/v1/report\n");

    if let Ok(hold) = std::env::var("VLITE_HTTP_HOLD") {
        let secs: u64 = hold.parse().unwrap_or(30);
        println!("VLITE_HTTP_HOLD set: serving external traffic for {secs}s ...");
        // vlite-allow(clock-discipline): interactive demo hold for a human
        // poking the socket with curl; nothing is timed against it.
        std::thread::sleep(std::time::Duration::from_secs(secs));
    }

    // Drive the socket like an external client would.
    let mut client = HttpClient::connect(addr).expect("client connects");
    let health = client.get("/healthz").expect("healthz");
    println!(
        "GET /healthz -> {} {}",
        health.status,
        String::from_utf8_lossy(&health.body)
    );

    let mut source = RotatingQuerySource::from_corpus(&corpus, 0xfeed);
    for tenant in ["0", "1", "1"] {
        let query = source.next_query();
        let body = format!(
            "{{\"query\":[{}]}}",
            query
                .iter()
                .map(f32::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
        let response = client
            .post_json("/v1/search", &[("X-Tenant", tenant)], &body)
            .expect("search");
        let json = response.json().expect("JSON body");
        let top = json
            .get("neighbors")
            .and_then(|n| n.as_array())
            .map_or(0, <[_]>::len);
        let search_s = json
            .get("timings")
            .and_then(|t| t.get("search"))
            .and_then(|s| s.as_f64())
            .unwrap_or(f64::NAN);
        println!(
            "POST /v1/search (X-Tenant: {tenant}) -> {} ({top} neighbors, search {:.2}ms)",
            response.status,
            1e3 * search_s
        );
    }

    let report = client.get("/v1/report").expect("report");
    println!(
        "GET /v1/report -> {} ({} bytes of JSON)",
        report.status,
        report.body.len()
    );

    // The live scrape: every counter here was recorded lock-free while
    // the searches above were in flight.
    let metrics = client.get("/v1/metrics").expect("metrics");
    let exposition = String::from_utf8_lossy(&metrics.body);
    println!("GET /v1/metrics -> {} — a few samples:", metrics.status);
    for line in exposition.lines().filter(|l| {
        l.starts_with("vlite_completed_total")
            || l.starts_with("vlite_batches_total")
            || l.starts_with("vlite_queue_depth")
    }) {
        println!("  {line}");
    }

    let final_report = frontend.shutdown();
    println!("\nfinal report after graceful shutdown:");
    println!("{}", final_report.render());
    // External curls during a VLITE_HTTP_HOLD window also count toward
    // `completed`, so only a lower bound is asserted.
    assert!(
        final_report.completed >= 3,
        "at least the three demo searches, got {}",
        final_report.completed
    );
}
