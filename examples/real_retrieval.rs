//! Real-tier retrieval: the full offline + runtime path over an actual
//! IVF index with the threaded dynamic dispatcher — no cost models.
//!
//! Builds a synthetic Gaussian-mixture corpus, trains a real IVF index,
//! profiles it with wall-clock measurements, partitions it, and serves
//! batches through shard workers + CPU worker + dispatcher thread,
//! verifying that the hybrid path returns exactly what a single-path scan
//! would, and reporting retrieval quality against exhaustive search.
//!
//! Run with:
//! ```sh
//! cargo run --release --example real_retrieval
//! ```

use vectorlite_rag::ann::{eval, FlatIndex, Metric};
use vectorlite_rag::core::{RealConfig, RealDeployment};
use vectorlite_rag::serve::hybrid_search_batch;
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn main() {
    // A corpus large enough for meaningful skew, small enough to be quick.
    let corpus_cfg = CorpusConfig {
        n_vectors: 60_000,
        dim: 48,
        n_centers: 128,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 5,
    };
    println!(
        "generating corpus: {} vectors x {} dims ...",
        corpus_cfg.n_vectors, corpus_cfg.dim
    );
    let corpus = SyntheticCorpus::generate(&corpus_cfg);

    let mut config = RealConfig::small();
    config.ivf = vectorlite_rag::ann::IvfConfig::new(256);
    config.nprobe = 24;
    config.n_shards = 3;
    println!("training IVF index ({} lists) and profiling ...", 256);
    let deployment = RealDeployment::build(&corpus, config).expect("deployment builds");

    println!("\n=== measured profile ===");
    println!(
        "top-20% access share : {:.2}",
        deployment.profile.mean_hit_rate(0.2)
    );
    println!(
        "fitted sigma^2_max   : {:.4}",
        deployment.estimator.sigma2_max()
    );
    println!(
        "coverage decision    : {:.1}%",
        100.0 * deployment.decision.coverage
    );
    println!(
        "GPU-resident bytes   : {:.1} MiB of {:.1} MiB",
        deployment.decision.index_bytes as f64 / (1 << 20) as f64,
        deployment.profile.total_bytes() as f64 / (1 << 20) as f64
    );

    // Serve a batch through the threaded dispatcher.
    let queries = corpus.queries(16, 99);
    let outcome = hybrid_search_batch(&deployment, &queries);
    println!("\n=== hybrid batch of 16 queries ===");
    println!("completion order: {:?}", outcome.completion_order);

    // Verify hybrid == plain, and measure quality vs exhaustive search.
    let flat = FlatIndex::new(corpus.vectors.clone(), Metric::L2);
    let mut recall_sum = 0.0;
    let mut ndcg_sum = 0.0;
    for (qi, q) in queries.iter().enumerate() {
        let plain = deployment.search_flat_path(q);
        assert_eq!(
            outcome.results[qi], plain,
            "hybrid diverged from single-path scan"
        );
        let truth = flat.search(q, 10);
        recall_sum += eval::recall_at_k(&truth, &outcome.results[qi], 10);
        ndcg_sum += eval::ndcg_at_k(&truth, &outcome.results[qi], 10);
    }
    println!("hybrid path == single-path scan: verified for all 16 queries");
    println!("mean recall@10 vs exhaustive   : {:.3}", recall_sum / 16.0);
    println!("mean NDCG@10 vs exhaustive     : {:.3}", ndcg_sum / 16.0);
}
