//! Adaptive runtime index update under query-distribution drift (§IV-B3).
//!
//! Simulates the paper's drift scenario: the workload's hot region migrates
//! (rotated popularity ring), the drift monitor's dual trigger fires, and an
//! update cycle re-profiles, re-partitions, re-splits and reloads shards —
//! with the per-stage timings of Fig. 9.
//!
//! Run with:
//! ```sh
//! cargo run --release --example adaptive_update
//! ```

use vectorlite_rag::core::{
    run_update_cycle, DriftMonitor, PartitionInput, PerfModel, SearchCostModel, UpdateConfig,
};
use vectorlite_rag::sim::devices;
use vectorlite_rag::workload::DatasetPreset;

fn main() {
    let preset = DatasetPreset::orcas_1k();
    let workload = preset.workload(1);
    let cpu = devices::xeon_8462y();
    let gpu = devices::h100();
    let cost = SearchCostModel::from_preset(&preset, &workload, &cpu, &gpu);
    let perf = PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16, 32]);
    let input = PartitionInput::new(preset.slo_search_ms / 1e3, 30.0, 256 << 30);

    // Initial deployment.
    let initial = run_update_cycle(&preset, &workload, &cost, &perf, &input, &gpu, 5000, 8, 1);
    let expected_hit = initial.profile.mean_hit_rate(initial.decision.coverage);
    println!(
        "initial coverage: {:.1}%  expected mean hit rate: {:.2}",
        100.0 * initial.decision.coverage,
        expected_hit
    );

    // The query distribution drifts: the hot region rotates half the ring.
    let drifted = workload.rotated(preset.nlist / 2);

    // The router's monitor observes requests under the *old* split: hit
    // rates collapse and SLO violations pile up.
    let mut monitor = DriftMonitor::new(UpdateConfig::default(), expected_hit);
    let old_mask = {
        let hot = initial.profile.hot_set(initial.decision.coverage);
        let mut mask = vec![false; preset.nlist];
        for c in hot {
            mask[c as usize] = true;
        }
        mask
    };
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    for _ in 0..2000 {
        let probes = drifted.gen_probe_set(&mut rng);
        let hits = probes.iter().filter(|&&c| old_mask[c as usize]).count();
        let hit_rate = hits as f64 / probes.len() as f64;
        // Low hit rate ⇒ the hybrid latency model blows the budget.
        let met_slo = hit_rate > 0.5;
        monitor.observe(hit_rate, met_slo);
    }
    println!("\nafter drift:");
    println!(
        "  windowed SLO attainment : {:.1}%",
        100.0 * monitor.attainment()
    );
    println!(
        "  observed mean hit rate  : {:.2} (expected {:.2})",
        monitor.observed_mean_hit(),
        expected_hit
    );
    println!("  update triggered        : {}", monitor.should_update());
    assert!(
        monitor.should_update(),
        "drift this severe must trigger an update"
    );

    // Run the update cycle against the drifted distribution.
    let refreshed = run_update_cycle(&preset, &drifted, &cost, &perf, &input, &gpu, 5000, 8, 2);
    let t = refreshed.timing;
    println!("\nupdate cycle stage timings (paper Fig. 9):");
    println!("  profiling : {:6.2}s", t.profiling);
    println!("  algorithm : {:6.3}s", t.algorithm);
    println!("  splitting : {:6.2}s", t.splitting);
    println!("  loading   : {:6.2}s", t.loading);
    println!(
        "  total     : {:6.2}s  (paper: under one minute)",
        t.total()
    );

    // The refreshed split chases the new hot region.
    let old_hot = initial.profile.hot_set(0.1);
    let new_hot = refreshed.profile.hot_set(0.1);
    let overlap = old_hot.iter().filter(|c| new_hot.contains(c)).count();
    println!(
        "\nhot-set overlap before/after update: {overlap}/{} clusters",
        old_hot.len()
    );
    let new_expected = refreshed.profile.mean_hit_rate(refreshed.decision.coverage);
    println!("restored expected mean hit rate: {new_expected:.2}");
}
