//! `vlite-serve` end to end: a long-lived serving runtime under open-loop
//! Poisson load, with a mid-run hot-set shift that triggers one *online*
//! repartition — placement changes while the queue keeps admitting and
//! batches keep launching (it is never drained for the update).
//!
//! Run with:
//! ```sh
//! cargo run --release --example rag_server
//! ```

use vectorlite_rag::core::{RealConfig, UpdateConfig};
use vectorlite_rag::metrics::fmt_seconds;
use vectorlite_rag::serve::loadgen::{run_open_loop, RotatingQuerySource};
use vectorlite_rag::serve::{ControlConfig, RagServer, ServeConfig};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

fn main() {
    // A corpus with real Zipf topic skew: the hot set is meaningful.
    let corpus_cfg = CorpusConfig {
        n_vectors: 30_000,
        dim: 32,
        n_centers: 64,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 5,
    };
    println!(
        "generating corpus: {} vectors x {} dims, {} topics ...",
        corpus_cfg.n_vectors, corpus_cfg.dim, corpus_cfg.n_centers
    );
    let corpus = SyntheticCorpus::generate(&corpus_cfg);

    // Offline stage + runtime config. Coverage is pinned mid-range so the
    // cache is real but partial — the regime where a hot-set shift actually
    // hurts hit rates (at ρ=0 or ρ=1 drift would be invisible). The control
    // loop triggers on hit-rate divergence alone (`require_slo_breach:
    // false`): the shard workers are CPU threads standing in for GPUs, so
    // wall-clock SLO breaches on this machine would be noise, not signal.
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(128),
        nprobe: 16,
        top_k: 10,
        n_profile_queries: 768,
        slo_search: 0.025,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.25),
    };
    config.max_batch = 64;
    config.control = ControlConfig {
        update: UpdateConfig {
            slo_attainment_threshold: 0.9,
            hit_rate_divergence: 0.08,
            window_requests: 400,
        },
        profile_window: 1500,
        cooldown_requests: 400,
        require_slo_breach: false,
    };

    println!("training IVF index (128 lists), profiling, partitioning ...");
    let server = RagServer::start(&corpus, config).expect("server starts");
    println!(
        "offline: coverage {:.1}% (pinned), expected mean hit rate {:.3}, Algorithm-1 decision ρ={:.3}",
        100.0 * server.current_coverage(),
        server.expected_mean_hit(),
        server.initial_decision().coverage,
    );
    let placement_before = server.current_shard_clusters();

    // Open loop: 2 400 requests at 1 200 req/s; at the halfway mark the
    // workload's Zipf popularity ring rotates by half the topics — the old
    // hot clusters go cold and vice versa.
    let n_requests = 2_400;
    let rate = 1_200.0;
    let rotate_at = n_requests / 2;
    let rotation = corpus_cfg.n_centers / 2;
    println!(
        "\ndriving {n_requests} requests at {rate:.0}/s (hot-set rotation at {rotate_at}) ..."
    );
    let mut source = RotatingQuerySource::from_corpus(&corpus, 0xfeed);
    let outcome = run_open_loop(&server, &mut source, rate, n_requests, 7, |i, source| {
        if i == rotate_at {
            source.set_rotation(rotation);
        }
    });

    let placement_after = server.current_shard_clusters();
    let generation = server.placement_generation();
    let report = server.shutdown();
    println!("\n=== ServeReport ===\n{}", report.render());

    // The acceptance bar: every admitted request was served, at least one
    // online repartition happened, and the placement genuinely changed.
    assert_eq!(outcome.rejected, 0, "no request was shed at this load");
    assert_eq!(
        report.completed, report.admitted,
        "queue served everything — never drained"
    );
    assert!(
        !report.repartitions.is_empty(),
        "the hot-set shift must trigger an online repartition"
    );
    assert!(generation >= 1, "placement generation must advance");
    assert_ne!(
        placement_before, placement_after,
        "shard placement must change across the swap"
    );
    println!(
        "placement changed: generation {} installs a new hot set (overlap {:.2} with the old one)",
        generation, report.repartitions[0].hot_overlap
    );
    println!(
        "search p50/p95/p99: {} / {} / {}  |  SLO({}) attainment {:.1}%",
        fmt_seconds(report.search.p50),
        fmt_seconds(report.search.p95),
        fmt_seconds(report.search.p99),
        fmt_seconds(report.slo_target),
        100.0 * report.slo_attainment,
    );
    println!("\nonline repartition verified: placement moved, queue never drained.");
}
