//! `vlite-serve` end to end, multi-tenant: a long-lived serving runtime
//! shared by a quiet tenant and an aggressive one. Mid-run the aggressive
//! tenant floods the server far past its weighted share; per-tenant bounded
//! queues shed *its* overload against *its* quota while smooth weighted
//! round-robin draining keeps the quiet tenant's share of every batch — so
//! the quiet tenant's p99 and SLO attainment hold, which the per-tenant
//! report table shows directly.
//!
//! Run with:
//! ```sh
//! cargo run --release --example rag_server
//! ```

use vectorlite_rag::core::RealConfig;
use vectorlite_rag::metrics::fmt_seconds;
use vectorlite_rag::serve::loadgen::{
    run_open_loop_tenants, LoadPhase, RotatingQuerySource, TenantLoad,
};
use vectorlite_rag::serve::{RagServer, SearchResponse, ServeConfig, TenantId, TenantSpec};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

const QUIET: TenantId = TenantId(0);
const AGGRESSIVE: TenantId = TenantId(1);
// Generous for CI runners: locally the contended search p99 is ~8 ms, but
// the solo-vs-contended attainment comparison must not flake on slow
// shared machines — the point is isolation, not absolute speed.
const SLO_SEARCH: f64 = 0.050;

fn attainment(responses: &[SearchResponse]) -> f64 {
    responses
        .iter()
        .filter(|r| r.timings.search <= SLO_SEARCH)
        .count() as f64
        / responses.len() as f64
}

fn p99_search(responses: &[SearchResponse]) -> f64 {
    let mut lats: Vec<f64> = responses.iter().map(|r| r.timings.search).collect();
    lats.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    lats[((lats.len() - 1) as f64 * 0.99) as usize]
}

fn quiet_load(corpus: &SyntheticCorpus) -> TenantLoad {
    TenantLoad {
        tenant: QUIET,
        source: RotatingQuerySource::from_corpus(corpus, 0xfeed),
        phases: vec![LoadPhase {
            rate: 400.0,
            n: 800,
        }],
    }
}

fn main() {
    // A corpus with real Zipf topic skew: the hot set is meaningful.
    let corpus_cfg = CorpusConfig {
        n_vectors: 20_000,
        dim: 32,
        n_centers: 64,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 5,
    };
    println!(
        "generating corpus: {} vectors x {} dims, {} topics ...",
        corpus_cfg.n_vectors, corpus_cfg.dim, corpus_cfg.n_centers
    );
    let corpus = SyntheticCorpus::generate(&corpus_cfg);

    // Two tenants at weights 1:4. The aggressive tenant gets the larger
    // weight — the point is that even the *favored* tenant cannot push the
    // quiet one past its share: overload fills the aggressive tenant's own
    // bounded queue and is shed there, and weighted-fair draining caps it
    // at 4/5 of each contested batch.
    let tenant_table = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 512,
            slo_search: SLO_SEARCH,
        },
        TenantSpec {
            weight: 4,
            queue_capacity: 512,
            slo_search: SLO_SEARCH,
        },
    ];
    let make_config = || {
        let mut config = ServeConfig::small();
        config.real = RealConfig {
            ivf: vectorlite_rag::ann::IvfConfig::new(128),
            nprobe: 16,
            top_k: 10,
            n_profile_queries: 768,
            slo_search: SLO_SEARCH,
            mu_llm0: 50.0,
            kv_bytes_full: 8 << 30,
            n_shards: 2,
            seed: 0x7ea1,
            coverage_override: Some(0.25),
        };
        config.max_batch = 64;
        config.tenants = tenant_table.clone();
        config
    };

    // Solo baseline: the quiet tenant alone on an identically configured
    // server — the yardstick its contended attainment is held against.
    println!("training IVF index (128 lists), profiling, partitioning ...");
    let solo_server = RagServer::start(&corpus, make_config()).expect("server starts");
    println!("\nsolo baseline: quiet tenant alone, 800 requests at 400/s ...");
    let mut solo_loads = vec![quiet_load(&corpus)];
    let solo = run_open_loop_tenants(&solo_server, &mut solo_loads, 7);
    solo_server.shutdown();
    let solo_quiet = &solo.tenants[0];
    assert_eq!(solo_quiet.rejected, 0, "solo quiet load must not be shed");
    let solo_attainment = attainment(&solo_quiet.responses);
    println!(
        "solo: search p99 {}  SLO({}) attainment {:.1}%",
        fmt_seconds(p99_search(&solo_quiet.responses)),
        fmt_seconds(SLO_SEARCH),
        100.0 * solo_attainment,
    );

    // Contended run: the same quiet stream, while the aggressive tenant
    // ramps from a polite rate into a mid-run flood far past the server's
    // capacity (≫ 5× its weighted share), then back off.
    println!(
        "\ncontended run: quiet tenant at 400/s vs aggressive tenant \
         (800/s -> 40000/s flood -> 800/s) ..."
    );
    let server = RagServer::start(&corpus, make_config()).expect("server starts");
    let mut loads = vec![
        quiet_load(&corpus),
        TenantLoad {
            tenant: AGGRESSIVE,
            source: RotatingQuerySource::from_corpus(&corpus, 0xbeef),
            phases: vec![
                LoadPhase {
                    rate: 800.0,
                    n: 480,
                },
                LoadPhase {
                    rate: 40_000.0,
                    n: 40_000,
                },
                LoadPhase {
                    rate: 800.0,
                    n: 240,
                },
            ],
        },
    ];
    let outcome = run_open_loop_tenants(&server, &mut loads, 7);
    let report = server.shutdown();
    println!("\n=== ServeReport ===\n{}", report.render());

    let quiet = &outcome.tenants[0];
    let aggressive = &outcome.tenants[1];
    let contended_attainment = attainment(&quiet.responses);

    // The acceptance bar: only the flooding tenant is shed, every admitted
    // request is served, and the quiet tenant's SLO attainment stays within
    // 5 points of its solo run.
    assert_eq!(quiet.rejected, 0, "quiet tenant must never be shed");
    assert!(
        aggressive.rejected > 0,
        "the flood must be shed against the aggressive tenant's own quota"
    );
    assert_eq!(
        report.completed, report.admitted,
        "queue served everything — never drained"
    );
    assert_eq!(quiet.responses.len(), 800, "every quiet request served");
    assert!(
        contended_attainment >= solo_attainment - 0.05,
        "quiet tenant attainment {contended_attainment:.3} fell more than \
         5 points below solo {solo_attainment:.3}"
    );

    println!(
        "quiet tenant under flood: search p99 {}  SLO attainment {:.1}% \
         (solo {:.1}%)",
        fmt_seconds(p99_search(&quiet.responses)),
        100.0 * contended_attainment,
        100.0 * solo_attainment,
    );
    println!(
        "aggressive tenant: {} submitted, {} rejected (its own quota), {} served",
        aggressive.submitted,
        aggressive.rejected,
        aggressive.responses.len(),
    );
    println!("\nmulti-tenant isolation verified: the flood paid for itself.");
}
