//! End-to-end RAG serving: retrieval-only vs co-scheduled generation.
//!
//! Runs the same two-tenant open-loop workload against two identically
//! partitioned servers — one stopping at the merged top-k (what
//! `vlite-serve` did before the generation bridge), one feeding every
//! merged retrieval through the `vlite-llm` continuous-batching engine —
//! and prints the latency stages side by side. The co-scheduled run is
//! the paper's actual metric: TTFT under shared resources, with queue /
//! prefill / decode phases broken out per request and per-tenant TTFT
//! SLO attainment in the report.
//!
//! Run with:
//! ```sh
//! cargo run --release --example rag_e2e
//! ```

use vectorlite_rag::core::RealConfig;
use vectorlite_rag::metrics::{fmt_seconds, Table};
use vectorlite_rag::serve::loadgen::{
    run_open_loop_tenants, LoadPhase, RotatingQuerySource, TenantLoad,
};
use vectorlite_rag::serve::{
    GenerationConfig, RagServer, ServeConfig, ServeReport, TenantId, TenantSpec,
};
use vectorlite_rag::workload::{CorpusConfig, SyntheticCorpus};

const SLO_SEARCH: f64 = 0.050;

fn base_config() -> ServeConfig {
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vectorlite_rag::ann::IvfConfig::new(128),
        nprobe: 16,
        top_k: 10,
        n_profile_queries: 512,
        slo_search: SLO_SEARCH,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.25),
    };
    config.tenants = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 512,
            slo_search: SLO_SEARCH,
        },
        TenantSpec {
            weight: 2,
            queue_capacity: 512,
            slo_search: SLO_SEARCH,
        },
    ];
    config
}

fn loads(corpus: &SyntheticCorpus) -> Vec<TenantLoad> {
    vec![
        TenantLoad {
            tenant: TenantId(0),
            source: RotatingQuerySource::from_corpus(corpus, 0xaaaa),
            phases: vec![LoadPhase {
                rate: 300.0,
                n: 200,
            }],
        },
        TenantLoad {
            tenant: TenantId(1),
            source: RotatingQuerySource::from_corpus(corpus, 0xbbbb),
            phases: vec![LoadPhase {
                rate: 500.0,
                n: 320,
            }],
        },
    ]
}

fn run(corpus: &SyntheticCorpus, config: ServeConfig, seed: u64) -> ServeReport {
    let server = RagServer::start(corpus, config).expect("server starts");
    let mut loads = loads(corpus);
    let outcome = run_open_loop_tenants(&server, &mut loads, seed);
    for tenant in &outcome.tenants {
        assert_eq!(tenant.rejected, 0, "this load must not be shed");
    }
    server.shutdown()
}

fn main() {
    let corpus_cfg = CorpusConfig {
        n_vectors: 12_000,
        dim: 24,
        n_centers: 48,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 5,
    };
    println!(
        "generating corpus: {} vectors x {} dims, {} topics ...",
        corpus_cfg.n_vectors, corpus_cfg.dim, corpus_cfg.n_centers
    );
    let corpus = SyntheticCorpus::generate(&corpus_cfg);

    println!("\n[1/2] retrieval-only server: two tenants, 520 requests ...");
    let retrieval_report = run(&corpus, base_config(), 17);

    println!("[2/2] co-scheduled server: same workload through the LLM engine ...");
    let mut co_config = base_config();
    co_config.generation = Some(GenerationConfig::tiny());
    let slo_ttft = co_config.generation.as_ref().unwrap().slo_ttft;
    let co_report = run(&corpus, co_config, 17);

    // Side-by-side stage comparison: retrieval-only vs co-scheduled.
    let mut table = Table::new(vec![
        "stage",
        "retrieval-only p50/p99",
        "co-scheduled p50/p99",
    ]);
    for ((stage, a), (_, b)) in retrieval_report.stages().iter().zip(co_report.stages()) {
        let fmt = |s: &vectorlite_rag::metrics::Summary| {
            if s.count == 0 {
                "-".to_string()
            } else {
                format!("{} / {}", fmt_seconds(s.p50), fmt_seconds(s.p99))
            }
        };
        table.row(vec![(*stage).to_string(), fmt(a), fmt(b)]);
    }
    println!(
        "\n=== retrieval-only vs co-scheduled TTFT ===\n{}",
        table.render()
    );
    println!(
        "co-scheduled TTFT SLO {}: attainment {:.1}% over {} requests",
        fmt_seconds(slo_ttft),
        100.0 * co_report.ttft_attainment,
        co_report.ttft.count,
    );
    println!(
        "\nper-tenant (co-scheduled):\n{}",
        co_report.tenant_table().render()
    );

    // The acceptance bar this example gates in CI: the co-scheduled run
    // reports real, nonzero TTFT accounting end to end, and the
    // retrieval-only server is untouched by the generation stage.
    assert_eq!(retrieval_report.slo_ttft, None);
    assert_eq!(retrieval_report.ttft.count, 0);
    assert_eq!(co_report.slo_ttft, Some(slo_ttft));
    assert_eq!(
        co_report.ttft.count as u64, co_report.completed,
        "every co-scheduled request has a TTFT sample"
    );
    assert!(
        co_report.ttft_attainment > 0.0,
        "co-scheduled TTFT attainment must be nonzero"
    );
    for t in &co_report.tenants {
        assert!(
            t.ttft_attainment > 0.0 && t.ttft.count > 0,
            "tenant {} must report TTFT attainment",
            t.tenant
        );
    }
    assert!(
        co_report.e2e.p50 > retrieval_report.e2e.p50,
        "generation must lengthen the end-to-end path"
    );
    println!("\nend-to-end co-scheduling verified: TTFT measured, not imagined.");
}
