//! Capacity planning: how the SLO knob trades GPU memory between the
//! vector index and the KV cache (paper Table II / Fig. 16).
//!
//! For a sweep of search-stage SLOs, runs Algorithm 1 and prints the
//! resulting memory split — the "explicit control knob" the paper's
//! conclusion highlights for RAG operators.
//!
//! Run with:
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use vectorlite_rag::core::{
    partition, AccessProfile, HitRateEstimator, PartitionInput, PerfModel, SearchCostModel,
};
use vectorlite_rag::llm::{throughput, LlmCostModel, ModelSpec};
use vectorlite_rag::metrics::Table;
use vectorlite_rag::sim::devices;
use vectorlite_rag::workload::DatasetPreset;

fn main() {
    // Qwen3-32B on 2×H100 (one TP group), ORCAS 1K — the Table II setup.
    let preset = DatasetPreset::orcas_1k();
    let model = ModelSpec::qwen3_32b();
    let gpu = devices::h100();
    let cpu = devices::xeon_8462y();
    let tp = model.default_tp;

    let workload = preset.workload(3);
    let profile = AccessProfile::from_workload(&preset, &workload, 3000, 3);
    let estimator = HitRateEstimator::from_profile(&profile);
    let cost = SearchCostModel::from_preset(&preset, &workload, &cpu, &gpu);
    let perf = PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16, 32]);

    let llm_cost = LlmCostModel::new(model.clone(), gpu.clone(), tp);
    let param_gb = model.param_bytes() as f64 / 1e9;
    let workspace: u64 = 4 << 30;
    let kv_full: u64 = (gpu.mem_bytes - llm_cost.param_bytes_per_gpu() - workspace) * u64::from(tp);
    let peak = throughput::measure_peak(&llm_cost, kv_full, 1024, 256, 64);

    let gib = |b: u64| b as f64 / (1u64 << 30) as f64;
    let mut table = Table::new(vec![
        "SLO (ms)",
        "Index (GB)",
        "Param (GB)",
        "KV Cache (GB)",
        "coverage",
    ]);
    for slo_ms in [100.0, 150.0, 200.0, 250.0] {
        let input = PartitionInput::new(slo_ms / 1e3, peak.requests_per_sec, kv_full);
        let decision = partition(&input, &perf, &estimator, &profile);
        table.row(vec![
            format!("{slo_ms:.0}"),
            format!("{:.2}", gib(decision.index_bytes)),
            format!("{param_gb:.2}"),
            format!("{:.2}", gib(decision.kv_bytes_remaining)),
            format!("{:.1}%", 100.0 * decision.coverage),
        ]);
    }

    println!("Memory split per SLO target — Qwen3-32B (TP=2) + ORCAS 1K (paper Table II)");
    println!("{}", table.render());
    println!("Tighter SLOs demand larger GPU-resident index slices, shrinking the KV");
    println!("cache; relaxed SLOs hand the memory back to the LLM.");
}
