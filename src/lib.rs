//! # VectorLiteRAG
//!
//! A reproduction of *"VectorLiteRAG: Latency-Aware and Fine-Grained
//! Resource Partitioning for Efficient RAG"* (Kim & Mahajan, HPCA 2026):
//! a serving system that co-schedules approximate-nearest-neighbor
//! retrieval and LLM inference on a shared GPU pool, partitioning the
//! vector index between CPU and GPUs so that end-to-end SLOs hold under
//! skewed, dynamic workloads.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `vlite-core` | Access-skew profiling, Beta/order-statistic hit-rate estimation, latency-bounded partitioning (Algorithm 1), index splitter, router, dynamic dispatcher, serving pipeline, adaptive update |
//! | [`ann`] | `vlite-ann` | IVF-Flat / IVF-PQ / fast-scan indexes, k-means, product & scalar quantizers, HNSW, recall/NDCG |
//! | [`llm`] | `vlite-llm` | Continuous-batching LLM engine simulator, paged KV cache, model specs, throughput probes |
//! | [`serve`] | `vlite-serve` | Real-time serving runtime: multi-tenant weighted-fair admission, dynamic batching, shard workers + dispatcher threads, retrieval → LLM co-scheduling with TTFT accounting, online SLO-aware repartitioning with live tier migration, real/virtual clocks |
//! | [`store`] | `vlite-store` | Tiered vector storage engine: resident full-precision hot arenas + mmap'd SQ8 cold segments (checksummed on-disk format) behind the `ClusterStore` trait, with non-blocking tier migration |
//! | [`sim`] | `vlite-sim` | Virtual time, event queue, device catalog, GPU memory ledgers, Poisson arrivals |
//! | [`workload`] | `vlite-workload` | Skew-calibrated cluster workloads, synthetic corpora, dataset presets |
//! | [`metrics`] | `vlite-metrics` | Latency recorders, SLO trackers, result tables/series |
//!
//! # Quickstart
//!
//! Partition a paper-scale dataset model and serve a Poisson trace:
//!
//! ```
//! use vectorlite_rag::core::{PipelineConfig, RagConfig, RagPipeline, RagSystem, SystemKind};
//!
//! let system = RagSystem::build(RagConfig::tiny(SystemKind::VectorLite));
//! let result = RagPipeline::new(&system).run(&PipelineConfig::new(10.0, 100, 7));
//! println!("SLO attainment: {:.1}%", 100.0 * result.slo_attainment(system.slo_ttft()));
//! assert_eq!(result.completed, 100);
//! ```
//!
//! See `examples/` for richer scenarios and `crates/bench` for the
//! harnesses that regenerate every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vlite_ann as ann;
pub use vlite_core as core;
pub use vlite_llm as llm;
pub use vlite_metrics as metrics;
pub use vlite_serve as serve;
pub use vlite_sim as sim;
pub use vlite_store as store;
pub use vlite_workload as workload;
