//! Paged KV-cache allocator (vLLM-style).
//!
//! KV memory is carved into fixed-size blocks of `block_tokens` tokens;
//! a sequence owns an integer number of blocks and grows one token at a
//! time. This reproduces the allocation granularity through which reduced
//! KV capacity (stolen by the vector-index shard) translates into smaller
//! running batches and lower throughput — the coupling of paper Fig. 4
//! (right).

use std::collections::HashMap;

/// Handle for one sequence's reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KvReservation(u64);

/// A paged KV-cache pool.
///
/// # Examples
///
/// ```
/// let mut kv = vlite_llm::PagedKvCache::new(16, 64); // 64 blocks × 16 tokens
/// let seq = kv.try_reserve(100).expect("fits");      // 7 blocks
/// assert_eq!(kv.used_blocks(), 7);
/// kv.free(seq);
/// assert_eq!(kv.used_blocks(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PagedKvCache {
    block_tokens: u32,
    total_blocks: u64,
    used_blocks: u64,
    seqs: HashMap<u64, SeqState>,
    next_id: u64,
}

#[derive(Debug, Clone, Copy)]
struct SeqState {
    tokens: u64,
    blocks: u64,
}

impl PagedKvCache {
    /// Creates a pool of `total_blocks` blocks of `block_tokens` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens == 0`.
    pub fn new(block_tokens: u32, total_blocks: u64) -> Self {
        assert!(block_tokens > 0, "block size must be positive");
        Self {
            block_tokens,
            total_blocks,
            used_blocks: 0,
            seqs: HashMap::new(),
            next_id: 0,
        }
    }

    /// Creates a pool sized from a byte budget and per-token KV footprint,
    /// using vLLM's default 16-token blocks.
    pub fn with_bytes(kv_bytes: u64, bytes_per_token: u64) -> Self {
        let block_tokens = 16u32;
        let bytes_per_block = bytes_per_token * u64::from(block_tokens);
        let total_blocks = kv_bytes.checked_div(bytes_per_block).unwrap_or(0);
        Self::new(block_tokens, total_blocks)
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u32 {
        self.block_tokens
    }

    /// Total block count.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> u64 {
        self.used_blocks
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.total_blocks - self.used_blocks
    }

    /// Total token capacity of the pool.
    pub fn capacity_tokens(&self) -> u64 {
        self.total_blocks * u64::from(self.block_tokens)
    }

    /// Tokens currently resident (across all sequences).
    pub fn resident_tokens(&self) -> u64 {
        self.seqs.values().map(|s| s.tokens).sum()
    }

    /// Number of active sequences.
    pub fn active_seqs(&self) -> usize {
        self.seqs.len()
    }

    fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(u64::from(self.block_tokens))
    }

    /// Whether a new sequence of `tokens` tokens would fit right now.
    pub fn fits(&self, tokens: u64) -> bool {
        self.blocks_for(tokens) <= self.free_blocks()
    }

    /// Reserves blocks for a new sequence holding `tokens` tokens.
    ///
    /// Returns `None` (pool unchanged) if the blocks are not available.
    pub fn try_reserve(&mut self, tokens: u64) -> Option<KvReservation> {
        let blocks = self.blocks_for(tokens);
        if blocks > self.free_blocks() {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.used_blocks += blocks;
        self.seqs.insert(id, SeqState { tokens, blocks });
        Some(KvReservation(id))
    }

    /// Grows a sequence by one token; allocates a new block when the
    /// current one is full. Returns `false` (state unchanged) if a needed
    /// block is unavailable.
    ///
    /// # Panics
    ///
    /// Panics if the reservation is unknown (stale handle).
    pub fn try_grow(&mut self, seq: KvReservation) -> bool {
        let state = self.seqs.get_mut(&seq.0).expect("unknown KV reservation");
        let needed = (state.tokens + 1).div_ceil(u64::from(self.block_tokens));
        if needed > state.blocks {
            if self.used_blocks + 1 > self.total_blocks {
                return false;
            }
            state.blocks += 1;
            state.tokens += 1;
            self.used_blocks += 1;
        } else {
            state.tokens += 1;
        }
        true
    }

    /// Tokens held by a sequence.
    ///
    /// # Panics
    ///
    /// Panics if the reservation is unknown.
    pub fn seq_tokens(&self, seq: KvReservation) -> u64 {
        self.seqs
            .get(&seq.0)
            .expect("unknown KV reservation")
            .tokens
    }

    /// Releases a sequence's blocks.
    ///
    /// # Panics
    ///
    /// Panics if the reservation is unknown (double free).
    pub fn free(&mut self, seq: KvReservation) {
        let state = self
            .seqs
            .remove(&seq.0)
            .expect("unknown KV reservation (double free?)");
        self.used_blocks -= state.blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_grow_free_cycle() {
        let mut kv = PagedKvCache::new(4, 10);
        let seq = kv.try_reserve(7).unwrap(); // 2 blocks
        assert_eq!(kv.used_blocks(), 2);
        assert!(kv.try_grow(seq)); // 8th token fits in block 2
        assert_eq!(kv.used_blocks(), 2);
        assert!(kv.try_grow(seq)); // 9th token opens block 3
        assert_eq!(kv.used_blocks(), 3);
        assert_eq!(kv.seq_tokens(seq), 9);
        kv.free(seq);
        assert_eq!(kv.used_blocks(), 0);
    }

    #[test]
    fn reserve_fails_without_mutation_when_full() {
        let mut kv = PagedKvCache::new(4, 2);
        let _a = kv.try_reserve(8).unwrap();
        assert!(kv.try_reserve(1).is_none());
        assert_eq!(kv.used_blocks(), 2);
    }

    #[test]
    fn grow_fails_when_no_block_left() {
        let mut kv = PagedKvCache::new(2, 1);
        let seq = kv.try_reserve(2).unwrap();
        assert!(!kv.try_grow(seq));
        assert_eq!(kv.seq_tokens(seq), 2, "failed grow must not change tokens");
    }

    #[test]
    fn with_bytes_matches_hand_calculation() {
        // 1 MiB budget, 1 KiB per token → 1024 tokens → 64 blocks of 16.
        let kv = PagedKvCache::with_bytes(1 << 20, 1 << 10);
        assert_eq!(kv.total_blocks(), 64);
        assert_eq!(kv.capacity_tokens(), 1024);
    }

    #[test]
    fn resident_tokens_tracks_sequences() {
        let mut kv = PagedKvCache::new(16, 100);
        let a = kv.try_reserve(10).unwrap();
        let _b = kv.try_reserve(20).unwrap();
        assert_eq!(kv.resident_tokens(), 30);
        kv.free(a);
        assert_eq!(kv.resident_tokens(), 20);
        assert_eq!(kv.active_seqs(), 1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut kv = PagedKvCache::new(4, 4);
        let seq = kv.try_reserve(1).unwrap();
        kv.free(seq);
        kv.free(seq);
    }
}
