//! Architecture constants for the paper's three generation models.

use serde::{Deserialize, Serialize};

/// Static description of a transformer LLM (decoder-only, GQA attention),
/// carrying exactly the quantities the serving cost model needs.
///
/// All three paper models use 128-dim heads with 8 grouped KV heads; the
/// per-token KV footprint is
/// `2 (K and V) × layers × kv_heads × head_dim × 2 bytes (fp16)`.
///
/// # Examples
///
/// ```
/// let m = vlite_llm::ModelSpec::llama3_8b();
/// assert_eq!(m.kv_bytes_per_token(), 131_072); // 128 KiB
/// assert_eq!(m.param_bytes(), 16_000_000_000); // fp16
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Display name, e.g. `"Llama3-8B"`.
    pub name: String,
    /// Total parameter count.
    pub params: u64,
    /// Transformer layer count.
    pub layers: u32,
    /// Grouped KV heads per layer.
    pub kv_heads: u32,
    /// Per-head dimensionality.
    pub head_dim: u32,
    /// Bytes per weight/KV element (2 = fp16/bf16).
    pub dtype_bytes: u32,
    /// Tensor-parallel degree the paper deploys this model with.
    pub default_tp: u32,
}

impl ModelSpec {
    /// Llama3-8B: 32 layers, served at TP=1 on L40S (paper §V-A).
    pub fn llama3_8b() -> Self {
        Self {
            name: "Llama3-8B".to_string(),
            params: 8_000_000_000,
            layers: 32,
            kv_heads: 8,
            head_dim: 128,
            dtype_bytes: 2,
            default_tp: 1,
        }
    }

    /// Qwen3-32B: 64 layers, served at TP=2 on H100 (paper Fig. 4).
    pub fn qwen3_32b() -> Self {
        Self {
            name: "Qwen3-32B".to_string(),
            params: 32_800_000_000,
            layers: 64,
            kv_heads: 8,
            head_dim: 128,
            dtype_bytes: 2,
            default_tp: 2,
        }
    }

    /// Llama3-70B: 80 layers, served at TP=4 on H100 (paper §VI-B).
    pub fn llama3_70b() -> Self {
        Self {
            name: "Llama3-70B".to_string(),
            params: 70_600_000_000,
            layers: 80,
            kv_heads: 8,
            head_dim: 128,
            dtype_bytes: 2,
            default_tp: 4,
        }
    }

    /// The three paper models in evaluation order.
    pub fn all() -> Vec<ModelSpec> {
        vec![Self::llama3_8b(), Self::qwen3_32b(), Self::llama3_70b()]
    }

    /// A miniature model for fast tests.
    pub fn tiny() -> Self {
        Self {
            name: "Tiny-1B".to_string(),
            params: 1_000_000_000,
            layers: 16,
            kv_heads: 8,
            head_dim: 64,
            dtype_bytes: 2,
            default_tp: 1,
        }
    }

    /// Weight footprint in bytes.
    pub fn param_bytes(&self) -> u64 {
        self.params * u64::from(self.dtype_bytes)
    }

    /// KV-cache bytes per generated/context token (across all layers).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * u64::from(self.layers)
            * u64::from(self.kv_heads)
            * u64::from(self.head_dim)
            * u64::from(self.dtype_bytes)
    }

    /// Dense FLOPs per token (forward pass ≈ 2 × params).
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.params as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_footprints_match_hand_calculation() {
        assert_eq!(ModelSpec::llama3_8b().kv_bytes_per_token(), 128 * 1024);
        assert_eq!(ModelSpec::qwen3_32b().kv_bytes_per_token(), 256 * 1024);
        assert_eq!(ModelSpec::llama3_70b().kv_bytes_per_token(), 320 * 1024);
    }

    #[test]
    fn param_bytes_are_fp16() {
        assert_eq!(ModelSpec::llama3_70b().param_bytes(), 141_200_000_000);
    }

    #[test]
    fn bigger_models_cost_more_per_token() {
        let specs = ModelSpec::all();
        for w in specs.windows(2) {
            assert!(w[1].flops_per_token() > w[0].flops_per_token());
            assert!(w[1].kv_bytes_per_token() > w[0].kv_bytes_per_token());
        }
    }

    #[test]
    fn paper_tp_degrees() {
        assert_eq!(ModelSpec::llama3_8b().default_tp, 1);
        assert_eq!(ModelSpec::qwen3_32b().default_tp, 2);
        assert_eq!(ModelSpec::llama3_70b().default_tp, 4);
    }
}
