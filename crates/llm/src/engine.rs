//! Iteration-level continuous-batching engine.
//!
//! Models vLLM's scheduler at the fidelity the paper's experiments need:
//!
//! - **continuous batching** — new requests join between iterations;
//! - **prefill priority** — an iteration either prefills newly admitted
//!   requests or decodes one token for every running sequence;
//! - **KV-watermark admission** — requests wait until their prompt blocks
//!   (plus one spare block per running sequence) are free;
//! - **preemption** — if a decode step cannot allocate a block, the newest
//!   sequence is evicted back to the waiting queue (recompute policy).
//!
//! The engine is a plain state machine driven by [`LlmEngine::advance`]; the
//! serving pipeline owns the event loop and re-arms the engine each time an
//! iteration finishes, applying whatever retrieval-interference factor is
//! current.

use std::collections::VecDeque;

use vlite_sim::SimTime;

use crate::{KvReservation, LlmCostModel, PagedKvCache};

/// One generation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlmRequest {
    /// Caller-assigned id, echoed in events.
    pub id: u64,
    /// Prompt length in tokens.
    pub input_tokens: u64,
    /// Tokens to generate.
    pub output_tokens: u64,
}

impl LlmRequest {
    /// Creates a request.
    ///
    /// # Panics
    ///
    /// Panics if either token count is zero.
    pub fn new(id: u64, input_tokens: u64, output_tokens: u64) -> Self {
        assert!(
            input_tokens > 0 && output_tokens > 0,
            "token counts must be positive"
        );
        Self {
            id,
            input_tokens,
            output_tokens,
        }
    }
}

/// Events emitted by an engine iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlmEvent {
    /// The request produced its first token (end of its prefill) — the
    /// generation half of TTFT.
    FirstToken {
        /// Request id.
        id: u64,
        /// Virtual time of the first token.
        at: SimTime,
    },
    /// The request finished generating.
    Completed {
        /// Request id.
        id: u64,
        /// Virtual time of completion.
        at: SimTime,
    },
}

/// Outcome of one engine iteration.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// When the iteration finishes; the engine must not be advanced again
    /// before this instant.
    pub busy_until: SimTime,
    /// Events taking effect at `busy_until`.
    pub events: Vec<LlmEvent>,
}

/// Aggregate counters for throughput probes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Requests completed.
    pub completed: u64,
    /// Decode iterations executed.
    pub decode_steps: u64,
    /// Prefill iterations executed.
    pub prefill_steps: u64,
    /// Tokens generated.
    pub generated_tokens: u64,
    /// Preemptions (KV pressure evictions).
    pub preemptions: u64,
}

#[derive(Debug)]
struct Running {
    req: LlmRequest,
    kv: KvReservation,
    generated: u64,
    admitted_seq: u64,
}

/// A continuous-batching engine for one model replica.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct LlmEngine {
    cost: LlmCostModel,
    kv: PagedKvCache,
    waiting: VecDeque<LlmRequest>,
    running: Vec<Running>,
    interference: f64,
    max_batch: usize,
    max_prefill_tokens: u64,
    admit_counter: u64,
    stats: EngineStats,
}

impl LlmEngine {
    /// Creates an engine with a KV pool of `kv_bytes`.
    pub fn new(cost: LlmCostModel, kv_bytes: u64) -> Self {
        let kv = PagedKvCache::with_bytes(kv_bytes, cost.model().kv_bytes_per_token());
        Self {
            cost,
            kv,
            waiting: VecDeque::new(),
            running: Vec::new(),
            interference: 1.0,
            max_batch: 256,
            max_prefill_tokens: 8192,
            admit_counter: 0,
            stats: EngineStats::default(),
        }
    }

    /// Caps the prompt tokens admitted into one prefill iteration (vLLM
    /// `max_num_batched_tokens`). At least one request is always admitted
    /// regardless of its size.
    ///
    /// # Panics
    ///
    /// Panics if `tokens == 0`.
    pub fn set_max_prefill_tokens(&mut self, tokens: u64) {
        assert!(tokens > 0, "prefill token budget must be positive");
        self.max_prefill_tokens = tokens;
    }

    /// Caps the running batch (vLLM `max_num_seqs`).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn set_max_batch(&mut self, max_batch: usize) {
        assert!(max_batch > 0, "batch cap must be positive");
        self.max_batch = max_batch;
    }

    /// Sets the retrieval-interference multiplier applied to subsequent
    /// iterations (see [`LlmCostModel::interference`]).
    pub fn set_interference(&mut self, factor: f64) {
        assert!(factor >= 1.0, "interference factor must be >= 1.0");
        self.interference = factor;
    }

    /// The cost model in use.
    pub fn cost(&self) -> &LlmCostModel {
        &self.cost
    }

    /// The KV pool (inspect capacity/usage).
    pub fn kv(&self) -> &PagedKvCache {
        &self.kv
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Requests queued but not yet admitted.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Sequences currently in the running batch.
    pub fn running_len(&self) -> usize {
        self.running.len()
    }

    /// Whether the engine has no work at all.
    pub fn is_idle(&self) -> bool {
        self.waiting.is_empty() && self.running.is_empty()
    }

    /// Peek at the requests waiting for admission, front of the queue
    /// first. The serving bridge uses this to attribute generation-queue
    /// time; invariant tests use it to observe what each iteration admits.
    pub fn waiting(&self) -> impl ExactSizeIterator<Item = &LlmRequest> + '_ {
        self.waiting.iter()
    }

    /// Peek at the running batch: each sequence's request and how many
    /// tokens it has generated so far.
    pub fn running(&self) -> impl ExactSizeIterator<Item = (&LlmRequest, u64)> + '_ {
        self.running.iter().map(|r| (&r.req, r.generated))
    }

    /// Drains the engine: advances from `now` until idle, collecting every
    /// event. Returns the instant the engine went idle and the events in
    /// emission order. Convenience for closed-loop probes and tests; the
    /// serving bridge steps iteration-by-iteration instead so new requests
    /// can join between iterations.
    ///
    /// # Panics
    ///
    /// Panics if the engine fails to converge (a scheduling bug that keeps
    /// some sequence from ever finishing) rather than looping forever.
    pub fn drain(&mut self, now: SimTime) -> (SimTime, Vec<LlmEvent>) {
        let mut at = now;
        let mut events = Vec::new();
        let mut iterations = 0u64;
        while let Some(step) = self.advance(at) {
            at = step.busy_until;
            events.extend(step.events);
            iterations += 1;
            assert!(
                iterations < 10_000_000,
                "engine failed to converge: {} waiting, {} running after {iterations} iterations",
                self.queue_len(),
                self.running_len()
            );
        }
        (at, events)
    }

    /// Enqueues a request.
    ///
    /// # Panics
    ///
    /// Panics if the request could never fit in the KV pool even alone —
    /// accepting it would deadlock the scheduler.
    pub fn submit(&mut self, req: LlmRequest, _now: SimTime) {
        let worst_tokens = req.input_tokens + req.output_tokens;
        assert!(
            worst_tokens <= self.kv.capacity_tokens(),
            "request {} needs {worst_tokens} KV tokens but the pool holds only {}",
            req.id,
            self.kv.capacity_tokens()
        );
        self.waiting.push_back(req);
    }

    /// Runs one iteration starting at `now`. Returns `None` when there is
    /// no work (idle) — the caller re-arms on the next submit.
    pub fn advance(&mut self, now: SimTime) -> Option<StepResult> {
        if self.is_idle() {
            return None;
        }
        let admitted = self.admit();
        if admitted.is_empty() {
            Some(self.decode_step(now))
        } else {
            Some(self.prefill_step(now, admitted))
        }
    }

    /// Admits waiting requests while their prompt blocks plus a one-block
    /// watermark per running sequence are free.
    fn admit(&mut self) -> Vec<usize> {
        let mut admitted = Vec::new();
        let mut admitted_tokens = 0u64;
        while self.running.len() < self.max_batch {
            let Some(req) = self.waiting.front().copied() else {
                break;
            };
            if !admitted.is_empty() && admitted_tokens + req.input_tokens > self.max_prefill_tokens
            {
                break;
            }
            let watermark = self.running.len() as u64 + 1;
            let need_blocks =
                req.input_tokens.div_ceil(u64::from(self.kv.block_tokens())) + watermark;
            if need_blocks > self.kv.free_blocks() {
                break;
            }
            let kv = self
                .kv
                .try_reserve(req.input_tokens)
                .expect("fit was checked against free blocks");
            self.waiting.pop_front();
            self.admit_counter += 1;
            admitted_tokens += req.input_tokens;
            self.running.push(Running {
                req,
                kv,
                generated: 0,
                admitted_seq: self.admit_counter,
            });
            admitted.push(self.running.len() - 1);
        }
        admitted
    }

    fn prefill_step(&mut self, now: SimTime, admitted: Vec<usize>) -> StepResult {
        let tokens: u64 = admitted
            .iter()
            .map(|&i| self.running[i].req.input_tokens)
            .sum();
        let duration = self.cost.prefill_time(tokens, self.interference);
        let at = now + duration;
        self.stats.prefill_steps += 1;
        let mut events = Vec::with_capacity(admitted.len());
        // Prefill emits each request's first token at iteration end.
        let mut finished: Vec<usize> = Vec::new();
        for &i in &admitted {
            let r = &mut self.running[i];
            r.generated = 1;
            self.stats.generated_tokens += 1;
            events.push(LlmEvent::FirstToken { id: r.req.id, at });
            if r.generated >= r.req.output_tokens {
                events.push(LlmEvent::Completed { id: r.req.id, at });
                finished.push(i);
            }
        }
        self.retire(&finished);
        StepResult {
            busy_until: at,
            events,
        }
    }

    fn decode_step(&mut self, now: SimTime) -> StepResult {
        // Grow KV by one token per sequence, preempting the newest
        // sequences under pressure (vLLM recompute policy).
        let mut i = 0;
        while i < self.running.len() {
            let handle = self.running[i].kv;
            while !self.kv.try_grow(handle) {
                // A sole sequence can never exhaust the pool thanks to the
                // submit-time capacity check, so a victim always exists.
                let victim = self
                    .running
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .max_by_key(|(_, r)| r.admitted_seq)
                    .map(|(j, _)| j)
                    .expect("KV pool exhausted by a single sequence");
                self.preempt(victim);
                if victim < i {
                    i -= 1;
                }
            }
            i += 1;
        }
        let batch = self.running.len();
        let context: u64 = self.running.iter().map(|r| self.kv.seq_tokens(r.kv)).sum();
        let duration = self
            .cost
            .decode_step_time(batch, context, self.interference);
        let at = now + duration;
        self.stats.decode_steps += 1;
        let mut events = Vec::new();
        let mut finished = Vec::new();
        for (idx, r) in self.running.iter_mut().enumerate() {
            r.generated += 1;
            self.stats.generated_tokens += 1;
            if r.generated >= r.req.output_tokens {
                events.push(LlmEvent::Completed { id: r.req.id, at });
                finished.push(idx);
            }
        }
        self.retire(&finished);
        StepResult {
            busy_until: at,
            events,
        }
    }

    fn preempt(&mut self, idx: usize) {
        let victim = self.running.remove(idx);
        self.kv.free(victim.kv);
        self.stats.preemptions += 1;
        // Recompute policy: back to the head of the queue, progress lost.
        self.waiting.push_front(victim.req);
    }

    /// Removes finished sequences (indices into `running`, any order).
    fn retire(&mut self, finished: &[usize]) {
        let mut order: Vec<usize> = finished.to_vec();
        order.sort_unstable_by(|a, b| b.cmp(a));
        for idx in order {
            let done = self.running.remove(idx);
            self.kv.free(done.kv);
            self.stats.completed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelSpec;
    use vlite_sim::devices;

    fn engine(kv_gib: u64) -> LlmEngine {
        let cost = LlmCostModel::new(ModelSpec::tiny(), devices::l40s(), 1);
        LlmEngine::new(cost, kv_gib << 30)
    }

    fn drain(engine: &mut LlmEngine) -> Vec<LlmEvent> {
        let (_, events) = engine.drain(SimTime::ZERO);
        assert!(events.len() < 100_000, "engine failed to converge");
        events
    }

    #[test]
    fn single_request_lifecycle() {
        let mut e = engine(4);
        e.submit(LlmRequest::new(7, 128, 4), SimTime::ZERO);
        let events = drain(&mut e);
        // FirstToken, then Completed after 3 more decode steps.
        assert!(matches!(events[0], LlmEvent::FirstToken { id: 7, .. }));
        assert!(matches!(
            events.last(),
            Some(LlmEvent::Completed { id: 7, .. })
        ));
        let stats = e.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.prefill_steps, 1);
        assert_eq!(stats.decode_steps, 3);
        assert_eq!(stats.generated_tokens, 4);
        assert_eq!(e.kv().used_blocks(), 0, "all KV must be freed");
    }

    #[test]
    fn first_token_precedes_completion_in_time() {
        let mut e = engine(4);
        e.submit(LlmRequest::new(1, 256, 16), SimTime::ZERO);
        let events = drain(&mut e);
        let ttft = events.iter().find_map(|ev| match ev {
            LlmEvent::FirstToken { at, .. } => Some(*at),
            _ => None,
        });
        let done = events.iter().find_map(|ev| match ev {
            LlmEvent::Completed { at, .. } => Some(*at),
            _ => None,
        });
        assert!(ttft.unwrap() < done.unwrap());
    }

    #[test]
    fn continuous_batching_interleaves_requests() {
        let mut e = engine(4);
        for id in 0..8 {
            e.submit(LlmRequest::new(id, 64, 32), SimTime::ZERO);
        }
        let events = drain(&mut e);
        assert_eq!(e.stats().completed, 8);
        // All eight requests were batched into one prefill (they fit) and
        // decoded together: decode steps ≈ 31, not 8 × 31.
        assert!(
            e.stats().decode_steps <= 40,
            "decode steps {}",
            e.stats().decode_steps
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, LlmEvent::Completed { .. }))
                .count(),
            8
        );
    }

    #[test]
    fn kv_pressure_limits_admission() {
        // Tiny pool: one block of 16 tokens per request at a time.
        let cost = LlmCostModel::new(ModelSpec::tiny(), devices::l40s(), 1);
        let kv_bytes = ModelSpec::tiny().kv_bytes_per_token() * 40;
        let mut e = LlmEngine::new(cost, kv_bytes);
        e.submit(LlmRequest::new(0, 16, 4), SimTime::ZERO);
        e.submit(LlmRequest::new(1, 16, 4), SimTime::ZERO);
        let step = e.advance(SimTime::ZERO).unwrap();
        // Pool of 2 blocks (40 tokens / 16 per block = 2): only request 0
        // admitted (1 block prompt + 1 watermark).
        assert_eq!(e.running_len(), 1);
        assert_eq!(e.queue_len(), 1);
        drop(step);
        drain(&mut e);
        assert_eq!(
            e.stats().completed,
            2,
            "second request served after first frees KV"
        );
    }

    #[test]
    fn interference_slows_iterations() {
        let mut fast = engine(4);
        fast.submit(LlmRequest::new(0, 512, 64), SimTime::ZERO);
        let mut slow = engine(4);
        slow.set_interference(2.0);
        slow.submit(LlmRequest::new(0, 512, 64), SimTime::ZERO);
        let t_fast = last_time(drain(&mut fast));
        let t_slow = last_time(drain(&mut slow));
        assert!(
            t_slow > t_fast.mul_check(1.5),
            "interference must slow completion"
        );
    }

    trait MulCheck {
        fn mul_check(self, f: f64) -> Self;
    }
    impl MulCheck for SimTime {
        fn mul_check(self, f: f64) -> Self {
            SimTime::from_secs_f64(self.as_secs_f64() * f)
        }
    }

    fn last_time(events: Vec<LlmEvent>) -> SimTime {
        events
            .iter()
            .map(|e| match e {
                LlmEvent::FirstToken { at, .. } | LlmEvent::Completed { at, .. } => *at,
            })
            .max()
            .unwrap()
    }

    #[test]
    fn max_batch_caps_running_set() {
        let mut e = engine(8);
        e.set_max_batch(2);
        for id in 0..5 {
            e.submit(LlmRequest::new(id, 32, 8), SimTime::ZERO);
        }
        e.advance(SimTime::ZERO).unwrap();
        assert_eq!(e.running_len(), 2);
        assert_eq!(e.queue_len(), 3);
    }

    #[test]
    #[should_panic(expected = "KV tokens")]
    fn impossible_request_rejected_at_submit() {
        let cost = LlmCostModel::new(ModelSpec::tiny(), devices::l40s(), 1);
        let mut e = LlmEngine::new(cost, ModelSpec::tiny().kv_bytes_per_token() * 16);
        e.submit(LlmRequest::new(0, 1024, 256), SimTime::ZERO);
    }

    #[test]
    fn idle_engine_returns_none() {
        let mut e = engine(2);
        assert!(e.advance(SimTime::ZERO).is_none());
    }
}
