//! Continuous-batching LLM serving simulator.
//!
//! The paper serves Llama3-8B/70B and Qwen3-32B with vLLM on L40S/H100
//! nodes. Neither vLLM nor the GPUs exist in this environment, so this
//! crate simulates the serving engine at iteration granularity — the level
//! at which VectorLiteRAG's contention effects act:
//!
//! - [`ModelSpec`] — architecture constants (layers, GQA heads, parameter
//!   and per-token KV footprints) for the paper's three models.
//! - [`PagedKvCache`] — a vLLM-style block allocator; KV capacity is the
//!   resource the vector index shard steals (paper Fig. 4 right, Table II).
//! - [`LlmCostModel`] — prefill (compute-bound) and decode (bandwidth-bound)
//!   iteration latencies derived from device specs, with an interference
//!   multiplier for co-located retrieval kernels.
//! - [`LlmEngine`] — iteration-level continuous batching with
//!   prefill-priority scheduling, KV-watermark admission and preemption,
//!   emitting first-token (TTFT) and completion events in virtual time.
//! - [`throughput`] — closed-loop saturation probes: peak request rate and
//!   latency-at-capacity (the paper's `SLO_LLM`, Table I), and the KV-size →
//!   throughput curve of Fig. 4 (right).
//!
//! # Examples
//!
//! ```
//! use vlite_llm::{LlmCostModel, LlmEngine, LlmRequest, ModelSpec};
//! use vlite_sim::{devices, SimTime};
//!
//! let model = ModelSpec::llama3_8b();
//! let cost = LlmCostModel::new(model.clone(), devices::l40s(), 1);
//! let kv_bytes = 24 << 30;
//! let mut engine = LlmEngine::new(cost, kv_bytes);
//! engine.submit(LlmRequest::new(0, 1024, 256), SimTime::ZERO);
//! let step = engine.advance(SimTime::ZERO).expect("work pending");
//! assert!(step.busy_until > SimTime::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod engine;
mod kvcache;
mod model;
pub mod throughput;

pub use cost::LlmCostModel;
pub use engine::{EngineStats, LlmEngine, LlmEvent, LlmRequest, StepResult};
pub use kvcache::{KvReservation, PagedKvCache};
pub use model::ModelSpec;
