//! Iteration latency models for prefill and decode.
//!
//! Standard roofline decomposition of transformer serving:
//!
//! - **Prefill** is compute-bound: `2 · params · tokens` FLOPs against the
//!   tensor-core rate of the TP group.
//! - **Decode** is bandwidth-bound: every step re-reads the weights and the
//!   active KV cache, plus a (usually smaller) compute term that matters at
//!   large batch.
//!
//! Efficiency factors are deliberately conservative constants (no
//! per-kernel fitting): the paper's conclusions depend on *relative*
//! throughput/latency shifts under memory and compute contention, which the
//! roofline form preserves. The retrieval-interference multiplier models
//! co-located search kernels stealing SM time and memory bandwidth
//! (paper §III-A: "scheduling pressure", "contention for compute
//! resources").

use vlite_sim::{GpuSpec, SimDuration};

use crate::ModelSpec;

/// Latency model for one model replica on a tensor-parallel GPU group.
///
/// # Examples
///
/// ```
/// use vlite_llm::{LlmCostModel, ModelSpec};
/// use vlite_sim::devices;
///
/// let cost = LlmCostModel::new(ModelSpec::qwen3_32b(), devices::h100(), 2);
/// let prefill = cost.prefill_time(1024, 1.0);
/// let decode = cost.decode_step_time(8, 8 * 1280, 1.0);
/// assert!(prefill.as_secs_f64() > decode.as_secs_f64());
/// ```
#[derive(Debug, Clone)]
pub struct LlmCostModel {
    model: ModelSpec,
    gpu: GpuSpec,
    tp: u32,
    /// Fraction of peak FLOPs reached by prefill GEMMs.
    pub prefill_efficiency: f64,
    /// Fraction of peak FLOPs reached by decode GEMVs.
    pub decode_compute_efficiency: f64,
    /// Fraction of peak memory bandwidth reached by weight/KV streaming.
    pub mem_efficiency: f64,
    /// Fixed per-iteration overhead (kernel launches, sampling, scheduler).
    pub step_overhead: SimDuration,
}

impl LlmCostModel {
    /// Creates a cost model for `model` on `tp` GPUs of the given spec.
    ///
    /// # Panics
    ///
    /// Panics if `tp == 0` or the model's weights do not fit in the TP
    /// group's combined memory.
    pub fn new(model: ModelSpec, gpu: GpuSpec, tp: u32) -> Self {
        assert!(tp > 0, "tensor parallel degree must be >= 1");
        assert!(
            model.param_bytes() / u64::from(tp) < gpu.mem_bytes,
            "{} (TP={tp}) does not fit in {}: {} bytes per GPU",
            model.name,
            gpu.name,
            model.param_bytes() / u64::from(tp)
        );
        // All-reduce per layer adds overhead that grows with TP.
        let comms = 1.0 + 0.15 * f64::from(tp - 1);
        Self {
            model,
            gpu,
            tp,
            prefill_efficiency: 0.45 / comms,
            decode_compute_efficiency: 0.35 / comms,
            mem_efficiency: 0.75,
            step_overhead: SimDuration::from_micros(300 + 200 * u64::from(tp - 1)),
        }
    }

    /// The model being served.
    pub fn model(&self) -> &ModelSpec {
        &self.model
    }

    /// The GPU spec of each TP rank.
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    /// Tensor-parallel degree.
    pub fn tp(&self) -> u32 {
        self.tp
    }

    /// Per-GPU weight bytes (the TP slice).
    pub fn param_bytes_per_gpu(&self) -> u64 {
        self.model.param_bytes() / u64::from(self.tp)
    }

    /// Prefill latency for `tokens` prompt tokens, under a retrieval
    /// interference factor (`1.0` = no co-located retrieval; see
    /// [`interference`](Self::interference)).
    pub fn prefill_time(&self, tokens: u64, interference: f64) -> SimDuration {
        let flops = self.model.flops_per_token() * tokens as f64;
        let rate = self.gpu.fp16_flops * f64::from(self.tp) * self.prefill_efficiency;
        let secs = flops / rate;
        self.step_overhead + SimDuration::from_secs_f64(secs * interference.max(1.0))
    }

    /// One decode iteration for a running batch: `batch` sequences with
    /// `context_tokens` total resident KV tokens.
    ///
    /// `max(bandwidth term, compute term)` — the roofline — plus fixed
    /// overhead, scaled by the interference factor.
    pub fn decode_step_time(
        &self,
        batch: usize,
        context_tokens: u64,
        interference: f64,
    ) -> SimDuration {
        if batch == 0 {
            return SimDuration::ZERO;
        }
        let bw = self.gpu.mem_bw * self.mem_efficiency;
        let weight_bytes = self.param_bytes_per_gpu() as f64;
        let kv_bytes =
            (self.model.kv_bytes_per_token() * context_tokens) as f64 / f64::from(self.tp);
        let mem_secs = (weight_bytes + kv_bytes) / bw;
        let flops = self.model.flops_per_token() * batch as f64;
        let compute_secs =
            flops / (self.gpu.fp16_flops * f64::from(self.tp) * self.decode_compute_efficiency);
        let secs = mem_secs.max(compute_secs) * interference.max(1.0);
        self.step_overhead + SimDuration::from_secs_f64(secs)
    }

    /// Converts a retrieval occupancy fraction (`0..=1` of the GPU busy
    /// with search kernels) into a step-time multiplier.
    ///
    /// Linear contention model: occupancy `o` inflates iteration time by
    /// `1 + o` (the retrieval kernels time-share SMs and memory bandwidth
    /// with the LLM stream).
    pub fn interference(occupancy: f64) -> f64 {
        1.0 + occupancy.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_sim::devices;

    #[test]
    fn prefill_scales_linearly_with_tokens() {
        let cost = LlmCostModel::new(ModelSpec::llama3_8b(), devices::l40s(), 1);
        let t1 = cost.prefill_time(512, 1.0).as_secs_f64();
        let t2 = cost.prefill_time(1024, 1.0).as_secs_f64();
        let fixed = cost.step_overhead.as_secs_f64();
        assert!(((t2 - fixed) / (t1 - fixed) - 2.0).abs() < 0.01);
    }

    #[test]
    fn decode_is_dominated_by_weight_reads_at_small_batch() {
        let cost = LlmCostModel::new(ModelSpec::llama3_8b(), devices::l40s(), 1);
        let t1 = cost.decode_step_time(1, 1280, 1.0).as_secs_f64();
        let t8 = cost.decode_step_time(8, 8 * 1280, 1.0).as_secs_f64();
        // Same weight traffic, slightly more KV: step time grows < 20%.
        assert!(t8 < t1 * 1.2, "t1={t1} t8={t8}");
    }

    #[test]
    fn decode_becomes_compute_bound_at_huge_batch() {
        let cost = LlmCostModel::new(ModelSpec::llama3_8b(), devices::l40s(), 1);
        let mem_only = cost.decode_step_time(1, 0, 1.0).as_secs_f64();
        let huge = cost.decode_step_time(4096, 0, 1.0).as_secs_f64();
        assert!(huge > 2.0 * mem_only, "compute roofline must kick in");
    }

    #[test]
    fn tensor_parallelism_speeds_up_decode() {
        let t1 = LlmCostModel::new(ModelSpec::llama3_70b(), devices::h100(), 4)
            .decode_step_time(8, 8 * 1280, 1.0)
            .as_secs_f64();
        let t2 = LlmCostModel::new(ModelSpec::llama3_70b(), devices::h100(), 8)
            .decode_step_time(8, 8 * 1280, 1.0)
            .as_secs_f64();
        assert!(t2 < t1);
    }

    #[test]
    fn interference_inflates_latency() {
        let cost = LlmCostModel::new(ModelSpec::qwen3_32b(), devices::h100(), 2);
        let clean = cost.decode_step_time(8, 10_000, 1.0).as_secs_f64();
        let contended = cost
            .decode_step_time(8, 10_000, LlmCostModel::interference(0.5))
            .as_secs_f64();
        assert!(contended > clean * 1.3);
    }

    #[test]
    fn paper_scale_sanity_prefill_under_a_second() {
        // Llama3-8B, 1024-token prompt: paper's bare TTFT is 197 ms.
        let cost = LlmCostModel::new(ModelSpec::llama3_8b(), devices::l40s(), 1);
        let t = cost.prefill_time(1024, 1.0).as_secs_f64();
        assert!(t > 0.02 && t < 0.5, "prefill {t}s out of plausible range");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_rejected() {
        // 70B fp16 (141 GB) on a single L40S (48 GB) is impossible.
        LlmCostModel::new(ModelSpec::llama3_70b(), devices::l40s(), 1);
    }
}
