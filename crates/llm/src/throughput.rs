//! Closed-loop saturation probes.
//!
//! The paper's partitioner needs two offline measurements of the bare LLM
//! (§IV-A1): its peak throughput `µ_LLM0`, and the generation-stage latency
//! at that limit, which defines `SLO_LLM` (Table I). It also needs the KV
//! size → throughput curve (Fig. 4 right) that converts index-shard bytes
//! into a throughput penalty inside Algorithm 1.

use vlite_sim::SimTime;

use crate::{LlmCostModel, LlmEngine, LlmEvent, LlmRequest};

/// Result of a saturation probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakThroughput {
    /// Sustained request completions per second at saturation.
    pub requests_per_sec: f64,
    /// Generated tokens per second at saturation.
    pub tokens_per_sec: f64,
    /// Mean time-to-first-token at saturation, in seconds — the paper's
    /// `SLO_LLM` definition ("latency measured at the model's throughput
    /// limit").
    pub ttft_at_capacity: f64,
}

/// Measures peak throughput by keeping the engine saturated in closed loop.
///
/// `probe_requests` requests of `input_tokens`/`output_tokens` are all
/// enqueued at t=0; the engine is driven to completion and rates are taken
/// over the busy interval (excluding the initial fill and final drain
/// quarter, to approximate steady state).
///
/// # Panics
///
/// Panics if `probe_requests < 8` (too few for a steady-state estimate).
///
/// # Examples
///
/// ```
/// use vlite_llm::{throughput, LlmCostModel, ModelSpec};
/// use vlite_sim::devices;
///
/// let cost = LlmCostModel::new(ModelSpec::llama3_8b(), devices::l40s(), 1);
/// let peak = throughput::measure_peak(&cost, 24 << 30, 1024, 256, 64);
/// assert!(peak.requests_per_sec > 0.5);
/// ```
pub fn measure_peak(
    cost: &LlmCostModel,
    kv_bytes: u64,
    input_tokens: u64,
    output_tokens: u64,
    probe_requests: usize,
) -> PeakThroughput {
    assert!(probe_requests >= 8, "need at least 8 probe requests");
    let mut engine = LlmEngine::new(cost.clone(), kv_bytes);
    for id in 0..probe_requests as u64 {
        engine.submit(
            LlmRequest::new(id, input_tokens, output_tokens),
            SimTime::ZERO,
        );
    }
    let mut now = SimTime::ZERO;
    let mut completions: Vec<SimTime> = Vec::with_capacity(probe_requests);
    let mut first_tokens: Vec<SimTime> = Vec::with_capacity(probe_requests);
    while let Some(step) = engine.advance(now) {
        now = step.busy_until;
        for event in step.events {
            match event {
                LlmEvent::FirstToken { at, .. } => first_tokens.push(at),
                LlmEvent::Completed { at, .. } => completions.push(at),
            }
        }
    }
    // Identical request lengths make completions bunch at wave boundaries,
    // so a trimmed-window rate is degenerate; the makespan rate is the
    // robust saturation measure (the prefill ramp amortizes over the probe).
    let makespan = completions
        .last()
        .expect("probe completed requests")
        .as_secs_f64();
    let rps = completions.len() as f64 / makespan.max(1e-9);
    let mean_ttft =
        first_tokens.iter().map(|t| t.as_secs_f64()).sum::<f64>() / first_tokens.len() as f64;
    PeakThroughput {
        requests_per_sec: rps,
        tokens_per_sec: rps * output_tokens as f64,
        ttft_at_capacity: mean_ttft,
    }
}

/// Measures throughput at each KV budget of `kv_fracs` × `kv_full_bytes`,
/// returning `(fraction, requests/s)` pairs — paper Fig. 4 (right).
pub fn kv_throughput_curve(
    cost: &LlmCostModel,
    kv_full_bytes: u64,
    input_tokens: u64,
    output_tokens: u64,
    kv_fracs: &[f64],
) -> Vec<(f64, f64)> {
    kv_fracs
        .iter()
        .map(|&frac| {
            let kv = (kv_full_bytes as f64 * frac) as u64;
            let min_tokens = input_tokens + output_tokens + 16;
            let kv = kv.max(min_tokens * cost.model().kv_bytes_per_token());
            let peak = measure_peak(cost, kv, input_tokens, output_tokens, 48);
            (frac, peak.requests_per_sec)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelSpec;
    use vlite_sim::devices;

    fn tiny_cost() -> LlmCostModel {
        LlmCostModel::new(ModelSpec::tiny(), devices::l40s(), 1)
    }

    #[test]
    fn peak_is_positive_and_finite() {
        let peak = measure_peak(&tiny_cost(), 8 << 30, 128, 32, 32);
        assert!(peak.requests_per_sec.is_finite() && peak.requests_per_sec > 0.0);
        assert!(peak.ttft_at_capacity > 0.0);
        assert_eq!(peak.tokens_per_sec, peak.requests_per_sec * 32.0);
    }

    #[test]
    fn more_kv_means_no_less_throughput() {
        let small = measure_peak(&tiny_cost(), 1 << 30, 512, 128, 48);
        let large = measure_peak(&tiny_cost(), 8 << 30, 512, 128, 48);
        assert!(
            large.requests_per_sec >= small.requests_per_sec * 0.95,
            "large={} small={}",
            large.requests_per_sec,
            small.requests_per_sec
        );
    }

    #[test]
    fn kv_curve_is_nondecreasing_overall() {
        let curve = kv_throughput_curve(&tiny_cost(), 8 << 30, 512, 128, &[0.1, 0.5, 1.0]);
        assert_eq!(curve.len(), 3);
        assert!(
            curve[2].1 >= curve[0].1 * 0.9,
            "full-KV throughput should not fall below starved-KV: {curve:?}"
        );
    }

    #[test]
    fn longer_outputs_reduce_request_throughput() {
        let short = measure_peak(&tiny_cost(), 8 << 30, 512, 64, 48);
        let long = measure_peak(&tiny_cost(), 8 << 30, 512, 256, 48);
        assert!(long.requests_per_sec < short.requests_per_sec);
    }
}
