//! Property tests: `LlmEngine` / `PagedKvCache` invariants under random
//! request mixes, knob settings and submit/advance interleavings.
//!
//! The invariants the serving bridge depends on:
//! - no KV pages leak: after any interleaving drains, the pool is empty;
//! - the running batch never exceeds `max_batch`, and one prefill never
//!   admits more than `max_prefill_tokens` prompt tokens unless a single
//!   oversized request is admitted alone;
//! - `EngineStats` conserve tokens: every submitted request completes
//!   exactly once, and without preemptions the generated-token counter is
//!   exactly the sum of requested outputs (preemptions only re-generate).

use proptest::prelude::*;

use vlite_llm::{LlmCostModel, LlmEngine, LlmEvent, LlmRequest, ModelSpec, PagedKvCache};
use vlite_sim::{devices, SimTime};

fn engine(kv_tokens: u64, max_batch: usize, max_prefill: u64) -> LlmEngine {
    let model = ModelSpec::tiny();
    let kv_bytes = model.kv_bytes_per_token() * kv_tokens;
    let cost = LlmCostModel::new(model, devices::l40s(), 1);
    let mut engine = LlmEngine::new(cost, kv_bytes);
    engine.set_max_batch(max_batch);
    engine.set_max_prefill_tokens(max_prefill);
    engine
}

/// Steps the engine once, checking the admission-cap invariants around the
/// step. Returns the emitted events.
fn checked_step(
    engine: &mut LlmEngine,
    now: SimTime,
    max_batch: usize,
    max_prefill: u64,
) -> Option<(SimTime, Vec<LlmEvent>)> {
    let waiting_before: Vec<u64> = engine.waiting().map(|r| r.id).collect();
    let prefills_before = engine.stats().prefill_steps;
    let step = engine.advance(now)?;
    assert!(
        engine.running_len() <= max_batch,
        "running batch {} exceeds cap {max_batch}",
        engine.running_len()
    );
    if engine.stats().prefill_steps > prefills_before {
        // This step admitted: the newly admitted requests are the waiting
        // set difference (ids are unique engine-wide).
        let waiting_after: Vec<u64> = engine.waiting().map(|r| r.id).collect();
        let admitted: Vec<u64> = waiting_before
            .iter()
            .copied()
            .filter(|id| !waiting_after.contains(id))
            .collect();
        assert!(!admitted.is_empty(), "a prefill step admits someone");
        let admitted_tokens: u64 = admitted
            .iter()
            .map(|id| {
                engine
                    .running()
                    .find(|(r, _)| r.id == *id)
                    .map(|(r, _)| r.input_tokens)
                    // Already finished within this very step (tiny output):
                    // its tokens are unknown here; count the cap-neutral 0.
                    .unwrap_or(0)
            })
            .sum();
        if admitted.len() > 1 {
            assert!(
                admitted_tokens <= max_prefill,
                "{admitted_tokens} prompt tokens admitted past the {max_prefill} cap"
            );
        }
    }
    Some((step.busy_until, step.events))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any submit/advance interleaving drains with zero KV pages held,
    /// every request completed exactly once, and conserved token counts.
    #[test]
    fn engine_interleavings_leak_nothing_and_conserve_tokens(
        n_first in 1usize..8,
        n_second in 0usize..8,
        interleave_steps in 0usize..6,
        input1 in 1u64..96,
        input2 in 1u64..96,
        output in 1u64..12,
        max_batch in 1usize..9,
        max_prefill in 32u64..256,
    ) {
        // Pool sized so the worst single request always fits (the engine's
        // submit-time contract) but small enough that admission + growth
        // pressure (and thus preemption) can occur.
        let worst = (input1.max(input2) + output) * 2;
        let mut e = engine(worst.max(160), max_batch, max_prefill);

        let mut submitted = 0u64;
        let mut expected_output_tokens = 0u64;
        for i in 0..n_first {
            let input = if i % 2 == 0 { input1 } else { input2 };
            e.submit(LlmRequest::new(i as u64, input, output), SimTime::ZERO);
            submitted += 1;
            expected_output_tokens += output;
        }
        // A few checked iterations mid-stream…
        let mut now = SimTime::ZERO;
        let mut completions = 0u64;
        for _ in 0..interleave_steps {
            match checked_step(&mut e, now, max_batch, max_prefill) {
                Some((busy_until, events)) => {
                    now = busy_until;
                    completions += events
                        .iter()
                        .filter(|ev| matches!(ev, LlmEvent::Completed { .. }))
                        .count() as u64;
                }
                None => break,
            }
        }
        // …then a second submission wave joining the running batch.
        for i in 0..n_second {
            let input = if i % 2 == 0 { input2 } else { input1 };
            e.submit(
                LlmRequest::new(1000 + i as u64, input, output),
                now,
            );
            submitted += 1;
            expected_output_tokens += output;
        }
        let mut guard = 0;
        while let Some((busy_until, events)) = checked_step(&mut e, now, max_batch, max_prefill) {
            now = busy_until;
            completions += events
                .iter()
                .filter(|ev| matches!(ev, LlmEvent::Completed { .. }))
                .count() as u64;
            guard += 1;
            prop_assert!(guard < 100_000, "engine failed to converge");
        }

        // No KV leak, ever.
        prop_assert_eq!(e.kv().used_blocks(), 0, "KV pages leaked");
        prop_assert_eq!(e.kv().active_seqs(), 0);
        prop_assert_eq!(e.kv().resident_tokens(), 0);
        // Exactly-once completion.
        let stats = e.stats();
        prop_assert_eq!(stats.completed, submitted);
        prop_assert_eq!(completions, submitted, "completion events match");
        prop_assert!(e.is_idle());
        // Token conservation: preemption re-generates lost progress, so
        // the counter is exact without preemptions and an overcount with.
        if stats.preemptions == 0 {
            prop_assert_eq!(stats.generated_tokens, expected_output_tokens);
        } else {
            prop_assert!(stats.generated_tokens > expected_output_tokens);
        }
        prop_assert!(stats.prefill_steps >= 1);
    }

    /// Random reserve/grow/free traffic never desynchronizes the pool's
    /// block accounting, and failed operations mutate nothing.
    #[test]
    fn kv_cache_accounting_is_exact_under_random_traffic(
        block_tokens in 1u32..32,
        total_blocks in 1u64..64,
        ops in prop::collection::vec((0u8..3, 1u64..128), 1..200),
    ) {
        let mut kv = PagedKvCache::new(block_tokens, total_blocks);
        let mut live: Vec<(vlite_llm::KvReservation, u64)> = Vec::new();
        for (op, arg) in ops {
            match op {
                // Reserve a new sequence of `arg` tokens.
                0 => {
                    let before = kv.used_blocks();
                    match kv.try_reserve(arg) {
                        Some(seq) => live.push((seq, arg)),
                        None => prop_assert_eq!(kv.used_blocks(), before, "failed reserve mutated"),
                    }
                }
                // Grow an existing sequence by one token.
                1 => {
                    let idx = (arg % 7) as usize % live.len().max(1);
                    if let Some(entry) = live.get_mut(idx) {
                        let before_tokens = kv.seq_tokens(entry.0);
                        if kv.try_grow(entry.0) {
                            entry.1 += 1;
                            prop_assert_eq!(kv.seq_tokens(entry.0), before_tokens + 1);
                        } else {
                            prop_assert_eq!(kv.seq_tokens(entry.0), before_tokens, "failed grow mutated");
                        }
                    }
                }
                // Free a sequence.
                _ => {
                    if !live.is_empty() {
                        let (seq, _) = live.swap_remove((arg as usize) % live.len());
                        kv.free(seq);
                    }
                }
            }
            // The block ledger always equals the per-sequence reconstruction.
            let expected_blocks: u64 = live
                .iter()
                .map(|&(_, tokens)| tokens.div_ceil(u64::from(block_tokens)))
                .sum();
            prop_assert_eq!(kv.used_blocks(), expected_blocks, "block ledger drifted");
            prop_assert_eq!(kv.active_seqs(), live.len());
            let expected_tokens: u64 = live.iter().map(|&(_, t)| t).sum();
            prop_assert_eq!(kv.resident_tokens(), expected_tokens);
            prop_assert!(kv.used_blocks() <= kv.total_blocks());
        }
        for (seq, _) in live {
            kv.free(seq);
        }
        prop_assert_eq!(kv.used_blocks(), 0);
    }
}
