//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Each `src/bin/figNN_*.rs` binary reproduces one table or figure of the
//! VectorLiteRAG evaluation (see `DESIGN.md` §5 for the experiment index);
//! `run_all` executes every harness in sequence. Results print as aligned
//! tables and are also written as CSV under `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figs;

use std::fs;
use std::path::PathBuf;

use vlite_core::{PipelineConfig, RagConfig, RagPipeline, RagSystem, RunResult, SystemKind};
use vlite_llm::ModelSpec;
use vlite_workload::DatasetPreset;

/// Output directory for CSV artifacts (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("can create results/");
    dir
}

/// Writes a CSV artifact and reports the path on stdout.
pub fn write_csv(name: &str, contents: &str) {
    let path = results_dir().join(name);
    fs::write(&path, contents).expect("can write results CSV");
    println!("[csv] {}", path.display());
}

/// Prints a figure/table banner.
pub fn banner(id: &str, caption: &str) {
    println!("\n=== {id} — {caption} ===");
}

/// The paper's nine (dataset, model) evaluation pairs (Fig. 11 grid order:
/// datasets are rows, models are columns).
pub fn evaluation_grid() -> Vec<(DatasetPreset, ModelSpec)> {
    let mut grid = Vec::new();
    for dataset in DatasetPreset::all() {
        for model in ModelSpec::all() {
            grid.push((dataset.clone(), model.clone()));
        }
    }
    grid
}

/// Builds the system for one evaluation cell.
pub fn build_cell(kind: SystemKind, dataset: &DatasetPreset, model: &ModelSpec) -> RagSystem {
    RagSystem::build(RagConfig::paper_default(
        kind,
        dataset.clone(),
        model.clone(),
    ))
}

/// Runs one pipeline point.
pub fn run_point(system: &RagSystem, rate: f64, n_requests: usize, seed: u64) -> RunResult {
    RagPipeline::new(system).run(&PipelineConfig::new(rate, n_requests, seed))
}

/// Standard arrival-rate grid: fractions of the node's bare LLM capacity,
/// spanning the under-loaded through the over-saturated regimes the way the
/// paper's x-axes do.
pub fn rate_grid(bare_capacity: f64) -> Vec<f64> {
    [0.5, 0.65, 0.8, 0.9, 1.0, 1.1, 1.25]
        .iter()
        .map(|f| f * bare_capacity)
        .collect()
}

/// Requests per simulated point (kept moderate so `run_all` finishes in
/// minutes; raise for tighter tails).
pub const POINT_REQUESTS: usize = 600;

/// Shared seed for harness runs.
pub const SEED: u64 = 0xf1a9;
