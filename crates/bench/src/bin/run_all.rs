//! Runs every table/figure harness in paper order and writes all CSV
//! artifacts under `results/`.
use vlite_bench::figs;

fn main() {
    let t0 = std::time::Instant::now();
    figs::fig03::run();
    figs::fig04::run();
    figs::fig05::run();
    figs::fig06::run();
    figs::fig08::run();
    figs::fig09::run();
    figs::fig10::run();
    figs::table1::run();
    figs::table2::run();
    figs::fig11::run();
    figs::fig12::run();
    figs::fig13::run();
    figs::fig14::run();
    figs::fig15::run();
    figs::fig16::run();
    figs::fig17::run();
    println!(
        "\nall harnesses completed in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
