//! Regenerates the paper's Fig. 03 (see `vlite_bench::figs::fig03`).
fn main() {
    vlite_bench::figs::fig03::run();
}
