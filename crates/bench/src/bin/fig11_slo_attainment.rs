//! Regenerates the paper's Fig. 11 (see `vlite_bench::figs::fig11`).
fn main() {
    vlite_bench::figs::fig11::run();
}
