//! Regenerates the paper's Fig. 16 (see `vlite_bench::figs::fig16`).
fn main() {
    vlite_bench::figs::fig16::run();
}
