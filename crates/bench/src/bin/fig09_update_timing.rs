//! Regenerates the paper's Fig. 09 (see `vlite_bench::figs::fig09`).
fn main() {
    vlite_bench::figs::fig09::run();
}
