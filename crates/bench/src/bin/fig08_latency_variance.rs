//! Regenerates the paper's Fig. 08 (see `vlite_bench::figs::fig08`).
fn main() {
    vlite_bench::figs::fig08::run();
}
