//! End-to-end smoke test of the HTTP/1.1 frontend over real TCP sockets —
//! the network-facing counterpart of `serve_smoke`, run in CI's e2e job.
//!
//! Starts a two-tenant `RagServer` behind an `HttpFrontend` on a loopback
//! port, then:
//!
//! 1. exercises `/healthz`, `/v1/tenants` and the error paths (404, 400)
//!    the way `curl` would;
//! 2. fires the same mixed two-tenant open-loop workload once in process
//!    and once over the socket, and asserts the HTTP run holds the same
//!    SLO-attainment bar (within 5 points of in-process, the
//!    `rag_server` example's margin);
//! 3. fetches `GET /v1/report` and asserts its per-tenant JSON rows match
//!    the in-process `ServeReport` the runtime hands back at shutdown;
//! 4. scrapes `GET /v1/metrics` and asserts the Prometheus exposition's
//!    counters equal the report's totals, then fetches `GET /v1/traces`
//!    and `GET /v1/events` and checks the telemetry plane captured the
//!    run.
//!
//! Artifacts: `results/http_smoke.csv` (per-tenant rows) and
//! `results/http_report.json` (the `/v1/report` body, verbatim).

use vlite_bench::{banner, results_dir, write_csv};
use vlite_core::RealConfig;
use vlite_serve::http::json::Json;
use vlite_serve::http::{HttpClient, HttpFrontend};
use vlite_serve::loadgen::{
    run_open_loop_http, run_open_loop_tenants, LoadPhase, MultiTenantResult, RotatingQuerySource,
    TenantLoad,
};
use vlite_serve::{RagServer, SearchResponse, ServeConfig, TenantId, TenantSpec};
use vlite_workload::{CorpusConfig, SyntheticCorpus};

/// Generous for CI runners, same rationale as the `rag_server` example.
const SLO_SEARCH: f64 = 0.050;

/// The attainment margin the in-process example enforces; the socket must
/// not cost more than this either.
const ATTAINMENT_MARGIN: f64 = 0.05;

fn config() -> ServeConfig {
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vlite_ann::IvfConfig::new(128),
        nprobe: 16,
        top_k: 10,
        n_profile_queries: 512,
        slo_search: SLO_SEARCH,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.25),
    };
    config.tenants = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 512,
            slo_search: SLO_SEARCH,
        },
        TenantSpec {
            weight: 2,
            queue_capacity: 512,
            slo_search: SLO_SEARCH,
        },
    ];
    config.http.addr = "127.0.0.1:0".into();
    config
}

/// The mixed workload, rebuilt identically for each run: a light tenant at
/// a steady rate and a heavier tenant at 3x, both under capacity.
fn loads(corpus: &SyntheticCorpus) -> Vec<TenantLoad> {
    vec![
        TenantLoad {
            tenant: TenantId(0),
            source: RotatingQuerySource::from_corpus(corpus, 19),
            phases: vec![LoadPhase {
                rate: 300.0,
                n: 400,
            }],
        },
        TenantLoad {
            tenant: TenantId(1),
            source: RotatingQuerySource::from_corpus(corpus, 23),
            phases: vec![LoadPhase {
                rate: 900.0,
                n: 1_200,
            }],
        },
    ]
}

fn attainment(responses: &[SearchResponse]) -> f64 {
    assert!(!responses.is_empty(), "tenant served nothing");
    responses
        .iter()
        .filter(|r| r.timings.search <= SLO_SEARCH)
        .count() as f64
        / responses.len() as f64
}

fn per_tenant_attainment(outcome: &MultiTenantResult) -> Vec<f64> {
    outcome
        .tenants
        .iter()
        .map(|t| attainment(&t.responses))
        .collect()
}

fn get_num(value: &Json, name: &'static str) -> f64 {
    value
        .get(name)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("report row missing {name}"))
}

fn main() {
    banner(
        "http-smoke",
        "HTTP/1.1 frontend end to end over real sockets",
    );

    let corpus = SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 20_000,
        dim: 32,
        n_centers: 64,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 3,
    });

    // In-process yardstick: identical server, identical workload schedule.
    println!("in-process baseline run ...");
    let baseline_server = RagServer::start(&corpus, config()).expect("baseline server starts");
    let baseline = run_open_loop_tenants(&baseline_server, &mut loads(&corpus), 29);
    baseline_server.shutdown();
    let baseline_attainment = per_tenant_attainment(&baseline);

    // The system under test: same runtime behind the network frontend.
    println!("starting HTTP frontend ...");
    let http_config = config();
    let server = RagServer::start(&corpus, http_config.clone()).expect("server starts");
    let frontend = HttpFrontend::bind(server, &http_config.http).expect("frontend binds");
    let addr = frontend.addr();
    println!("listening on http://{addr}");

    // --- curl-equivalent endpoint checks over the real socket ---
    let mut client = HttpClient::connect(addr).expect("client connects");
    let health = client.get("/healthz").expect("healthz exchange");
    assert_eq!(health.status, 200, "/healthz must be 200");
    let health_json = health.json().expect("healthz is JSON");
    assert_eq!(
        health_json.get("status").and_then(Json::as_str),
        Some("ok"),
        "healthz status"
    );
    let tenants = client.get("/v1/tenants").expect("tenants exchange");
    assert_eq!(tenants.status, 200);
    assert_eq!(
        tenants
            .json()
            .expect("tenant table is JSON")
            .as_array()
            .map(<[_]>::len),
        Some(2),
        "two configured tenants"
    );
    let missing = client.get("/nope").expect("404 exchange");
    assert_eq!(missing.status, 404, "unknown path must be 404");
    let bad = client
        .post_json("/v1/search", &[], "{\"query\":\"not-a-vector\"}")
        .expect("400 exchange");
    assert_eq!(bad.status, 400, "malformed search body must be 400");
    println!("endpoint checks passed: /healthz 200, /v1/tenants 200, 404 + 400 paths");

    // --- the mixed two-tenant workload over TCP ---
    println!("open-loop two-tenant workload over the socket ...");
    let outcome = run_open_loop_http(addr, &mut loads(&corpus), 29, 32);
    let http_attainment = per_tenant_attainment(&outcome);
    for (t, (&http, &inproc)) in http_attainment.iter().zip(&baseline_attainment).enumerate() {
        let tenant = &outcome.tenants[t];
        assert_eq!(tenant.rejected, 0, "sub-capacity load must not be shed");
        assert_eq!(
            tenant.responses.len(),
            tenant.submitted,
            "every submission served"
        );
        assert!(
            http >= inproc - ATTAINMENT_MARGIN,
            "tenant-{t} HTTP attainment {http:.3} fell more than \
             {ATTAINMENT_MARGIN} below in-process {inproc:.3}"
        );
        println!(
            "tenant-{t}: {} served, SLO attainment {:.1}% over HTTP vs {:.1}% in process",
            tenant.responses.len(),
            100.0 * http,
            100.0 * inproc
        );
    }

    // --- /v1/report must agree with the runtime's own final report ---
    let report_http = client.get("/v1/report").expect("report exchange");
    assert_eq!(report_http.status, 200);
    let report_body = String::from_utf8(report_http.body.clone()).expect("report is UTF-8");
    let report_json = Json::parse(&report_body).expect("report is JSON");

    // --- the telemetry plane over the socket: scrape, traces, journal ---
    let metrics = client.get("/v1/metrics").expect("metrics exchange");
    assert_eq!(metrics.status, 200, "/v1/metrics must be 200");
    assert!(
        metrics
            .header("content-type")
            .is_some_and(|ct| ct.starts_with("text/plain")),
        "scrape must be text exposition, not JSON"
    );
    let exposition = String::from_utf8(metrics.body.clone()).expect("exposition is UTF-8");
    let scraped = |name: &str| -> f64 {
        exposition
            .lines()
            .filter(|l| !l.starts_with('#'))
            .find_map(|l| {
                let (key, v) = l.rsplit_once(char::is_whitespace)?;
                (key == name).then(|| v.parse().expect("numeric sample"))
            })
            .unwrap_or_else(|| panic!("metric {name} missing from scrape"))
    };
    // The scrape happened after every reply was delivered, so the
    // lock-free counters agree exactly with the mutex-guarded report
    // fetched moments earlier.
    let expected_completed = get_num(&report_json, "completed") as u64;
    assert_eq!(
        scraped("vlite_admitted_total") as u64,
        get_num(&report_json, "admitted") as u64
    );
    assert_eq!(
        scraped("vlite_rejected_total") as u64,
        get_num(&report_json, "rejected") as u64
    );
    assert_eq!(scraped("vlite_completed_total") as u64, expected_completed);
    assert_eq!(
        scraped("vlite_batches_total") as u64,
        get_num(&report_json, "batches") as u64
    );
    assert_eq!(
        scraped("vlite_stage_seconds_count{stage=\"search\"}") as u64,
        expected_completed,
        "one search histogram sample per completed request"
    );
    assert!(scraped("vlite_uptime_seconds") > 0.0);
    println!(
        "/v1/metrics agrees with /v1/report: admitted/rejected/completed/batches and the \
         search-stage histogram count all match"
    );

    let traces = client.get("/v1/traces").expect("traces exchange");
    assert_eq!(traces.status, 200, "/v1/traces must be 200");
    let traces_body = String::from_utf8(traces.body.clone()).expect("traces are UTF-8");
    let traces_json = Json::parse(&traces_body).expect("traces are JSON");
    let recent = traces_json
        .get("recent")
        .and_then(Json::as_array)
        .expect("recent trace ring");
    assert!(!recent.is_empty(), "the run must leave recent traces");

    let events = client.get("/v1/events").expect("events exchange");
    assert_eq!(events.status, 200, "/v1/events must be 200");
    let events_json = events.json().expect("events are JSON");
    assert!(events_json.get("events").is_some(), "journal renders");
    println!(
        "/v1/traces holds {} recent timelines; /v1/events renders the journal",
        recent.len()
    );

    let final_report = frontend.shutdown();

    let rows = report_json
        .get("tenants")
        .and_then(Json::as_array)
        .expect("report has tenant rows");
    assert_eq!(rows.len(), final_report.tenants.len());
    for (row, expected) in rows.iter().zip(&final_report.tenants) {
        assert_eq!(get_num(row, "admitted") as u64, expected.admitted);
        assert_eq!(get_num(row, "rejected") as u64, expected.rejected);
        assert_eq!(get_num(row, "completed") as u64, expected.completed);
        assert!(
            (get_num(row, "slo_attainment") - expected.slo_attainment).abs() < 1e-9,
            "attainment row drifted from the in-process report"
        );
        assert!((get_num(row, "mean_hit_rate") - expected.mean_hit_rate).abs() < 1e-9);
    }
    assert_eq!(
        get_num(&report_json, "completed") as u64,
        final_report.completed,
        "global completed row"
    );
    println!(
        "/v1/report rows match the in-process ServeReport ({} tenants, {} requests)",
        rows.len(),
        final_report.completed
    );

    println!("\n{}", final_report.tenant_table().render());
    write_csv("http_smoke.csv", &final_report.tenants_to_csv());
    let json_path = results_dir().join("http_report.json");
    std::fs::write(&json_path, &report_body).expect("can write report JSON");
    println!("[json] {}", json_path.display());
    println!("http-smoke: all assertions passed.");
}
