//! Regenerates the paper's Fig. 14 (see `vlite_bench::figs::fig14`).
fn main() {
    vlite_bench::figs::fig14::run();
}
