//! Regenerates the paper's Fig. 10 (see `vlite_bench::figs::fig10`).
fn main() {
    vlite_bench::figs::fig10::run();
}
