//! Regenerates the paper's table2 (see `vlite_bench::figs::table2`).
fn main() {
    vlite_bench::figs::table2::run();
}
