//! Regenerates the paper's table1 (see `vlite_bench::figs::table1`).
fn main() {
    vlite_bench::figs::table1::run();
}
