//! Regenerates the paper's Fig. 13 (see `vlite_bench::figs::fig13`).
fn main() {
    vlite_bench::figs::fig13::run();
}
