//! Throughput/latency smoke benchmark for the `vlite-serve` runtime: the
//! real-tier counterpart of the simulated serving figures (latency
//! variance, SLO attainment, dispatcher behaviour) on this machine's
//! actual hardware.
//!
//! Default mode sweeps the offered Poisson rate and reports achieved
//! throughput, p50/p95/p99 search latency, SLO attainment, mean batch
//! size, and admission shedding, then an observability-overhead section
//! (the identical workload with the telemetry plane off vs on,
//! `results/serve_obs.csv`), then a multi-tenant isolation section.
//! Writes `results/serve_smoke.csv` and `results/serve_tenants.csv`.
//!
//! With `--ttft` it runs the co-scheduled sweep only: the same open-loop
//! driver against a server with a `GenerationConfig`, reporting TTFT
//! p50/p99 and TTFT SLO attainment per rate
//! (`results/serve_ttft.csv`).
//!
//! With `--tiers` it sweeps the physical storage tiers: the same
//! open-loop driver against three placements — all-hot (coverage 1.0,
//! everything resident at full precision), paper placement (the pinned
//! coverage the rest of this bench uses), and all-cold (coverage 0.0,
//! every scan through the segment file's mmap'd SQ8 extents on the single
//! CPU worker). Reports per-tier probe counts, fast-tier residency, and
//! search percentiles (`results/serve_tiers.csv`), and asserts the
//! expected asymmetry: all-cold p99 measurably worse than paper
//! placement, which tracks all-hot within `TIER_MARGIN`.
//!
//! With `--kernels` it sweeps the distance-kernel dispatch and the
//! blocked batch scans: the paper-placement tier workload under every
//! combination of forced-scalar vs native SIMD kernels and blocked vs
//! query-at-a-time cluster scans (`results/serve_kernels.csv`), and
//! asserts that the SIMD rows' p99 never exceeds the scalar rows' and
//! that blocked SIMD beats the scalar query-at-a-time baseline.
//!
//! With `--trace` it runs the causal-tracing overhead A/B: the identical
//! workload with the trace plane (span trees, stage timers, burn-rate
//! watchdog) off vs on (`results/serve_trace.csv`), printing the trace-on
//! run's wall-vs-CPU scan-stage profile alongside the latency comparison.
//!
//! With `--deadlines` it floods the server with requests whose uniform
//! per-request budget cannot absorb the queueing the flood creates, and
//! runs the identical workload twice: measure-only (budgets recorded,
//! never acted on) vs enforcing (the full degradation ladder: admission
//! shed, queue-expiry shed, probe shrinking, cold-tier skip). Reports
//! goodput — deadline-met completions per offered second — per mode
//! (`results/serve_deadlines.csv`) and asserts the enforcing run's
//! goodput strictly exceeds the measure-only baseline's: shedding doomed
//! work early must buy capacity for feasible work.
//!
//! With `--gate <baseline.csv>` it instead runs only the rows listed in
//! the baseline file (`metric,rate,budget_s` rows, `#` comments allowed;
//! metrics: `search_p99` for retrieval-only rates, `ttft_p99` for
//! co-scheduled ones, `obs_overhead` for a fully-instrumented
//! telemetry-plane-on run, `trace_overhead` for a span-recording
//! trace-plane-on run, `tiers_all_hot_p99` / `tiers_paper_p99` /
//! `tiers_all_cold_p99` for the tier sweep, `kernel_scalar_p99` /
//! `kernel_simd_p99` for the dispatch A/B, `deadline_goodput` for the
//! deadline flood — the one *inverted* row, where the budget column is a
//! goodput floor the measured value must stay above) and exits nonzero if
//! any measured p99 exceeds its checked-in budget — CI's perf-smoke step,
//! catching dispatcher/queue (and now generation-bridge and tier-scan)
//! regressions before merge. Budgets are deliberately loose (an order of
//! magnitude above local measurements) so shared runners don't flake,
//! while a hot-path regression that queues batches still trips them.

use vlite_bench::{banner, write_csv};
use vlite_core::RealConfig;
use vlite_metrics::{fmt_seconds, Table};
use vlite_serve::loadgen::{
    run_open_loop, run_open_loop_tenants, LoadPhase, RotatingQuerySource, TenantLoad,
};
use vlite_serve::{GenerationConfig, RagServer, ServeConfig, ServeReport, TenantId, TenantSpec};
use vlite_workload::{CorpusConfig, SyntheticCorpus};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 20_000,
        dim: 32,
        n_centers: 64,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 3,
    })
}

fn real_config() -> RealConfig {
    RealConfig {
        ivf: vlite_ann::IvfConfig::new(128),
        nprobe: 16,
        top_k: 10,
        n_profile_queries: 512,
        slo_search: 0.010,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.25),
    }
}

/// One single-tenant open-loop point: returns the achieved rate and the
/// final report. The telemetry plane runs in its default (enabled) state.
fn run_rate(corpus: &SyntheticCorpus, rate: f64, n_requests: usize) -> (f64, ServeReport) {
    run_rate_obs(corpus, rate, n_requests, true)
}

/// The same open-loop point with the telemetry plane toggled explicitly:
/// the obs-overhead comparison runs it both ways on the same workload.
fn run_rate_obs(
    corpus: &SyntheticCorpus,
    rate: f64,
    n_requests: usize,
    obs_enabled: bool,
) -> (f64, ServeReport) {
    let mut config = ServeConfig::small();
    config.real = real_config();
    config.queue_capacity = 512;
    config.obs.enabled = obs_enabled;
    let server = RagServer::start(corpus, config).expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(corpus, 11);
    let outcome = run_open_loop(&server, &mut source, rate, n_requests, 17, |_, _| {});
    let report = server.shutdown();
    // Completions over the full run including the queue-drain phase: at
    // overload this converges to the service capacity instead of echoing
    // the offered rate.
    (outcome.achieved_rate(), report)
}

/// The same open-loop point with the trace plane toggled explicitly: the
/// trace-overhead comparison runs it both ways on the same workload. The
/// obs plane stays in its default (enabled) state either way, so the A/B
/// isolates the *tracing* cost — span trees, stage timers, watchdog.
fn run_rate_trace(
    corpus: &SyntheticCorpus,
    rate: f64,
    n_requests: usize,
    trace_enabled: bool,
) -> (f64, ServeReport) {
    let mut config = ServeConfig::small();
    config.real = real_config();
    config.queue_capacity = 512;
    config.trace.enabled = trace_enabled;
    let server = RagServer::start(corpus, config).expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(corpus, 11);
    let outcome = run_open_loop(&server, &mut source, rate, n_requests, 17, |_, _| {});
    let report = server.shutdown();
    (outcome.achieved_rate(), report)
}

/// The causal-tracing overhead A/B: the identical workload with the trace
/// plane off, then on. Writes `results/serve_trace.csv` and prints the
/// trace-on run's scan-stage wall-vs-CPU profile (the `trace_overhead`
/// gate row pins the trace-on p99 in CI).
fn trace_sweep() {
    banner(
        "serve-smoke --trace",
        "causal-tracing overhead: trace plane off vs on at 500 req/s",
    );
    let corpus = corpus();
    let mut table = Table::new(vec![
        "tracing",
        "achieved (req/s)",
        "search p50",
        "search p99",
        "SLO attainment",
    ]);
    let mut p99 = [0.0f64; 2];
    for (i, (label, enabled)) in [("off", false), ("on", true)].into_iter().enumerate() {
        let (achieved, report) = run_rate_trace(&corpus, 500.0, 1_000, enabled);
        p99[i] = report.search.p99;
        if enabled {
            let scan = report
                .profile
                .iter()
                .find(|s| s.stage == "shard_scan")
                .expect("trace-on run profiles the scan stage");
            assert!(
                scan.sections > 0,
                "trace-on run must record scan stage sections"
            );
            println!(
                "scan stage (trace on): wall {}  cpu {}  stall {}  over {} sections",
                fmt_seconds(scan.wall_s),
                fmt_seconds(scan.cpu_s),
                fmt_seconds(scan.stall_s),
                scan.sections
            );
        } else {
            assert!(
                report.profile.is_empty(),
                "trace-off run must not carry a profile"
            );
        }
        table.row(vec![
            label.to_string(),
            format!("{achieved:.0}"),
            fmt_seconds(report.search.p50),
            fmt_seconds(report.search.p99),
            format!("{:.1}%", 100.0 * report.slo_attainment),
        ]);
    }
    println!("{}", table.render());
    write_csv("serve_trace.csv", &table.to_csv());
    println!(
        "trace-on p99 {} vs trace-off {}: span recording is a ring write plus",
        fmt_seconds(p99[1]),
        fmt_seconds(p99[0])
    );
    println!("two thread-CPU clock reads per stage section, off the reply path.");
}

/// The pinned "paper placement" coverage used across this bench.
const PAPER_COVERAGE: f64 = 0.25;

/// Paper placement must track all-hot within this p99 factor; the bound
/// is deliberately loose (CI-runner noise) while still catching a cold
/// path accidentally wired into the hot tier.
const TIER_MARGIN: f64 = 4.0;

/// p99 noise allowance for the kernel sweep's SIMD-vs-scalar comparison:
/// the tail folds in queueing bursts, so a shared runner can see a slow
/// SIMD p99 without the kernels being at fault.
const KERNEL_NOISE: f64 = 1.5;

/// p50 noise allowance for the same comparisons. The median is the
/// robust kernel signal (scan work dominates it; locally SIMD wins it
/// ~2.4x), but this sweep compares two *live server runs*, so even the
/// median jitters on shared CI runners — a strict `<` here can fail a
/// merge with no code regression. The allowance is small enough that a
/// dispatcher genuinely selecting a losing kernel (parity or worse)
/// still trips it.
const KERNEL_P50_NOISE: f64 = 1.15;

/// The tier sweep's corpus: big enough that scan work (not thread
/// coordination) dominates per-query latency, so the tiers' physical
/// asymmetry — parallel full-precision arenas vs serial SQ8 LUT scans —
/// is what the percentiles measure.
fn tier_corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 60_000,
        dim: 64,
        n_centers: 64,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 3,
    })
}

/// One open-loop point at a pinned cache coverage (tier placement):
/// 1.0 = all-hot, 0.0 = all-cold, anything else a genuine split.
fn run_rate_tier(
    corpus: &SyntheticCorpus,
    coverage: f64,
    rate: f64,
    n_requests: usize,
) -> ServeReport {
    let mut config = ServeConfig::small();
    config.real = real_config();
    config.real.coverage_override = Some(coverage);
    config.queue_capacity = 512;
    let server = RagServer::start(corpus, config).expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(corpus, 11);
    run_open_loop(&server, &mut source, rate, n_requests, 17, |_, _| {});
    server.shutdown()
}

/// One co-scheduled open-loop point: same driver, with the tiny LLM engine
/// bridged behind retrieval, so the report carries TTFT rows.
fn run_rate_ttft(corpus: &SyntheticCorpus, rate: f64, n_requests: usize) -> ServeReport {
    let mut config = ServeConfig::small();
    config.real = real_config();
    config.queue_capacity = 1024;
    config.generation = Some(GenerationConfig::tiny());
    let server = RagServer::start(corpus, config).expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(corpus, 11);
    run_open_loop(&server, &mut source, rate, n_requests, 17, |_, _| {});
    server.shutdown()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--gate") {
        let path = args
            .get(i + 1)
            .expect("--gate needs a baseline CSV path")
            .clone();
        gate(&path);
        return;
    }
    if args.iter().any(|a| a == "--ttft") {
        assert!(args.len() == 1, "unknown arguments: {args:?}");
        ttft_sweep();
        return;
    }
    if args.iter().any(|a| a == "--tiers") {
        assert!(args.len() == 1, "unknown arguments: {args:?}");
        tiers_sweep();
        return;
    }
    if args.iter().any(|a| a == "--kernels") {
        assert!(args.len() == 1, "unknown arguments: {args:?}");
        kernels_sweep();
        return;
    }
    if args.iter().any(|a| a == "--deadlines") {
        assert!(args.len() == 1, "unknown arguments: {args:?}");
        deadlines_sweep();
        return;
    }
    if args.iter().any(|a| a == "--trace") {
        assert!(args.len() == 1, "unknown arguments: {args:?}");
        trace_sweep();
        return;
    }
    assert!(
        args.is_empty(),
        "unknown arguments: {args:?} (try --gate, --ttft, --tiers, --kernels, --deadlines or --trace)"
    );
    sweep();
}

/// The uniform per-request budget for the deadline flood, in seconds:
/// generous next to an unloaded request (~1-3 ms locally) and hopeless
/// next to the queueing the flood builds up, so enforcement has real
/// doomed work to shed.
const DEADLINE_BUDGET_S: f64 = 0.010;

/// The deadline flood's offered rate (req/s): far enough past the
/// paper-placement service capacity on the tier corpus (where cold
/// probes serialize on the single CPU worker) that the queue saturates
/// and budgets die in it.
const DEADLINE_FLOOD_RATE: f64 = 12_000.0;

/// One open-loop point where every request carries the same deadline
/// budget (via the policy default), with the ladder enforcing or
/// measure-only.
fn run_rate_deadline(
    corpus: &SyntheticCorpus,
    rate: f64,
    n_requests: usize,
    budget_s: f64,
    enforce: bool,
) -> ServeReport {
    let mut config = ServeConfig::small();
    config.real = real_config();
    config.queue_capacity = 512;
    config.deadline.default_deadline = Some(budget_s);
    config.deadline.enforce = enforce;
    let server = RagServer::start(corpus, config).expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(corpus, 11);
    run_open_loop(&server, &mut source, rate, n_requests, 17, |_, _| {});
    server.shutdown()
}

/// Deadline-met completions per offered second: the goodput a client with
/// this budget actually experiences. Late completions count for nothing.
fn goodput(report: &ServeReport, rate: f64, n_requests: usize) -> f64 {
    report.deadline_met as f64 / (n_requests as f64 / rate)
}

/// The deadline flood A/B: the identical over-budget workload with the
/// degradation ladder off (measure-only) and on (enforcing). Writes
/// `results/serve_deadlines.csv` and asserts enforcement strictly wins
/// on goodput.
fn deadlines_sweep() {
    banner(
        "serve-smoke --deadlines",
        "over-budget flood: measure-only vs enforcing degradation ladder",
    );
    // The tier corpus at paper placement: cold probes serialize on the
    // CPU worker, so an over-capacity flood builds real queueing for
    // budgets to die in — and rung 4 has a genuinely slow tier to skip.
    let corpus = tier_corpus();
    let n = 1_500;
    let mut table = Table::new(vec![
        "mode",
        "offered (req/s)",
        "budget",
        "completed",
        "deadline met",
        "goodput (met/s)",
        "sheds adm/queue/gen",
        "degraded probes",
        "cold skips",
        "attainment",
    ]);
    let mut goodputs = Vec::new();
    for (label, enforce) in [("measure_only", false), ("enforcing", true)] {
        let report = run_rate_deadline(&corpus, DEADLINE_FLOOD_RATE, n, DEADLINE_BUDGET_S, enforce);
        let g = goodput(&report, DEADLINE_FLOOD_RATE, n);
        goodputs.push(g);
        if !enforce {
            assert_eq!(
                report.deadline_sheds,
                [0, 0, 0],
                "measure-only must never shed on a deadline"
            );
            assert_eq!(report.degraded_probes, 0);
            assert_eq!(report.cold_skips, 0);
        }
        table.row(vec![
            label.to_string(),
            format!("{DEADLINE_FLOOD_RATE:.0}"),
            fmt_seconds(DEADLINE_BUDGET_S),
            report.completed.to_string(),
            report.deadline_met.to_string(),
            format!("{g:.1}"),
            format!(
                "{}/{}/{}",
                report.deadline_sheds[0], report.deadline_sheds[1], report.deadline_sheds[2]
            ),
            report.degraded_probes.to_string(),
            report.cold_skips.to_string(),
            report
                .deadline_attainment
                .map_or("-".into(), |a| format!("{:.1}%", 100.0 * a)),
        ]);
    }
    println!("{}", table.render());
    write_csv("serve_deadlines.csv", &table.to_csv());

    let (baseline, enforcing) = (goodputs[0], goodputs[1]);
    println!(
        "goodput: measure-only {baseline:.1}/s  enforcing {enforcing:.1}/s  \
         (budget {DEADLINE_BUDGET_S}s at {DEADLINE_FLOOD_RATE:.0} req/s offered)"
    );
    assert!(
        enforcing > baseline,
        "enforcing goodput ({enforcing:.2}/s) must strictly exceed measure-only \
         ({baseline:.2}/s): shedding doomed work early buys capacity for feasible work"
    );
    println!("deadline enforcement wins: {enforcing:.1}/s > {baseline:.1}/s goodput.");
}

/// The physical-tier sweep: all-hot vs paper placement vs all-cold at one
/// offered rate. Writes `results/serve_tiers.csv` and asserts the tiers'
/// latency asymmetry.
fn tiers_sweep() {
    banner(
        "serve-smoke --tiers",
        "physical storage-tier sweep: all-hot / paper placement / all-cold",
    );
    let corpus = tier_corpus();
    // Near the all-cold configuration's single-worker saturation: queueing
    // amplifies the serial SQ8 path's tail while the parallel placements
    // stay comfortable, so the tier asymmetry is unmistakable.
    let rate = 1_000.0;
    let n = 1_200;
    let mut table = Table::new(vec![
        "tier",
        "coverage",
        "fast probes",
        "cold probes",
        "fast residency",
        "search p50",
        "search p99",
        "SLO attainment",
    ]);
    let mut p99s = Vec::new();
    for (label, coverage) in [
        ("all_hot", 1.0),
        ("paper", PAPER_COVERAGE),
        ("all_cold", 0.0),
    ] {
        let report = run_rate_tier(&corpus, coverage, rate, n);
        let store = report
            .store
            .as_ref()
            .expect("tier sweep runs over a tiered store");
        match label {
            "all_hot" => assert_eq!(store.cold_probes, 0, "all-hot must never scan cold"),
            "all_cold" => assert_eq!(store.hot_probes, 0, "all-cold must never scan hot"),
            _ => assert!(
                store.hot_probes > 0 && store.cold_probes > 0,
                "paper placement must exercise both tiers"
            ),
        }
        p99s.push(report.search.p99);
        table.row(vec![
            label.to_string(),
            format!("{coverage:.2}"),
            store.hot_probes.to_string(),
            store.cold_probes.to_string(),
            format!("{:.1}%", 100.0 * store.fast_residency),
            fmt_seconds(report.search.p50),
            fmt_seconds(report.search.p99),
            format!("{:.1}%", 100.0 * report.slo_attainment),
        ]);
    }
    println!("{}", table.render());
    write_csv("serve_tiers.csv", &table.to_csv());

    let (all_hot, paper, all_cold) = (p99s[0], p99s[1], p99s[2]);
    println!(
        "p99: all-hot {}  paper {}  all-cold {}  (margin {TIER_MARGIN}x)",
        fmt_seconds(all_hot),
        fmt_seconds(paper),
        fmt_seconds(all_cold)
    );
    assert!(
        all_cold > paper,
        "all-cold p99 ({all_cold:.6}s) must be measurably worse than paper placement \
         ({paper:.6}s): every probe runs serially on the CPU worker through SQ8 LUTs"
    );
    assert!(
        paper <= all_hot * TIER_MARGIN,
        "paper placement p99 ({paper:.6}s) must track all-hot ({all_hot:.6}s) within {TIER_MARGIN}x"
    );
    println!("tier asymmetry holds: all_cold > paper, paper within {TIER_MARGIN}x of all_hot.");
}

/// One open-loop point at paper placement with the blocked batch scans
/// toggled: the kernel/blocking A/B's shared workload. Callers force the
/// kernel (scalar or native) around this and must clear it afterwards.
fn run_rate_kernel(
    corpus: &SyntheticCorpus,
    unblocked: bool,
    rate: f64,
    n_requests: usize,
) -> ServeReport {
    let mut config = ServeConfig::small();
    config.real = real_config();
    config.real.coverage_override = Some(PAPER_COVERAGE);
    config.store.unblocked = unblocked;
    config.queue_capacity = 512;
    let server = RagServer::start(corpus, config).expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(corpus, 11);
    run_open_loop(&server, &mut source, rate, n_requests, 17, |_, _| {});
    server.shutdown()
}

/// The kernel/blocking sweep: forced-scalar vs native SIMD kernels, each
/// with and without blocked (cluster-major) batch scans, on the paper
/// placement tier workload. Writes `results/serve_kernels.csv` and
/// asserts the dispatch's whole point: SIMD never loses to scalar, and
/// the shipped configuration (blocked + SIMD) beats the scalar
/// query-at-a-time baseline outright.
fn kernels_sweep() {
    banner(
        "serve-smoke --kernels",
        "distance-kernel dispatch x blocked-scan sweep at paper placement",
    );
    let corpus = tier_corpus();
    let rate = 1_000.0;
    let n = 1_200;
    let mut table = Table::new(vec![
        "kernel",
        "scan",
        "blocked passes",
        "search p50",
        "search p99",
        "SLO attainment",
    ]);
    // (forced scalar?, unblocked?) — the last row is the shipped default.
    let mut p50 = std::collections::HashMap::new();
    let mut p99 = std::collections::HashMap::new();
    for (scalar, unblocked) in [(true, true), (true, false), (false, true), (false, false)] {
        if scalar {
            vlite_ann::kernel::force_scalar();
        } else {
            vlite_ann::kernel::force_native();
        }
        let report = run_rate_kernel(&corpus, unblocked, rate, n);
        vlite_ann::kernel::clear_force();
        let store = report
            .store
            .as_ref()
            .expect("kernel sweep runs over a tiered store");
        if unblocked {
            assert_eq!(store.blocked_scans, 0, "unblocked runs must never block");
        }
        let kernel = store.kernel;
        assert_eq!(
            kernel == "scalar",
            scalar,
            "the forced kernel must be the one the report attributes"
        );
        let scan = if unblocked { "per_query" } else { "blocked" };
        p50.insert((scalar, unblocked), report.search.p50);
        p99.insert((scalar, unblocked), report.search.p99);
        table.row(vec![
            kernel.to_string(),
            scan.to_string(),
            store.blocked_scans.to_string(),
            fmt_seconds(report.search.p50),
            fmt_seconds(report.search.p99),
            format!("{:.1}%", 100.0 * report.slo_attainment),
        ]);
    }
    println!("{}", table.render());
    write_csv("serve_kernels.csv", &table.to_csv());

    let scalar_baseline = p99[&(true, true)];
    let simd_blocked = p99[&(false, false)];
    println!(
        "p99: scalar/per-query {}  simd/blocked {}",
        fmt_seconds(scalar_baseline),
        fmt_seconds(simd_blocked)
    );
    for unblocked in [true, false] {
        // Both comparisons carry a noise allowance: these are live
        // server runs, so neither percentile is jitter-free on shared
        // runners. p50 gets the tight allowance (scan work dominates
        // the median; locally SIMD wins it ~2.4x), p99 the loose one
        // (the tail also folds in queueing bursts).
        assert!(
            p50[&(false, unblocked)] <= p50[&(true, unblocked)] * KERNEL_P50_NOISE,
            "SIMD p50 ({:.6}s) must not exceed scalar p50 ({:.6}s) by more than the \
             {KERNEL_P50_NOISE}x noise allowance (unblocked={unblocked}): \
             the dispatcher would be selecting a losing kernel",
            p50[&(false, unblocked)],
            p50[&(true, unblocked)]
        );
        assert!(
            p99[&(false, unblocked)] <= p99[&(true, unblocked)] * KERNEL_NOISE,
            "SIMD p99 ({:.6}s) must not exceed scalar p99 ({:.6}s) by more than the \
             {KERNEL_NOISE}x noise allowance (unblocked={unblocked})",
            p99[&(false, unblocked)],
            p99[&(true, unblocked)]
        );
    }
    // The shipped configuration vs the all-off baseline: the expected
    // margin here is the largest of the sweep (both optimisations
    // compound on the same scan bytes), so the small allowance only
    // absorbs runner jitter, never a real loss.
    assert!(
        simd_blocked <= scalar_baseline * KERNEL_P50_NOISE,
        "blocked SIMD p99 ({simd_blocked:.6}s) must beat the scalar query-at-a-time baseline \
         ({scalar_baseline:.6}s) up to the {KERNEL_P50_NOISE}x noise allowance"
    );
    println!("kernel dispatch holds: simd beats scalar per mode, blocked simd beats the baseline.");
}

/// One parsed baseline row: which metric, at which offered rate, under
/// which p99 budget.
struct GateRow {
    metric: String,
    rate: f64,
    budget: f64,
}

/// CI perf gate: measure only the baseline's rows, fail on any p99 breach.
fn gate(baseline_path: &str) {
    banner(
        "serve-smoke --gate",
        "p99 regression gate against a checked-in baseline",
    );
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let rows: Vec<GateRow> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with("metric"))
        .map(|line| {
            let mut cols = line.split(',').map(str::trim);
            let metric = cols
                .next()
                .unwrap_or_else(|| panic!("bad baseline row: {line}"))
                .to_string();
            let rate: f64 = cols
                .next()
                .and_then(|c| c.parse().ok())
                .unwrap_or_else(|| panic!("bad baseline row: {line}"));
            let budget: f64 = cols
                .next()
                .and_then(|c| c.parse().ok())
                .unwrap_or_else(|| panic!("bad baseline row: {line}"));
            GateRow {
                metric,
                rate,
                budget,
            }
        })
        .collect();
    assert!(!rows.is_empty(), "baseline {baseline_path} has no rows");

    let corpus = corpus();
    let mut table = Table::new(vec![
        "metric",
        "offered (req/s)",
        "measured p99",
        "p99 budget",
        "attainment",
        "verdict",
    ]);
    let mut breaches = 0;
    for row in &rows {
        let (p99, attainment) = match row.metric.as_str() {
            "search_p99" => {
                let (_, report) = run_rate(&corpus, row.rate, 600);
                (report.search.p99, report.slo_attainment)
            }
            "ttft_p99" => {
                let report = run_rate_ttft(&corpus, row.rate, 300);
                assert_eq!(
                    report.ttft.count as u64, report.completed,
                    "co-scheduled gate run must measure TTFT for every request"
                );
                (report.ttft.p99, report.ttft_attainment)
            }
            "obs_overhead" => {
                // The telemetry plane enabled (its default): the budget
                // bounds the p99 of a fully-instrumented run, so a
                // regression that puts a lock or allocation on the obs
                // hot path trips this row.
                let (_, report) = run_rate_obs(&corpus, row.rate, 600, true);
                assert!(
                    report.completed > 0,
                    "obs-overhead gate run must complete requests"
                );
                (report.search.p99, report.slo_attainment)
            }
            "trace_overhead" => {
                // Tracing in its default (enabled) state: the budget
                // bounds the p99 of a run where every request records a
                // span tree, every batch a shared batch span, and the
                // stage timers wrap each pipeline hop — a span-path lock
                // or allocation regression trips this row.
                let (_, report) = run_rate_trace(&corpus, row.rate, 600, true);
                assert!(
                    report
                        .profile
                        .iter()
                        .any(|s| s.stage == "shard_scan" && s.sections > 0),
                    "trace-overhead gate run must record scan stage sections"
                );
                (report.search.p99, report.slo_attainment)
            }
            "tiers_all_hot_p99" | "tiers_paper_p99" | "tiers_all_cold_p99" => {
                let coverage = match row.metric.as_str() {
                    "tiers_all_hot_p99" => 1.0,
                    "tiers_paper_p99" => PAPER_COVERAGE,
                    _ => 0.0,
                };
                let report = run_rate_tier(&tier_corpus(), coverage, row.rate, 600);
                assert!(report.store.is_some(), "tier gate runs need the store");
                (report.search.p99, report.slo_attainment)
            }
            "kernel_scalar_p99" | "kernel_simd_p99" => {
                let scalar = row.metric == "kernel_scalar_p99";
                if scalar {
                    vlite_ann::kernel::force_scalar();
                } else {
                    vlite_ann::kernel::force_native();
                }
                let report = run_rate_kernel(&tier_corpus(), false, row.rate, 600);
                vlite_ann::kernel::clear_force();
                let store = report
                    .store
                    .as_ref()
                    .expect("kernel gate runs need the store");
                assert_eq!(
                    store.kernel == "scalar",
                    scalar,
                    "kernel gate row must measure the kernel it names"
                );
                (report.search.p99, report.slo_attainment)
            }
            "deadline_goodput" => {
                // The one inverted row: the measured value is goodput
                // (deadline-met completions per offered second, enforcing
                // ladder, over-budget flood) and the budget column is a
                // FLOOR it must stay above — a regression that sheds too
                // eagerly or stops degrading drops it.
                let report =
                    run_rate_deadline(&tier_corpus(), row.rate, 600, DEADLINE_BUDGET_S, true);
                let ladder_actions = report.deadline_sheds.iter().sum::<u64>()
                    + report.degraded_probes
                    + report.cold_skips;
                assert!(
                    ladder_actions > 0,
                    "the deadline gate flood must actually exercise the ladder \
                     (no sheds, no probe shrinks, no cold skips)"
                );
                (
                    goodput(&report, row.rate, 600),
                    report.deadline_attainment.unwrap_or(0.0),
                )
            }
            other => panic!(
                "unknown baseline metric {other:?} \
                 (search_p99 | ttft_p99 | obs_overhead | trace_overhead | tiers_all_hot_p99 \
                 | tiers_paper_p99 | tiers_all_cold_p99 | kernel_scalar_p99 | kernel_simd_p99 \
                 | deadline_goodput)"
            ),
        };
        // Goodput gates invert: higher is better, the budget is a floor.
        let inverted = row.metric == "deadline_goodput";
        let ok = if inverted {
            p99 >= row.budget
        } else {
            p99 <= row.budget
        };
        if !ok {
            breaches += 1;
        }
        let fmt_cell = |v: f64| {
            if inverted {
                format!("{v:.1}/s")
            } else {
                fmt_seconds(v)
            }
        };
        table.row(vec![
            row.metric.clone(),
            format!("{:.0}", row.rate),
            fmt_cell(p99),
            fmt_cell(row.budget),
            format!("{attainment:.1}%", attainment = 100.0 * attainment),
            if ok { "pass".into() } else { "FAIL".into() },
        ]);
    }
    println!("{}", table.render());
    write_csv("ci_perf_gate.csv", &table.to_csv());
    if breaches > 0 {
        eprintln!("perf gate FAILED: {breaches} row(s) breached their budget in {baseline_path}");
        std::process::exit(1);
    }
    println!("perf gate passed: every row within its budget.");
}

/// The co-scheduled TTFT sweep: offered rate vs TTFT percentiles, phase
/// p99s, and TTFT SLO attainment. Writes `results/serve_ttft.csv`.
fn ttft_sweep() {
    banner(
        "serve-smoke --ttft",
        "co-scheduled retrieval + generation TTFT sweep",
    );
    let corpus = corpus();
    let mut table = Table::new(vec![
        "offered (req/s)",
        "ttft p50",
        "ttft p99",
        "gen queue p99",
        "prefill p99",
        "decode p99",
        "TTFT attainment",
    ]);
    for &rate in &[80.0, 140.0] {
        let report = run_rate_ttft(&corpus, rate, 300);
        table.row(vec![
            format!("{rate:.0}"),
            fmt_seconds(report.ttft.p50),
            fmt_seconds(report.ttft.p99),
            fmt_seconds(report.gen_queue.p99),
            fmt_seconds(report.prefill.p99),
            fmt_seconds(report.decode.p99),
            format!("{:.1}%", 100.0 * report.ttft_attainment),
        ]);
    }
    println!("{}", table.render());
    write_csv("serve_ttft.csv", &table.to_csv());
    println!("TTFT = retrieval queue + search + generation queue + prefill; the");
    println!("generation stage runs the LLM cost model on the wall clock, so rates");
    println!("past the engine's prefill capacity show up as generation queueing.");
}

/// The default full sweep plus the tenant-isolation section.
fn sweep() {
    banner(
        "serve-smoke",
        "vlite-serve wall-clock throughput/latency sweep",
    );

    let corpus = corpus();
    let mut table = Table::new(vec![
        "offered (req/s)",
        "achieved (req/s)",
        "rejected",
        "mean batch",
        "search p50",
        "search p95",
        "search p99",
        "SLO attainment",
    ]);

    for &rate in &[250.0, 500.0, 1_000.0, 2_000.0] {
        let (achieved, report) = run_rate(&corpus, rate, 1_000);
        table.row(vec![
            format!("{rate:.0}"),
            format!("{achieved:.0}"),
            format!("{}", report.rejected),
            format!("{:.1}", report.mean_batch),
            fmt_seconds(report.search.p50),
            fmt_seconds(report.search.p95),
            fmt_seconds(report.search.p99),
            format!("{:.1}%", 100.0 * report.slo_attainment),
        ]);
    }

    println!("{}", table.render());
    write_csv("serve_smoke.csv", &table.to_csv());
    println!("On-demand batching absorbs queueing as the offered rate crosses the");
    println!("service capacity: batch size grows, per-query latency stays bounded by");
    println!("the batch scan, and admission control sheds load past the queue bound.");

    // Observability overhead: the identical workload with the telemetry
    // plane off, then on. The plane's hot path is sharded atomics and
    // log-bucketed histograms — the comparison documents that always-on
    // telemetry is not a tail-latency tax (the `obs_overhead` gate row
    // pins the obs-on p99 in CI).
    println!("\nobservability overhead: telemetry plane off vs on at 500 req/s");
    let mut obs_table = Table::new(vec![
        "telemetry",
        "achieved (req/s)",
        "search p50",
        "search p99",
        "SLO attainment",
    ]);
    let mut obs_p99 = [0.0f64; 2];
    for (i, (label, enabled)) in [("off", false), ("on", true)].into_iter().enumerate() {
        let (achieved, report) = run_rate_obs(&corpus, 500.0, 1_000, enabled);
        obs_p99[i] = report.search.p99;
        obs_table.row(vec![
            label.to_string(),
            format!("{achieved:.0}"),
            fmt_seconds(report.search.p50),
            fmt_seconds(report.search.p99),
            format!("{:.1}%", 100.0 * report.slo_attainment),
        ]);
    }
    println!("{}", obs_table.render());
    write_csv("serve_obs.csv", &obs_table.to_csv());
    println!(
        "obs-on p99 {} vs obs-off {}: recording is lock-free on the request path.",
        fmt_seconds(obs_p99[1]),
        fmt_seconds(obs_p99[0])
    );

    // Multi-tenant isolation: a steady light tenant (weight 1) shares the
    // server with a heavy tenant (weight 4) offered far past capacity. The
    // per-tenant rows show the shedding charged to the heavy tenant only
    // and the light tenant's attainment holding.
    println!("\nmulti-tenant isolation: light 300/s vs heavy flood (weights 1:4)");
    let mut config = ServeConfig::small();
    config.real = real_config();
    config.tenants = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 256,
            slo_search: 0.010,
        },
        TenantSpec {
            weight: 4,
            queue_capacity: 256,
            slo_search: 0.010,
        },
    ];
    let server = RagServer::start(&corpus, config).expect("server starts");
    let mut loads = vec![
        TenantLoad {
            tenant: TenantId(0),
            source: RotatingQuerySource::from_corpus(&corpus, 19),
            phases: vec![LoadPhase {
                rate: 300.0,
                n: 300,
            }],
        },
        TenantLoad {
            tenant: TenantId(1),
            source: RotatingQuerySource::from_corpus(&corpus, 23),
            phases: vec![LoadPhase {
                rate: 30_000.0,
                n: 30_000,
            }],
        },
    ];
    run_open_loop_tenants(&server, &mut loads, 29);
    let report = server.shutdown();
    println!("{}", report.tenant_table().render());
    write_csv("serve_tenants.csv", &report.tenants_to_csv());
}
