//! Throughput/latency smoke benchmark for the `vlite-serve` runtime: the
//! real-tier counterpart of the simulated serving figures (latency
//! variance, SLO attainment, dispatcher behaviour) on this machine's
//! actual hardware.
//!
//! Default mode sweeps the offered Poisson rate and reports achieved
//! throughput, p50/p95/p99 search latency, SLO attainment, mean batch
//! size, and admission shedding, then runs a multi-tenant isolation
//! section. Writes `results/serve_smoke.csv` and
//! `results/serve_tenants.csv`.
//!
//! With `--gate <baseline.csv>` it instead runs only the rates listed in
//! the baseline file (`rate,p99_max_s` rows, `#` comments allowed) and
//! exits nonzero if any rate's measured p99 search latency exceeds its
//! checked-in threshold — CI's perf-smoke step, catching dispatcher/queue
//! regressions before merge. Thresholds are deliberately loose (an order
//! of magnitude above local measurements) so shared runners don't flake,
//! while a hot-path regression that queues batches still trips them.

use vlite_bench::{banner, write_csv};
use vlite_core::RealConfig;
use vlite_metrics::{fmt_seconds, Table};
use vlite_serve::loadgen::{
    run_open_loop, run_open_loop_tenants, LoadPhase, RotatingQuerySource, TenantLoad,
};
use vlite_serve::{RagServer, ServeConfig, ServeReport, TenantId, TenantSpec};
use vlite_workload::{CorpusConfig, SyntheticCorpus};

fn corpus() -> SyntheticCorpus {
    SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 20_000,
        dim: 32,
        n_centers: 64,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 3,
    })
}

fn real_config() -> RealConfig {
    RealConfig {
        ivf: vlite_ann::IvfConfig::new(128),
        nprobe: 16,
        top_k: 10,
        n_profile_queries: 512,
        slo_search: 0.010,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.25),
    }
}

/// One single-tenant open-loop point: returns the achieved rate and the
/// final report.
fn run_rate(corpus: &SyntheticCorpus, rate: f64, n_requests: usize) -> (f64, ServeReport) {
    let mut config = ServeConfig::small();
    config.real = real_config();
    config.queue_capacity = 512;
    let server = RagServer::start(corpus, config).expect("server starts");
    let mut source = RotatingQuerySource::from_corpus(corpus, 11);
    let outcome = run_open_loop(&server, &mut source, rate, n_requests, 17, |_, _| {});
    let report = server.shutdown();
    // Completions over the full run including the queue-drain phase: at
    // overload this converges to the service capacity instead of echoing
    // the offered rate.
    (outcome.achieved_rate(), report)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--gate") {
        let path = args
            .get(i + 1)
            .expect("--gate needs a baseline CSV path")
            .clone();
        gate(&path);
        return;
    }
    assert!(args.is_empty(), "unknown arguments: {args:?} (try --gate)");
    sweep();
}

/// CI perf gate: measure only the baseline's rates, fail on any p99 breach.
fn gate(baseline_path: &str) {
    banner(
        "serve-smoke --gate",
        "p99 regression gate against a checked-in baseline",
    );
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let thresholds: Vec<(f64, f64)> = text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#') && !l.starts_with("rate"))
        .map(|line| {
            let mut cols = line.split(',');
            let rate: f64 = cols
                .next()
                .and_then(|c| c.trim().parse().ok())
                .unwrap_or_else(|| panic!("bad baseline row: {line}"));
            let p99_max: f64 = cols
                .next()
                .and_then(|c| c.trim().parse().ok())
                .unwrap_or_else(|| panic!("bad baseline row: {line}"));
            (rate, p99_max)
        })
        .collect();
    assert!(
        !thresholds.is_empty(),
        "baseline {baseline_path} has no rows"
    );

    let corpus = corpus();
    let mut table = Table::new(vec![
        "offered (req/s)",
        "search p99",
        "p99 budget",
        "SLO attainment",
        "verdict",
    ]);
    let mut breaches = 0;
    for &(rate, p99_max) in &thresholds {
        let (_, report) = run_rate(&corpus, rate, 600);
        let ok = report.search.p99 <= p99_max;
        if !ok {
            breaches += 1;
        }
        table.row(vec![
            format!("{rate:.0}"),
            fmt_seconds(report.search.p99),
            fmt_seconds(p99_max),
            format!("{:.1}%", 100.0 * report.slo_attainment),
            if ok { "pass".into() } else { "FAIL".into() },
        ]);
    }
    println!("{}", table.render());
    write_csv("ci_perf_gate.csv", &table.to_csv());
    if breaches > 0 {
        eprintln!(
            "perf gate FAILED: {breaches} rate(s) exceeded the p99 budget in {baseline_path}"
        );
        std::process::exit(1);
    }
    println!("perf gate passed: every rate within its p99 budget.");
}

/// The default full sweep plus the tenant-isolation section.
fn sweep() {
    banner(
        "serve-smoke",
        "vlite-serve wall-clock throughput/latency sweep",
    );

    let corpus = corpus();
    let mut table = Table::new(vec![
        "offered (req/s)",
        "achieved (req/s)",
        "rejected",
        "mean batch",
        "search p50",
        "search p95",
        "search p99",
        "SLO attainment",
    ]);

    for &rate in &[250.0, 500.0, 1_000.0, 2_000.0] {
        let (achieved, report) = run_rate(&corpus, rate, 1_000);
        table.row(vec![
            format!("{rate:.0}"),
            format!("{achieved:.0}"),
            format!("{}", report.rejected),
            format!("{:.1}", report.mean_batch),
            fmt_seconds(report.search.p50),
            fmt_seconds(report.search.p95),
            fmt_seconds(report.search.p99),
            format!("{:.1}%", 100.0 * report.slo_attainment),
        ]);
    }

    println!("{}", table.render());
    write_csv("serve_smoke.csv", &table.to_csv());
    println!("On-demand batching absorbs queueing as the offered rate crosses the");
    println!("service capacity: batch size grows, per-query latency stays bounded by");
    println!("the batch scan, and admission control sheds load past the queue bound.");

    // Multi-tenant isolation: a steady light tenant (weight 1) shares the
    // server with a heavy tenant (weight 4) offered far past capacity. The
    // per-tenant rows show the shedding charged to the heavy tenant only
    // and the light tenant's attainment holding.
    println!("\nmulti-tenant isolation: light 300/s vs heavy flood (weights 1:4)");
    let mut config = ServeConfig::small();
    config.real = real_config();
    config.tenants = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 256,
            slo_search: 0.010,
        },
        TenantSpec {
            weight: 4,
            queue_capacity: 256,
            slo_search: 0.010,
        },
    ];
    let server = RagServer::start(&corpus, config).expect("server starts");
    let mut loads = vec![
        TenantLoad {
            tenant: TenantId(0),
            source: RotatingQuerySource::from_corpus(&corpus, 19),
            phases: vec![LoadPhase {
                rate: 300.0,
                n: 300,
            }],
        },
        TenantLoad {
            tenant: TenantId(1),
            source: RotatingQuerySource::from_corpus(&corpus, 23),
            phases: vec![LoadPhase {
                rate: 30_000.0,
                n: 30_000,
            }],
        },
    ];
    run_open_loop_tenants(&server, &mut loads, 29);
    let report = server.shutdown();
    println!("{}", report.tenant_table().render());
    write_csv("serve_tenants.csv", &report.tenants_to_csv());
}
