//! Throughput/latency smoke benchmark for the `vlite-serve` runtime: the
//! real-tier counterpart of the simulated serving figures (latency
//! variance, SLO attainment, dispatcher behaviour) on this machine's
//! actual hardware.
//!
//! Sweeps the offered Poisson rate and reports achieved throughput,
//! p50/p95/p99 search latency, SLO attainment, mean batch size, and
//! admission shedding. Writes `results/serve_smoke.csv`.

use vlite_bench::{banner, write_csv};
use vlite_core::RealConfig;
use vlite_metrics::{fmt_seconds, Table};
use vlite_serve::loadgen::{
    run_open_loop, run_open_loop_tenants, LoadPhase, RotatingQuerySource, TenantLoad,
};
use vlite_serve::{RagServer, ServeConfig, TenantId, TenantSpec};
use vlite_workload::{CorpusConfig, SyntheticCorpus};

fn main() {
    banner(
        "serve-smoke",
        "vlite-serve wall-clock throughput/latency sweep",
    );

    let corpus = SyntheticCorpus::generate(&CorpusConfig {
        n_vectors: 20_000,
        dim: 32,
        n_centers: 64,
        zipf_exponent: 1.1,
        noise: 0.3,
        seed: 3,
    });

    let mut table = Table::new(vec![
        "offered (req/s)",
        "achieved (req/s)",
        "rejected",
        "mean batch",
        "search p50",
        "search p95",
        "search p99",
        "SLO attainment",
    ]);

    let n_requests = 1_000;
    for &rate in &[250.0, 500.0, 1_000.0, 2_000.0] {
        let mut config = ServeConfig::small();
        config.real = RealConfig {
            ivf: vlite_ann::IvfConfig::new(128),
            nprobe: 16,
            top_k: 10,
            n_profile_queries: 512,
            slo_search: 0.010,
            mu_llm0: 50.0,
            kv_bytes_full: 8 << 30,
            n_shards: 2,
            seed: 0x7ea1,
            coverage_override: Some(0.25),
        };
        config.queue_capacity = 512;

        let server = RagServer::start(&corpus, config).expect("server starts");
        let mut source = RotatingQuerySource::from_corpus(&corpus, 11);
        let outcome = run_open_loop(&server, &mut source, rate, n_requests, 17, |_, _| {});
        let report = server.shutdown();

        // Completions over the full run including the queue-drain phase:
        // at overload this converges to the service capacity instead of
        // echoing the offered rate.
        let achieved = outcome.achieved_rate();
        table.row(vec![
            format!("{rate:.0}"),
            format!("{achieved:.0}"),
            format!("{}", report.rejected),
            format!("{:.1}", report.mean_batch),
            fmt_seconds(report.search.p50),
            fmt_seconds(report.search.p95),
            fmt_seconds(report.search.p99),
            format!("{:.1}%", 100.0 * report.slo_attainment),
        ]);
    }

    println!("{}", table.render());
    write_csv("serve_smoke.csv", &table.to_csv());
    println!("On-demand batching absorbs queueing as the offered rate crosses the");
    println!("service capacity: batch size grows, per-query latency stays bounded by");
    println!("the batch scan, and admission control sheds load past the queue bound.");

    // Multi-tenant isolation: a steady light tenant (weight 1) shares the
    // server with a heavy tenant (weight 4) offered far past capacity. The
    // per-tenant rows show the shedding charged to the heavy tenant only
    // and the light tenant's attainment holding.
    println!("\nmulti-tenant isolation: light 300/s vs heavy flood (weights 1:4)");
    let mut config = ServeConfig::small();
    config.real = RealConfig {
        ivf: vlite_ann::IvfConfig::new(128),
        nprobe: 16,
        top_k: 10,
        n_profile_queries: 512,
        slo_search: 0.010,
        mu_llm0: 50.0,
        kv_bytes_full: 8 << 30,
        n_shards: 2,
        seed: 0x7ea1,
        coverage_override: Some(0.25),
    };
    config.tenants = vec![
        TenantSpec {
            weight: 1,
            queue_capacity: 256,
            slo_search: 0.010,
        },
        TenantSpec {
            weight: 4,
            queue_capacity: 256,
            slo_search: 0.010,
        },
    ];
    let server = RagServer::start(&corpus, config).expect("server starts");
    let mut loads = vec![
        TenantLoad {
            tenant: TenantId(0),
            source: RotatingQuerySource::from_corpus(&corpus, 19),
            phases: vec![LoadPhase {
                rate: 300.0,
                n: 300,
            }],
        },
        TenantLoad {
            tenant: TenantId(1),
            source: RotatingQuerySource::from_corpus(&corpus, 23),
            phases: vec![LoadPhase {
                rate: 30_000.0,
                n: 30_000,
            }],
        },
    ];
    run_open_loop_tenants(&server, &mut loads, 29);
    let report = server.shutdown();
    println!("{}", report.tenant_table().render());
    write_csv("serve_tenants.csv", &report.tenants_to_csv());
}
