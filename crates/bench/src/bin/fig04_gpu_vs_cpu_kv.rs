//! Regenerates the paper's Fig. 04 (see `vlite_bench::figs::fig04`).
fn main() {
    vlite_bench::figs::fig04::run();
}
