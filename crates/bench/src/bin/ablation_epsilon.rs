//! Ablation: the queueing factor ε in Algorithm 1.
//!
//! The paper sets ε = 1 ("the worst case where the queuing delay equals one
//! batch latency; empirically ε ranged between 0.9 and 1.0"). This ablation
//! sweeps ε to show the trade-off it controls: smaller ε budgets more of
//! the SLO to a single batch (less coverage, cheaper, but fragile under
//! queueing), larger ε over-provisions.

use vlite_core::{PipelineConfig, RagConfig, RagPipeline, RagSystem, SystemKind};
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

fn main() {
    println!("=== Ablation — queueing factor ε in Algorithm 1 ===");
    let dataset = DatasetPreset::orcas_1k();
    let model = ModelSpec::qwen3_32b();
    let mut table = Table::new(vec![
        "epsilon",
        "tau_s (ms)",
        "coverage",
        "index (GiB)",
        "attainment @0.9 cap",
        "P90 TTFT (ms)",
    ]);
    let mut prev_coverage = -1.0f64;
    for epsilon in [0.5, 1.0, 1.5, 2.0] {
        let mut config =
            RagConfig::paper_default(SystemKind::VectorLite, dataset.clone(), model.clone());
        config.epsilon = epsilon;
        let system = RagSystem::build(config);
        let rate = 0.9 * system.mu_llm0;
        let mut result = RagPipeline::new(&system).run(&PipelineConfig::new(rate, 600, 3));
        table.row(vec![
            format!("{epsilon:.1}"),
            format!("{:.0}", system.decision.tau_s * 1e3),
            format!("{:.1}%", 100.0 * system.decision.coverage),
            format!(
                "{:.2}",
                system.decision.index_bytes as f64 / (1u64 << 30) as f64
            ),
            format!("{:.1}%", 100.0 * result.slo_attainment(system.slo_ttft())),
            format!("{:.0}", result.ttft.percentile(0.9) * 1e3),
        ]);
        // Larger ε ⇒ tighter per-batch budget ⇒ at least as much coverage.
        assert!(
            system.decision.coverage >= prev_coverage - 1e-9,
            "coverage must grow with epsilon"
        );
        prev_coverage = system.decision.coverage;
    }
    println!("{}", table.render());
    println!("Larger ε reserves more of the SLO for queueing, forcing a tighter");
    println!("per-batch budget and therefore more GPU coverage — the paper's ε = 1");
    println!("sits where the measured CPU-baseline queueing factor landed (0.9–1.0).");
}
