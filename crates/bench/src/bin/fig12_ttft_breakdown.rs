//! Regenerates the paper's Fig. 12 (see `vlite_bench::figs::fig12`).
fn main() {
    vlite_bench::figs::fig12::run();
}
