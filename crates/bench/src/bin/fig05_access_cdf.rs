//! Regenerates the paper's Fig. 05 (see `vlite_bench::figs::fig05`).
fn main() {
    vlite_bench::figs::fig05::run();
}
