//! Regenerates the paper's Fig. 15 (see `vlite_bench::figs::fig15`).
fn main() {
    vlite_bench::figs::fig15::run();
}
