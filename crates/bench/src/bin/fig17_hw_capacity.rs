//! Regenerates the paper's Fig. 17 (see `vlite_bench::figs::fig17`).
fn main() {
    vlite_bench::figs::fig17::run();
}
