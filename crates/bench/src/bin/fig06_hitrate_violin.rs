//! Regenerates the paper's Fig. 06 (see `vlite_bench::figs::fig06`).
fn main() {
    vlite_bench::figs::fig06::run();
}
