//! Fig. 10 — performance-model validation: predicted vs measured search
//! latency and tail (batch-minimum) hit rate across batch sizes.

use vlite_core::{HybridSearchEngine, RagConfig, RagSystem, Router, SearchRequest, SystemKind};
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_sim::SimTime;
use vlite_workload::DatasetPreset;

use crate::{banner, write_csv};

/// Runs the Fig. 10 harness.
pub fn run() {
    banner(
        "Fig. 10",
        "predicted vs measured: hybrid latency and tail hit rate",
    );
    let mut table = Table::new(vec![
        "dataset",
        "batch",
        "measured lat (ms)",
        "predicted lat (ms)",
        "measured tail eta",
        "predicted tail eta",
    ]);
    let mut csv = String::from(
        "dataset,batch,measured_latency_s,predicted_latency_s,measured_eta,predicted_eta\n",
    );
    for preset in DatasetPreset::all() {
        let system = RagSystem::build(RagConfig::paper_default(
            SystemKind::VectorLite,
            preset.clone(),
            ModelSpec::qwen3_32b(),
        ));
        let coverage = system.decision.coverage;
        for batch in [1usize, 4, 7, 10, 13] {
            // Measured: run isolated batches of exactly this size.
            let mut engine = HybridSearchEngine::new(
                SystemKind::VectorLite,
                system.cost.clone(),
                system.workload.clone(),
                &system.profile,
                Router::new(system.router.split().clone()),
                true,
                system.shard_gpus.clone(),
                system.config.node.n_gpus,
                10,
            );
            let reps = 24;
            let (mut lat_sum, mut eta_sum) = (0.0, 0.0);
            let mut now = SimTime::ZERO;
            for rep in 0..reps {
                for i in 0..batch {
                    engine.enqueue(SearchRequest {
                        id: (rep * batch + i) as u64,
                        arrival: now,
                    });
                }
                let plan = engine.try_start_batch(now).expect("engine idle");
                lat_sum += (plan.busy_until - plan.started_at).as_secs_f64();
                eta_sum += plan.min_hit_rate;
                now = plan.busy_until;
                engine.finish_batch(now);
            }
            let measured_lat = lat_sum / reps as f64;
            let measured_eta = eta_sum / reps as f64;
            // Predicted: Eq. 1 with the Beta order-statistic tail.
            let predicted_eta = system.estimator.eta_min(coverage, batch);
            let predicted_lat = system.perf.hybrid_latency(batch as f64, predicted_eta);
            table.row(vec![
                preset.name.to_string(),
                batch.to_string(),
                format!("{:.1}", measured_lat * 1e3),
                format!("{:.1}", predicted_lat * 1e3),
                format!("{measured_eta:.2}"),
                format!("{predicted_eta:.2}"),
            ]);
            csv.push_str(&format!(
                "{},{batch},{measured_lat},{predicted_lat},{measured_eta},{predicted_eta}\n",
                preset.name
            ));
        }
    }
    println!("{}", table.render());
    write_csv("fig10_validation.csv", &csv);
    println!("shape checks: tail hit rate declines with batch size and flattens (order");
    println!("statistics); predictions track measurements with a dispatcher offset");
    println!("(the paper reports the same systematic offset in the left panel).");
}
