//! Table II — SLO targets and the resulting GPU memory split.

use vlite_core::{RagConfig, RagSystem, SystemKind};
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

use crate::{banner, write_csv};

/// Runs the Table II harness.
pub fn run() {
    banner(
        "Table II",
        "SLO -> index shard / parameter / KV-cache memory split",
    );
    let dataset = DatasetPreset::orcas_1k();
    let model = ModelSpec::qwen3_32b();
    // Paper reference rows (GB): index shard sizes at each SLO.
    let paper_index_gb = [(100.0, 3.80), (150.0, 2.95), (200.0, 2.47), (250.0, 2.21)];
    let gib = |b: u64| b as f64 / (1u64 << 30) as f64;

    let mut table = Table::new(vec![
        "SLO (ms)",
        "Index (GB)",
        "paper Index (GB)",
        "Param (GB)",
        "KV Cache (GB)",
        "coverage",
    ]);
    let mut csv = String::from("slo_ms,index_gb,paper_index_gb,param_gb,kv_gb,coverage\n");
    let mut prev_index = f64::INFINITY;
    for (slo_ms, paper_gb) in paper_index_gb {
        let mut config =
            RagConfig::paper_default(SystemKind::VectorLite, dataset.clone(), model.clone());
        config.slo_search = slo_ms / 1e3;
        let system = RagSystem::build(config);
        let d = &system.decision;
        // Paper units: index = total GPU-resident bytes; param and KV =
        // per-GPU (params are the TP slice).
        let index_gb = gib(d.index_bytes);
        let param_gb = gib(system.llm_cost.param_bytes_per_gpu());
        let n_llm_gpus = (system.n_llm_instances * system.config.tp as usize) as u64;
        let kv_gb = gib(d.kv_bytes_remaining / n_llm_gpus);
        table.row(vec![
            format!("{slo_ms:.0}"),
            format!("{index_gb:.2}"),
            format!("{paper_gb:.2}"),
            format!("{param_gb:.2}"),
            format!("{kv_gb:.2}"),
            format!("{:.1}%", 100.0 * d.coverage),
        ]);
        csv.push_str(&format!(
            "{slo_ms},{index_gb},{paper_gb},{param_gb},{kv_gb},{}\n",
            d.coverage
        ));
        assert!(
            index_gb <= prev_index + 1e-9,
            "index share must shrink as the SLO relaxes"
        );
        prev_index = index_gb;
    }
    println!("{}", table.render());
    write_csv("table2_memory.csv", &csv);
    println!("shape check: tighter SLOs allocate more GPU memory to the index and");
    println!("less to KV cache, monotonically — the paper's Table II trend.");
}
