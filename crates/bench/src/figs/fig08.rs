//! Fig. 8 — search latency vs batch size; hit-rate variance parabola.

use vlite_core::{AccessProfile, SearchCostModel};
use vlite_metrics::{Series, Table};
use vlite_sim::devices;
use vlite_workload::DatasetPreset;

use crate::{banner, write_csv};

/// Runs the Fig. 8 harness.
pub fn run() {
    banner(
        "Fig. 8",
        "latency vs batch size (left); variance vs mean hit rate (right)",
    );

    // Left: ORCAS on the 64-core Xeon.
    let preset = DatasetPreset::orcas_1k();
    let wl = preset.workload(8);
    let cost = SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
    let mut cq = Series::new("CQ");
    let mut lut = Series::new("LUT");
    let mut total = Series::new("Search");
    let mut table = Table::new(vec!["batch", "CQ (s)", "LUT (s)", "Search (s)"]);
    for b in [1usize, 2, 4, 8, 12, 16, 24, 32] {
        let bf = b as f64;
        cq.push(bf, cost.t_cq(bf));
        lut.push(bf, cost.t_lut_full(bf));
        total.push(bf, cost.cpu_only_total(bf));
        table.row(vec![
            b.to_string(),
            format!("{:.3}", cost.t_cq(bf)),
            format!("{:.3}", cost.t_lut_full(bf)),
            format!("{:.3}", cost.cpu_only_total(bf)),
        ]);
    }
    println!("{}", table.render());
    write_csv("fig08_left.csv", &Series::merge_csv(&[cq, lut, total]));

    // Right: empirical hit-rate variance vs mean (Wiki-All) against the
    // Beta-model parabola 4·σ²max·m(1−m).
    let preset = DatasetPreset::wiki_all();
    let wl = preset.workload(8);
    let profile = AccessProfile::from_workload(&preset, &wl, 4000, 8);
    let sigma2_max = profile.fit_sigma2_max();
    let mut table = Table::new(vec!["mean hit rate", "empirical var", "model 4s2m(1-m)"]);
    let mut csv = String::from("mean,empirical_var,model_var\n");
    let mut worst_gap = 0.0f64;
    for step in 1..=19 {
        let coverage = step as f64 / 20.0;
        let (mean, var) = profile.hit_rate_moments(coverage);
        let model = 4.0 * sigma2_max * mean * (1.0 - mean);
        worst_gap = worst_gap.max((var - model).abs());
        table.row(vec![
            format!("{mean:.2}"),
            format!("{var:.4}"),
            format!("{model:.4}"),
        ]);
        csv.push_str(&format!("{mean},{var},{model}\n"));
    }
    println!("{}", table.render());
    println!("fitted sigma^2_max = {sigma2_max:.4}; worst |empirical - model| = {worst_gap:.4}");
    println!("shape check: variance peaks near mean 0.5 and vanishes at the ends (parabola).");
    write_csv("fig08_right.csv", &csv);
}
