//! Fig. 13 — comparison with HedraRAG under its own index configuration
//! (√N clusters, accuracy-matched nprobe, SLO_search = 400 ms).

use vlite_core::{RagConfig, RagSystem, SystemKind};
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

use crate::{banner, rate_grid, run_point, write_csv, POINT_REQUESTS, SEED};

/// The HedraRAG-replication dataset: ORCAS-scale corpus re-indexed with
/// √N ≈ 11314 clusters; nprobe raised to 6144 to match the retrieval
/// accuracy of the coarser index (paper: 0.94 NDCG@50 parity).
fn hedra_setting() -> DatasetPreset {
    DatasetPreset {
        name: "ORCAS-sqrtN",
        nlist: 11_314,
        default_nprobe: 6_144,
        slo_search_ms: 400.0,
        ..DatasetPreset::orcas_1k()
    }
}

/// Runs the Fig. 13 harness.
pub fn run() {
    banner(
        "Fig. 13",
        "VectorLiteRAG vs HedraRAG (throughput-balanced caching)",
    );
    let dataset = hedra_setting();
    let model = ModelSpec::qwen3_32b();

    let mut systems = Vec::new();
    for kind in [SystemKind::HedraRag, SystemKind::VectorLite] {
        let config = RagConfig::paper_default(kind, dataset.clone(), model.clone());
        systems.push(RagSystem::build(config));
    }
    println!(
        "coverage: HedraRAG {:.1}% vs vLiteRAG {:.1}% (paper: 73% vs 31.5%; the ratio is",
        100.0 * systems[0].decision.coverage,
        100.0 * systems[1].decision.coverage
    );
    println!("calibration-dependent — our CPU retrieval is lighter relative to the LLM");
    println!("than the authors' testbed, so Hedra's balance point needs less cache).");

    let rates = rate_grid(systems[1].mu_llm0);
    // Combined target with the experiment's relaxed 400 ms search SLO.
    let target = systems[1].slo_ttft();
    let mut table = Table::new(vec![
        "system",
        "rate",
        "mean TTFT (s)",
        "P90 TTFT (s)",
        "mean E2E (s)",
    ]);
    let mut csv = String::from("system,rate_rps,mean_ttft_s,p90_ttft_s,mean_e2e_s\n");
    let mut compliant = Vec::new();
    for system in &systems {
        let mut best: f64 = 0.0;
        for &rate in &rates {
            let mut result = run_point(system, rate, POINT_REQUESTS, SEED);
            if result.ttft.percentile(0.9) <= target {
                best = best.max(rate);
            }
            table.row(vec![
                system.config.system.name().to_string(),
                format!("{rate:.1}"),
                format!("{:.2}", result.ttft.mean()),
                format!("{:.2}", result.ttft.percentile(0.9)),
                format!("{:.2}", result.e2e.mean()),
            ]);
            csv.push_str(&format!(
                "{},{rate},{},{},{}\n",
                system.config.system.name(),
                result.ttft.mean(),
                result.ttft.percentile(0.9),
                result.e2e.mean()
            ));
        }
        compliant.push(best);
    }
    println!("{}", table.render());
    write_csv("fig13_hedra.csv", &csv);
    println!(
        "operable range (P90 TTFT <= {:.0} ms): HedraRAG up to {:.1} req/s, vLiteRAG up to {:.1} req/s",
        target * 1e3,
        compliant[0],
        compliant[1]
    );
    assert!(
        compliant[1] >= compliant[0],
        "vLiteRAG must hold the latency target over at least Hedra's range"
    );
    println!("shape checks: the throughput-balanced, latency-blind policy loses operable");
    println!("range to unpruned shard probing and missing dispatch; vLiteRAG holds");
    println!("latency near its 400 ms target across a wider range (paper Fig. 13).");
}
