//! Fig. 4 — CPU fast-scan vs GPU IVF search; KV size vs LLM throughput.

use vlite_core::SearchCostModel;
use vlite_llm::{throughput, LlmCostModel, ModelSpec};
use vlite_metrics::Table;
use vlite_sim::devices;
use vlite_workload::DatasetPreset;

use crate::{banner, write_csv};

/// Runs the Fig. 4 harness.
pub fn run() {
    banner(
        "Fig. 4",
        "GPU search advantage; KV-cache/throughput coupling",
    );

    // Left: CPU IVF fast scan vs GPU IVF search on the big index
    // (64-core Xeon 8462Y+ vs H100, batch 8).
    let preset = DatasetPreset::orcas_1k();
    let wl = preset.workload(1);
    let cost = SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
    let batch = 8.0;
    let cpu = cost.cpu_only_total(batch);
    let gpu = cost.dedicated_gpu_total(batch);
    let mut left = Table::new(vec!["engine", "search time (ms)", "speedup"]);
    left.row(vec![
        "CPU IVF Fast Scan".into(),
        format!("{:.0}", cpu * 1e3),
        "1.0x".into(),
    ]);
    left.row(vec![
        "GPU IVF Search".into(),
        format!("{:.0}", gpu * 1e3),
        format!("{:.1}x", cpu / gpu),
    ]);
    println!("{}", left.render());
    write_csv(
        "fig04_left.csv",
        &format!("engine,seconds\ncpu_fastscan,{cpu}\ngpu_ivf,{gpu}\n"),
    );

    // Right: relative KV space vs normalized LLM throughput
    // (Qwen3-32B on two H100s, the paper's setup).
    let model = ModelSpec::qwen3_32b();
    let llm = LlmCostModel::new(model.clone(), devices::h100(), 2);
    let kv_full = (devices::h100().mem_bytes - llm.param_bytes_per_gpu() - (4 << 30)) * 2;
    let fracs = [0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0];
    let curve = throughput::kv_throughput_curve(&llm, kv_full, 1024, 256, &fracs);
    let peak = curve.last().expect("curve non-empty").1;
    let mut right = Table::new(vec!["relative KV space", "normalized throughput"]);
    let mut csv = String::from("kv_frac,norm_throughput\n");
    for (frac, rps) in &curve {
        right.row(vec![format!("{frac:.2}"), format!("{:.2}", rps / peak)]);
        csv.push_str(&format!("{frac},{}\n", rps / peak));
    }
    println!("{}", right.render());
    write_csv("fig04_right.csv", &csv);
    println!(
        "shape check: throughput at 5% KV is {:.0}% of peak (paper: 'significant drop')",
        100.0 * curve[0].1 / peak
    );
}
