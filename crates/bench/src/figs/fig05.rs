//! Fig. 5 — CDF of cluster access frequency (Wiki-All, ORCAS).

use vlite_metrics::{Series, Table};
use vlite_workload::DatasetPreset;

use crate::{banner, write_csv};

/// Runs the Fig. 5 harness.
pub fn run() {
    banner("Fig. 5", "CDF of cluster access frequency");
    let mut table = Table::new(vec![
        "dataset",
        "top 10% share",
        "top 20% share",
        "top 50% share",
        "paper top-20%",
    ]);
    let mut series = Vec::new();
    for preset in [DatasetPreset::wiki_all(), DatasetPreset::orcas_1k()] {
        let wl = preset.workload(5);
        let mut s = Series::new(preset.name);
        let shares = wl.access_shares_sorted();
        let mut acc = 0.0;
        for (i, share) in shares.iter().enumerate() {
            acc += share;
            let pct = (i + 1) as f64 / shares.len() as f64;
            // Sample the CDF at percentile steps to keep the CSV small.
            if (pct * 200.0).fract() < 200.0 / shares.len() as f64 {
                s.push(pct, acc);
            }
        }
        table.row(vec![
            preset.name.to_string(),
            format!("{:.2}", wl.top_fraction_share(0.1)),
            format!("{:.2}", wl.top_fraction_share(0.2)),
            format!("{:.2}", wl.top_fraction_share(0.5)),
            format!("{:.2}", preset.top20_share),
        ]);
        series.push(s);
    }
    println!("{}", table.render());
    write_csv("fig05_cdf.csv", &Series::merge_csv(&series));
    println!("calibration check: measured top-20% shares must match the paper's 0.59 / 0.93.");
}
