//! Fig. 9 — index rebuild (update cycle) stage timings across SLOs.

use vlite_core::{run_update_cycle, PartitionInput, PerfModel, SearchCostModel};
use vlite_metrics::Table;
use vlite_sim::devices;
use vlite_workload::DatasetPreset;

use crate::{banner, write_csv};

/// Runs the Fig. 9 harness.
pub fn run() {
    banner(
        "Fig. 9",
        "GPU shard rebuild timings (profile/algorithm/split/load)",
    );
    // The paper annotates two SLO settings per dataset.
    let cases = [
        (DatasetPreset::wiki_all(), [100.0, 150.0]),
        (DatasetPreset::orcas_1k(), [150.0, 200.0]),
        (DatasetPreset::orcas_2k(), [200.0, 300.0]),
    ];
    let mut table = Table::new(vec![
        "dataset",
        "SLO (ms)",
        "profiling (s)",
        "algorithm (s)",
        "splitting (s)",
        "loading (s)",
        "total (s)",
    ]);
    let mut csv = String::from("dataset,slo_ms,profiling_s,algorithm_s,splitting_s,loading_s\n");
    let gpu = devices::h100();
    let cpu = devices::xeon_8462y();
    for (preset, slos) in cases {
        let wl = preset.workload(9);
        let cost = SearchCostModel::from_preset(&preset, &wl, &cpu, &gpu);
        let perf = PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16, 32]);
        for slo_ms in slos {
            let input = PartitionInput::new(slo_ms / 1e3, 30.0, 256 << 30);
            let cycle = run_update_cycle(&preset, &wl, &cost, &perf, &input, &gpu, 20_000, 8, 9);
            let t = cycle.timing;
            table.row(vec![
                preset.name.to_string(),
                format!("{slo_ms:.0}"),
                format!("{:.1}", t.profiling),
                format!("{:.3}", t.algorithm),
                format!("{:.1}", t.splitting),
                format!("{:.1}", t.loading),
                format!("{:.1}", t.total()),
            ]);
            csv.push_str(&format!(
                "{},{},{},{},{},{}\n",
                preset.name, slo_ms, t.profiling, t.algorithm, t.splitting, t.loading
            ));
            assert!(
                t.total() < 60.0,
                "paper claim violated: rebuild exceeded one minute ({:.1}s)",
                t.total()
            );
        }
    }
    println!("{}", table.render());
    write_csv("fig09_rebuild.csv", &csv);
    println!("shape check: every cycle completes in under a minute (paper §IV-B3).");
}
