//! Fig. 3 — IVF vs IVF-FastScan latency; IVF-FS stage breakdown.
//!
//! Left panel (real tier): identical IVF-PQ indexes, one with classic
//! list scanning and one with the register-blocked fast-scan layout, timed
//! at batch sizes 4 and 16. Right panel: the LUT-dominated breakdown (CQ /
//! LUT construction / LUT scan) measured on the real index at batches 2
//! and 8, plus the modeled 128M-vector breakdown.

use std::time::Instant;

use vlite_core::SearchCostModel;
use vlite_metrics::Table;
use vlite_sim::devices;
use vlite_workload::{CorpusConfig, DatasetPreset, SyntheticCorpus};

use vlite_ann::{IvfConfig, IvfIndex, ListStorage, PqConfig, QuantizedLut};

use crate::{banner, write_csv};

fn time_search(index: &IvfIndex, queries: &vlite_ann::VecSet, batch: usize, nprobe: usize) -> f64 {
    let reps = 6;
    let mut total = 0.0;
    for rep in 0..reps {
        let t0 = Instant::now();
        for i in 0..batch {
            let q = queries.get((rep * batch + i) % queries.len());
            let _ = index.search(q, 10, nprobe);
        }
        total += t0.elapsed().as_secs_f64();
    }
    total / reps as f64
}

/// Runs the Fig. 3 harness.
pub fn run() {
    banner("Fig. 3", "IVF vs IVF-FastScan latency; IVF-FS breakdown");
    let corpus = SyntheticCorpus::generate(&CorpusConfig::medium());
    let queries = corpus.queries(64, 17);
    let pq_cfg = PqConfig {
        m: 8,
        ksub: 256,
        train_iters: 6,
        seed: 4,
    };
    let nprobe = 16;

    let classic = IvfIndex::train(
        &corpus.vectors,
        &IvfConfig::new(256).storage(ListStorage::Pq(pq_cfg.clone())),
    )
    .expect("classic IVF-PQ trains");
    let fastscan = IvfIndex::train(
        &corpus.vectors,
        &IvfConfig::new(256).storage(ListStorage::FastScan(pq_cfg)),
    )
    .expect("fast-scan IVF-PQ trains");

    let mut left = Table::new(vec!["batch", "IVF (norm.)", "IVF-FS (norm.)", "speedup"]);
    let mut csv = String::from("batch,ivf_s,ivf_fs_s\n");
    for &batch in &[4usize, 16] {
        let t_ivf = time_search(&classic, &queries, batch, nprobe);
        let t_fs = time_search(&fastscan, &queries, batch, nprobe);
        left.row(vec![
            batch.to_string(),
            "1.00".to_string(),
            format!("{:.2}", t_fs / t_ivf),
            format!("{:.2}x", t_ivf / t_fs),
        ]);
        csv.push_str(&format!("{batch},{t_ivf},{t_fs}\n"));
    }
    println!("{}", left.render());
    write_csv("fig03_left.csv", &csv);

    // Right panel: stage breakdown on the real fast-scan index.
    let mut right = Table::new(vec!["batch", "CQ (ms)", "LUT build (ms)", "LUT scan (ms)"]);
    let mut csv = String::from("batch,cq_s,lut_build_s,lut_scan_s\n");
    let pq = fastscan.pq().expect("fast-scan index has a PQ");
    for &batch in &[2usize, 8] {
        let (mut t_cq, mut t_build, mut t_scan) = (0.0, 0.0, 0.0);
        let reps = 6;
        for rep in 0..reps {
            for i in 0..batch {
                let q = queries.get((rep * batch + i) % queries.len());
                let t0 = Instant::now();
                let probes = fastscan.probe(q, nprobe);
                let t1 = Instant::now();
                let lut = pq.lut(q);
                let _qlut = QuantizedLut::from_lut(&lut);
                let t2 = Instant::now();
                let lists: Vec<u32> = probes.iter().map(|p| p.list).collect();
                let _ = fastscan.scan_lists(q, &lists, 10);
                let t3 = Instant::now();
                t_cq += t1.duration_since(t0).as_secs_f64();
                t_build += t2.duration_since(t1).as_secs_f64();
                t_scan += t3.duration_since(t2).as_secs_f64();
            }
        }
        let n = reps as f64;
        right.row(vec![
            batch.to_string(),
            format!("{:.3}", t_cq / n * 1e3),
            format!("{:.3}", t_build / n * 1e3),
            format!("{:.3}", t_scan / n * 1e3),
        ]);
        csv.push_str(&format!(
            "{batch},{},{},{}\n",
            t_cq / n,
            t_build / n,
            t_scan / n
        ));
    }
    println!("{}", right.render());
    write_csv("fig03_right_real.csv", &csv);

    // Modeled 128M-vector index (the paper's right panel substrate).
    let preset = DatasetPreset::orcas_1k();
    let wl = preset.workload(1);
    let cost = SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
    let mut modeled = Table::new(vec!["batch", "CQ (s)", "LUT stages (s)", "LUT share"]);
    for &batch in &[2.0f64, 8.0] {
        let cq = cost.t_cq(batch);
        let lut = cost.t_lut_full(batch);
        modeled.row(vec![
            format!("{batch}"),
            format!("{cq:.3}"),
            format!("{lut:.3}"),
            format!("{:.0}%", 100.0 * lut / (cq + lut)),
        ]);
    }
    println!("modeled 128M-vector index (paper: 'LUT operations dominate'):");
    println!("{}", modeled.render());
}
