//! Fig. 14 — dynamic dispatcher ablation on ORCAS 2K.

use vlite_core::{RagConfig, RagSystem, SystemKind};
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

use crate::{banner, run_point, write_csv, POINT_REQUESTS, SEED};

/// Runs the Fig. 14 harness.
pub fn run() {
    banner(
        "Fig. 14",
        "dynamic dispatcher: average/P90 search latency and batch size",
    );
    let dataset = DatasetPreset::orcas_2k();
    let model = ModelSpec::qwen3_32b();

    let mut builds = Vec::new();
    for dispatcher in [true, false] {
        let mut config =
            RagConfig::paper_default(SystemKind::VectorLite, dataset.clone(), model.clone());
        config.dispatcher = dispatcher;
        builds.push((dispatcher, RagSystem::build(config)));
    }
    let rates: Vec<f64> = [0.7, 0.9, 1.15]
        .iter()
        .map(|f| f * builds[0].1.mu_llm0)
        .collect();

    let mut table = Table::new(vec![
        "dispatcher",
        "rate",
        "avg search (ms)",
        "P90 search (ms)",
        "mean batch",
    ]);
    let mut csv = String::from("dispatcher,rate_rps,avg_search_s,p90_search_s,mean_batch\n");
    let mut gains = Vec::new();
    for &rate in &rates {
        let mut row_pair = Vec::new();
        for (dispatcher, system) in &builds {
            let mut result = run_point(system, rate, POINT_REQUESTS, SEED);
            let avg = result.search_exec.mean();
            let p90 = result.search_exec.percentile(0.9);
            let batch = result.search_stats.mean_batch();
            table.row(vec![
                if *dispatcher { "on" } else { "off" }.to_string(),
                format!("{rate:.1}"),
                format!("{:.1}", avg * 1e3),
                format!("{:.1}", p90 * 1e3),
                format!("{batch:.1}"),
            ]);
            csv.push_str(&format!("{dispatcher},{rate},{avg},{p90},{batch}\n"));
            row_pair.push(avg);
        }
        gains.push(1.0 - row_pair[0] / row_pair[1]);
    }
    println!("{}", table.render());
    write_csv("fig14_dispatcher.csv", &csv);
    let max_gain = gains.iter().copied().fold(0.0, f64::max);
    println!(
        "dispatcher average-latency reduction: up to {:.0}% (paper: up to 16%)",
        100.0 * max_gain
    );
    assert!(
        max_gain > 0.0,
        "dispatcher must not hurt average search latency"
    );
}
