//! Fig. 15 — sensitivity to LLM input and output lengths (P90 TTFT).

use vlite_core::{RagConfig, RagSystem, SystemKind};
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

use crate::{banner, run_point, write_csv, SEED};

const SYSTEMS: [SystemKind; 3] = [
    SystemKind::CpuOnly,
    SystemKind::VectorLite,
    SystemKind::AllGpu,
];

/// Runs the Fig. 15 harness.
pub fn run() {
    banner(
        "Fig. 15",
        "input/output length ablation, P90 TTFT (ORCAS 2K)",
    );
    let dataset = DatasetPreset::orcas_2k();
    let mut csv =
        String::from("model,in_tokens,out_tokens,system,rate_rps,p90_ttft_s,attainment\n");
    for model in [ModelSpec::llama3_8b(), ModelSpec::llama3_70b()] {
        // Input-length ablation at 256 output tokens, then output-length
        // ablation at 1024 input tokens (1024/256 is shared).
        let combos: [(u64, u64); 5] = [
            (512, 256),
            (1024, 256),
            (2048, 256),
            (1024, 128),
            (1024, 512),
        ];
        let mut table = Table::new(vec![
            "in/out",
            "system",
            "rate",
            "P90 TTFT (ms)",
            "attainment",
        ]);
        for (input_tokens, output_tokens) in combos {
            // Per the paper, SLO_LLM stays fixed at the 1024/256 setting.
            let reference = {
                let config =
                    RagConfig::paper_default(SystemKind::CpuOnly, dataset.clone(), model.clone());
                RagSystem::build(config)
            };
            let target = reference.slo_ttft();
            let rates = [0.6 * reference.mu_llm0, 1.0 * reference.mu_llm0];
            for kind in SYSTEMS {
                let mut config = RagConfig::paper_default(kind, dataset.clone(), model.clone());
                config.input_tokens = input_tokens;
                config.output_tokens = output_tokens;
                let system = RagSystem::build(config);
                for &rate in &rates {
                    let mut result = run_point(&system, rate, 400, SEED);
                    let p90 = result.ttft.percentile(0.9);
                    let attainment = result.slo_attainment(target);
                    table.row(vec![
                        format!("{input_tokens}/{output_tokens}"),
                        kind.name().to_string(),
                        format!("{rate:.1}"),
                        format!("{:.0}", p90 * 1e3),
                        format!("{:.1}%", 100.0 * attainment),
                    ]);
                    csv.push_str(&format!(
                        "{},{input_tokens},{output_tokens},{},{rate},{p90},{attainment}\n",
                        model.name,
                        kind.name()
                    ));
                }
            }
        }
        println!("{}:", model.name);
        println!("{}", table.render());
    }
    write_csv("fig15_io_lengths.csv", &csv);
    println!("shape checks: longer inputs raise prefill cost and shift violations to");
    println!("lower rates; longer outputs shrink the compliant range via KV pressure;");
    println!("vLiteRAG stays serviceable over the widest range in each setting.");
}
