//! Fig. 11 — the main evaluation: TTFT SLO attainment and end-to-end
//! latency across all nine (dataset × model) cells and four systems.

use vlite_core::SystemKind;
use vlite_metrics::Table;

use crate::{
    banner, build_cell, evaluation_grid, rate_grid, run_point, write_csv, POINT_REQUESTS, SEED,
};

/// Runs the Fig. 11 harness.
pub fn run() {
    banner(
        "Fig. 11",
        "SLO attainment (left) and end-to-end latency (right), 9 cells",
    );
    let mut csv =
        String::from("dataset,model,system,rate_rps,slo_attainment,p90_ttft_s,mean_e2e_s\n");
    for (dataset, model) in evaluation_grid() {
        println!("\n--- {} + {} ---", dataset.name, model.name);
        // Common x-axis: the bare node capacity measured on the clean
        // (CPU-only) deployment, like the paper's vertical dashed line.
        let reference = build_cell(SystemKind::CpuOnly, &dataset, &model);
        let rates = rate_grid(reference.mu_llm0);
        let target = reference.slo_ttft();
        println!(
            "bare capacity {:.1} req/s; TTFT target {:.0} ms (SLO_LLM {:.0} + SLO_search {:.0})",
            reference.mu_llm0,
            target * 1e3,
            reference.slo_llm * 1e3,
            reference.config.slo_search * 1e3
        );
        let mut table = Table::new(vec![
            "system",
            "coverage",
            "rate",
            "attainment",
            "P90 TTFT (ms)",
            "mean E2E (s)",
        ]);
        let mut compliant_range: Vec<(SystemKind, f64)> = Vec::new();
        for kind in SystemKind::main_four() {
            let system = build_cell(kind, &dataset, &model);
            let mut best_rate: f64 = 0.0;
            for &rate in &rates {
                let mut result = run_point(&system, rate, POINT_REQUESTS, SEED);
                let attainment = result.slo_attainment(target);
                if attainment >= 0.9 && rate > best_rate {
                    best_rate = rate;
                }
                table.row(vec![
                    kind.name().to_string(),
                    format!("{:.1}%", 100.0 * system.decision.coverage),
                    format!("{rate:.1}"),
                    format!("{:.1}%", 100.0 * attainment),
                    format!("{:.0}", result.ttft.percentile(0.90) * 1e3),
                    format!("{:.2}", result.e2e.mean()),
                ]);
                csv.push_str(&format!(
                    "{},{},{},{rate},{attainment},{},{}\n",
                    dataset.name,
                    model.name,
                    kind.name(),
                    result.ttft.percentile(0.90),
                    result.e2e.mean()
                ));
            }
            compliant_range.push((kind, best_rate));
        }
        println!("{}", table.render());
        let vlite = compliant_range
            .iter()
            .find(|(k, _)| *k == SystemKind::VectorLite)
            .expect("vLiteRAG ran")
            .1;
        for (kind, range) in &compliant_range {
            let marker = if *kind == SystemKind::VectorLite {
                "  <- vLiteRAG"
            } else if vlite >= *range {
                ""
            } else {
                "  (! exceeds vLiteRAG)"
            };
            println!(
                "  SLO-compliant up to {:>6.1} req/s : {}{}",
                range,
                kind.name(),
                marker
            );
        }
    }
    write_csv("fig11_main.csv", &csv);
}
