//! Fig. 12 — TTFT breakdown (queueing / search / prefill) for Qwen3-32B
//! on Wiki-All and ORCAS 1K.

use vlite_core::SystemKind;
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

use crate::{banner, build_cell, run_point, write_csv, POINT_REQUESTS, SEED};

/// Runs the Fig. 12 harness.
pub fn run() {
    banner("Fig. 12", "TTFT breakdown: queueing + search + prefill");
    let model = ModelSpec::qwen3_32b();
    let mut csv = String::from("dataset,system,rate_rps,queueing_s,search_s,prefill_s,ttft_s\n");
    for dataset in [DatasetPreset::wiki_all(), DatasetPreset::orcas_1k()] {
        let reference = build_cell(SystemKind::CpuOnly, &dataset, &model);
        // The paper samples three absolute rates (19/32/38); use the same
        // relative positions on our capacity axis.
        let rates: Vec<f64> = [0.55, 0.9, 1.1]
            .iter()
            .map(|f| f * reference.mu_llm0)
            .collect();
        let mut table = Table::new(vec![
            "system",
            "rate",
            "queueing (ms)",
            "search (ms)",
            "prefill (ms)",
            "TTFT (ms)",
        ]);
        for kind in SystemKind::main_four() {
            let system = build_cell(kind, &dataset, &model);
            for &rate in &rates {
                let result = run_point(&system, rate, POINT_REQUESTS, SEED);
                let search = result.search_exec.mean();
                let prefill = result.prefill_estimate;
                let ttft = result.ttft.mean();
                // Queueing = everything not attributable to search execution
                // or the request's own prefill (search queue + LLM queue).
                let queueing = (ttft - search - prefill).max(0.0);
                table.row(vec![
                    kind.name().to_string(),
                    format!("{rate:.1}"),
                    format!("{:.0}", queueing * 1e3),
                    format!("{:.0}", search * 1e3),
                    format!("{:.0}", prefill * 1e3),
                    format!("{:.0}", ttft * 1e3),
                ]);
                csv.push_str(&format!(
                    "{},{},{rate},{queueing},{search},{prefill},{ttft}\n",
                    dataset.name,
                    kind.name()
                ));
            }
        }
        println!("{} + Qwen3-32B:", dataset.name);
        println!("{}", table.render());
    }
    write_csv("fig12_breakdown.csv", &csv);
    println!("shape checks: CPU-only search dominates its TTFT and queueing compounds");
    println!("with rate; vLiteRAG holds search near the SLO split and keeps queueing flat.");
}
