//! Fig. 17 — robustness to hardware capacity: 4-, 6-, 8-GPU nodes.

use vlite_core::{RagConfig, RagSystem, SystemKind};
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

use crate::{banner, rate_grid, run_point, write_csv, POINT_REQUESTS, SEED};

/// Runs the Fig. 17 harness.
pub fn run() {
    banner(
        "Fig. 17",
        "SLO attainment and E2E latency on 4/6/8-GPU nodes",
    );
    let dataset = DatasetPreset::orcas_2k();
    let model = ModelSpec::qwen3_32b();
    let mut csv = String::from("n_gpus,system,rate_rps,attainment,mean_e2e_s\n");
    let mut compliant = Vec::new();
    for n_gpus in [4usize, 6, 8] {
        let make = |kind: SystemKind| {
            let mut config = RagConfig::paper_default(kind, dataset.clone(), model.clone());
            // Cloud provisioning policy: CPU cores scale with GPU count.
            config.node = config.node.with_gpus(n_gpus);
            RagSystem::build(config)
        };
        let reference = make(SystemKind::CpuOnly);
        let rates = rate_grid(reference.mu_llm0);
        let target = reference.slo_ttft();
        let mut table = Table::new(vec!["system", "rate", "attainment", "mean E2E (s)"]);
        for kind in [
            SystemKind::CpuOnly,
            SystemKind::AllGpu,
            SystemKind::VectorLite,
        ] {
            let system = make(kind);
            let mut best: f64 = 0.0;
            for &rate in &rates {
                let result = run_point(&system, rate, POINT_REQUESTS, SEED);
                let attainment = result.slo_attainment(target);
                if attainment >= 0.9 {
                    best = best.max(rate);
                }
                table.row(vec![
                    kind.name().to_string(),
                    format!("{rate:.1}"),
                    format!("{:.1}%", 100.0 * attainment),
                    format!("{:.2}", result.e2e.mean()),
                ]);
                csv.push_str(&format!(
                    "{n_gpus},{},{rate},{attainment},{}\n",
                    kind.name(),
                    result.e2e.mean()
                ));
            }
            if kind == SystemKind::VectorLite {
                compliant.push((n_gpus, best));
            }
        }
        println!("{n_gpus} GPUs + {} cores:", reference.config.node.cpu.cores);
        println!("{}", table.render());
    }
    write_csv("fig17_capacity.csv", &csv);
    println!("vLiteRAG SLO-compliant range by node size:");
    for (n, r) in &compliant {
        println!("  {n} GPUs: up to {r:.1} req/s");
    }
    assert!(
        compliant.windows(2).all(|w| w[1].1 >= w[0].1),
        "compliant range must grow with GPU count"
    );
    println!("shape check: range grows roughly in proportion to GPU count (paper §VI-E4).");
}
