//! Table I — SLO target values used in the main evaluation.

use vlite_core::{RagConfig, RagSystem, SystemKind};
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

use crate::{banner, write_csv};

/// Runs the Table I harness.
pub fn run() {
    banner(
        "Table I",
        "SLO targets: search (configured) and LLM (measured at capacity)",
    );
    // The paper pairs rows positionally: Wiki-All/Llama3-8B,
    // ORCAS 1K/Qwen3-32B, ORCAS 2K/Llama3-70B.
    let rows = [
        (DatasetPreset::wiki_all(), ModelSpec::llama3_8b(), 217.0),
        (DatasetPreset::orcas_1k(), ModelSpec::qwen3_32b(), 191.0),
        (DatasetPreset::orcas_2k(), ModelSpec::llama3_70b(), 311.0),
    ];
    let mut table = Table::new(vec![
        "Vector Index",
        "SLO_search (ms)",
        "LLM",
        "SLO_LLM measured (ms)",
        "SLO_LLM paper (ms)",
    ]);
    let mut csv = String::from("dataset,slo_search_ms,model,slo_llm_ms,paper_slo_llm_ms\n");
    for (dataset, model, paper_ms) in rows {
        let system = RagSystem::build(RagConfig::paper_default(
            SystemKind::CpuOnly,
            dataset.clone(),
            model.clone(),
        ));
        let measured = system.slo_llm * 1e3;
        table.row(vec![
            dataset.name.to_string(),
            format!("{:.0}", dataset.slo_search_ms),
            model.name.clone(),
            format!("{measured:.0}"),
            format!("{paper_ms:.0}"),
        ]);
        csv.push_str(&format!(
            "{},{},{},{measured},{paper_ms}\n",
            dataset.name, dataset.slo_search_ms, model.name
        ));
        let ratio = measured / paper_ms;
        assert!(
            (0.4..2.5).contains(&ratio),
            "{}: SLO_LLM {measured:.0}ms too far from paper {paper_ms:.0}ms",
            model.name
        );
    }
    println!("{}", table.render());
    write_csv("table1_slo.csv", &csv);
}
