//! Fig. 16 — sensitivity to the search-stage SLO (P95/P90 tail TTFT).

use vlite_core::{RagConfig, RagSystem, SystemKind};
use vlite_llm::ModelSpec;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

use crate::{banner, rate_grid, run_point, write_csv, POINT_REQUESTS, SEED};

/// Runs the Fig. 16 harness.
pub fn run() {
    banner(
        "Fig. 16",
        "P95 (and vLiteRAG P90) TTFT under varying SLO_search",
    );
    let dataset = DatasetPreset::orcas_1k();
    let model = ModelSpec::qwen3_32b();
    let reference = RagSystem::build(RagConfig::paper_default(
        SystemKind::CpuOnly,
        dataset.clone(),
        model.clone(),
    ));
    let rates = rate_grid(reference.mu_llm0);
    let mut csv = String::from("slo_search_ms,system,rate_rps,p95_ttft_s,p90_ttft_s,index_gib\n");
    for slo_ms in [100.0, 150.0, 200.0, 250.0] {
        let mut table = Table::new(vec![
            "system",
            "index (GiB)",
            "rate",
            "P95 TTFT (ms)",
            "P90 TTFT (ms)",
        ]);
        for kind in [
            SystemKind::CpuOnly,
            SystemKind::AllGpu,
            SystemKind::VectorLite,
        ] {
            let mut config = RagConfig::paper_default(kind, dataset.clone(), model.clone());
            config.slo_search = slo_ms / 1e3;
            let system = RagSystem::build(config);
            let index_gib = system.decision.index_bytes as f64 / (1u64 << 30) as f64;
            for &rate in &rates {
                let mut result = run_point(&system, rate, POINT_REQUESTS, SEED);
                let p95 = result.ttft.percentile(0.95);
                let p90 = result.ttft.percentile(0.90);
                table.row(vec![
                    kind.name().to_string(),
                    format!("{index_gib:.2}"),
                    format!("{rate:.1}"),
                    format!("{:.0}", p95 * 1e3),
                    format!("{:.0}", p90 * 1e3),
                ]);
                csv.push_str(&format!(
                    "{slo_ms},{},{rate},{p95},{p90},{index_gib}\n",
                    kind.name()
                ));
            }
        }
        println!("SLO_search = {slo_ms:.0} ms:");
        println!("{}", table.render());
    }
    write_csv("fig16_slo_sensitivity.csv", &csv);
    println!("shape checks: relaxed SLOs shrink the GPU slice (latency drifts toward");
    println!("CPU-only); tight SLOs grow it (drifts toward ALL-GPU); vLiteRAG's");
    println!("P90-vs-P95 gap stays within ~1 rate step, as in the paper.");
}
