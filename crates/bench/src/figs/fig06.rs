//! Fig. 6 — hit-rate distribution vs cache coverage (violin quantiles).

use vlite_core::AccessProfile;
use vlite_metrics::Table;
use vlite_workload::DatasetPreset;

use crate::{banner, write_csv};

/// Runs the Fig. 6 harness.
pub fn run() {
    banner(
        "Fig. 6",
        "hit-rate distributions at 5/10/20% cache coverage",
    );
    let mut table = Table::new(vec![
        "dataset", "coverage", "p5", "p25", "median", "p75", "p95", "mean",
    ]);
    let mut csv = String::from("dataset,coverage,p5,p25,p50,p75,p95,mean\n");
    for preset in [DatasetPreset::wiki_all(), DatasetPreset::orcas_1k()] {
        let wl = preset.workload(6);
        let profile = AccessProfile::from_workload(&preset, &wl, 4000, 6);
        for &coverage in &[0.05, 0.10, 0.20] {
            let mut samples = profile.hit_rate_samples(coverage);
            samples.sort_by(f64::total_cmp);
            let q = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            table.row(vec![
                preset.name.to_string(),
                format!("{:.0}%", coverage * 100.0),
                format!("{:.2}", q(0.05)),
                format!("{:.2}", q(0.25)),
                format!("{:.2}", q(0.50)),
                format!("{:.2}", q(0.75)),
                format!("{:.2}", q(0.95)),
                format!("{mean:.2}"),
            ]);
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                preset.name,
                coverage,
                q(0.05),
                q(0.25),
                q(0.50),
                q(0.75),
                q(0.95),
                mean
            ));
        }
    }
    println!("{}", table.render());
    write_csv("fig06_violins.csv", &csv);
    println!("shape check: means rise with coverage, but low-hit tail queries persist");
    println!("(p5 well below the median), which is the paper's Takeaway 3.");
}
