//! Criterion micro-benchmarks for the performance-critical kernels:
//! the ANN substrate (k-means, PQ, fast-scan, HNSW, top-k), the
//! estimator's numerics (Beta CDF, order statistics, coverage inversion),
//! the partitioning algorithm, the router, and the serving engines.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vlite_ann::{
    FlatIndex, Hnsw, HnswConfig, IvfConfig, IvfIndex, KMeans, KMeansConfig, ListStorage, Metric,
    PqConfig, ProductQuantizer, QuantizedLut, TopK, VecSet,
};
use vlite_core::{
    partition, stats, AccessProfile, HitRateEstimator, HybridSearchEngine, PartitionInput,
    PerfModel, PipelineConfig, RagConfig, RagPipeline, RagSystem, Router, SearchCostModel,
    SearchRequest, SystemKind,
};
use vlite_llm::{LlmCostModel, LlmEngine, LlmRequest, ModelSpec};
use vlite_sim::{devices, SimTime};
use vlite_workload::DatasetPreset;

fn random_data(n: usize, dim: usize, seed: u64) -> VecSet {
    let mut rng = StdRng::seed_from_u64(seed);
    VecSet::from_fn(n, dim, |_, _| rng.random::<f32>())
}

fn bench_ann(c: &mut Criterion) {
    let data = random_data(8_192, 32, 1);
    let queries = random_data(16, 32, 2);

    c.bench_function("kmeans_train_8k_x32_k64", |b| {
        let cfg = KMeansConfig::new(64).max_iters(5);
        b.iter(|| KMeans::train(black_box(&data), &cfg).unwrap())
    });

    let pq_cfg = PqConfig {
        m: 8,
        ksub: 256,
        train_iters: 4,
        seed: 3,
    };
    let pq = ProductQuantizer::train(&data, &pq_cfg).unwrap();
    c.bench_function("pq_encode_one", |b| {
        b.iter(|| black_box(&pq).encode(black_box(data.get(7))))
    });
    c.bench_function("pq_lut_build", |b| {
        b.iter(|| black_box(&pq).lut(black_box(queries.get(0))))
    });

    let codes = pq.encode_batch(&data);
    let lut = pq.lut(queries.get(0));
    c.bench_function("pq_scan_8k_classic", |b| {
        b.iter(|| {
            let mut top = TopK::new(10);
            for (i, code) in codes.chunks_exact(pq.m()).enumerate() {
                top.push(i as u64, lut.distance(code));
            }
            top.into_sorted()
        })
    });

    let ids: Vec<u64> = (0..data.len() as u64).collect();
    let fs = vlite_ann::FastScanList::build(&codes, pq.m(), &ids);
    let qlut = QuantizedLut::from_lut(&lut);
    c.bench_function("pq_scan_8k_fastscan", |b| {
        b.iter(|| {
            let mut top = TopK::new(10);
            black_box(&fs).scan(&qlut, &mut top);
            top.into_sorted()
        })
    });

    let ivf = IvfIndex::train(
        &data,
        &IvfConfig::new(64).storage(ListStorage::FastScan(pq_cfg.clone())),
    )
    .unwrap();
    c.bench_function("ivf_fastscan_search_nprobe8", |b| {
        b.iter(|| black_box(&ivf).search(black_box(queries.get(1)), 10, 8))
    });

    let flat = FlatIndex::new(data.clone(), Metric::L2);
    c.bench_function("flat_search_8k", |b| {
        b.iter(|| black_box(&flat).search(black_box(queries.get(2)), 10))
    });

    let hnsw = Hnsw::build(&random_data(4096, 16, 5), &HnswConfig::default());
    let hq = random_data(4, 16, 6);
    c.bench_function("hnsw_search_4k_ef64", |b| {
        b.iter(|| black_box(&hnsw).search(black_box(hq.get(0)), 10, 64))
    });

    c.bench_function("topk_1m_stream", |b| {
        let mut rng = StdRng::seed_from_u64(8);
        let stream: Vec<f32> = (0..100_000).map(|_| rng.random()).collect();
        b.iter(|| {
            let mut top = TopK::new(25);
            for (i, &d) in stream.iter().enumerate() {
                top.push(i as u64, d);
            }
            top.into_sorted()
        })
    });
}

fn bench_estimator(c: &mut Criterion) {
    let preset = DatasetPreset::tiny();
    let wl = preset.workload(9);
    let profile = AccessProfile::from_workload(&preset, &wl, 2000, 9);
    let est = HitRateEstimator::from_profile(&profile);

    c.bench_function("beta_cdf", |b| {
        let d = stats::BetaDist::new(2.3, 5.1);
        b.iter(|| black_box(&d).cdf(black_box(0.37)))
    });
    c.bench_function("expected_batch_min_b8", |b| {
        let d = stats::BetaDist::new(2.3, 5.1);
        b.iter(|| stats::expected_batch_min(black_box(&d), 8))
    });
    c.bench_function("hit_rate_to_coverage", |b| {
        b.iter(|| black_box(&est).hit_rate_to_coverage(black_box(0.4), 8))
    });

    let cost = SearchCostModel::from_preset(&preset, &wl, &devices::xeon_8462y(), &devices::h100());
    let perf = PerfModel::from_cost_model(&cost, &[1, 2, 4, 8, 16, 32]);
    c.bench_function("partition_algorithm", |b| {
        let input = PartitionInput::new(0.005, 25.0, 64 << 30);
        b.iter(|| partition(black_box(&input), &perf, &est, &profile))
    });
}

fn bench_runtime(c: &mut Criterion) {
    let system = RagSystem::build(RagConfig::tiny(SystemKind::VectorLite));

    c.bench_function("router_route_nprobe32", |b| {
        let probes: Vec<u32> = (0..32).collect();
        b.iter(|| system.router.route(black_box(&probes)))
    });

    c.bench_function("search_engine_batch16", |b| {
        b.iter_batched(
            || {
                let mut engine = HybridSearchEngine::new(
                    SystemKind::VectorLite,
                    system.cost.clone(),
                    system.workload.clone(),
                    &system.profile,
                    Router::new(system.router.split().clone()),
                    true,
                    system.shard_gpus.clone(),
                    4,
                    1,
                );
                for id in 0..16 {
                    engine.enqueue(SearchRequest {
                        id,
                        arrival: SimTime::ZERO,
                    });
                }
                engine
            },
            |mut engine| engine.try_start_batch(SimTime::ZERO).unwrap(),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("llm_engine_decode_step_b32", |b| {
        b.iter_batched(
            || {
                let cost = LlmCostModel::new(ModelSpec::tiny(), devices::l40s(), 1);
                let mut engine = LlmEngine::new(cost, 8 << 30);
                for id in 0..32 {
                    engine.submit(LlmRequest::new(id, 64, 64), SimTime::ZERO);
                }
                // Consume the prefill iteration so the next advance decodes.
                let step = engine.advance(SimTime::ZERO).unwrap();
                (engine, step.busy_until)
            },
            |(mut engine, now)| engine.advance(now).unwrap(),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("pipeline_100_requests", |b| {
        b.iter(|| RagPipeline::new(&system).run(&PipelineConfig::new(20.0, 100, 3)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ann, bench_estimator, bench_runtime
}
criterion_main!(benches);
