//! Property tests pinning the fidelity contract of the streaming
//! histogram against the exact-sample [`LatencyRecorder`]:
//!
//! - every percentile answer errs **high** and by at most the documented
//!   relative bound `2^(1/B) − 1` (both sides use nearest-rank, so they
//!   pick the same underlying sample);
//! - sharded histograms merge associatively, so per-thread shards can be
//!   folded in any grouping;
//! - concurrent recording from many threads loses no samples (the
//!   lock-free claim, pinned at the instrument level).

use std::sync::Arc;
use std::thread;

use proptest::prelude::*;
use vlite_metrics::obs::{Counter, StreamingHistogram};
use vlite_metrics::LatencyRecorder;

/// Absolute slack for float round-off on top of the documented relative
/// bound (bucket boundaries are computed with `powf`).
const SLACK: f64 = 1e-12;

fn build(samples: &[f64]) -> (StreamingHistogram, LatencyRecorder) {
    let hist = StreamingHistogram::new();
    let mut exact = LatencyRecorder::new();
    for &s in samples {
        hist.record(s);
        exact.record(s);
    }
    (hist, exact)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn percentiles_track_the_exact_recorder_within_the_bucket_bound(
        samples in prop::collection::vec(0.000_001f64..10.0, 1..200),
    ) {
        let (hist, mut exact) = build(&samples);
        let err = StreamingHistogram::relative_error_bound();
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let truth = exact.percentile(q);
            let answer = hist.percentile(q);
            prop_assert!(
                answer >= truth * (1.0 - SLACK),
                "p{q}: streaming {answer} below exact {truth}"
            );
            prop_assert!(
                answer <= truth * (1.0 + err) * (1.0 + SLACK),
                "p{q}: streaming {answer} exceeds exact {truth} by more \
                 than the {err:.4} bucket bound"
            );
        }
    }

    #[test]
    fn count_and_sum_match_the_exact_recorder(
        samples in prop::collection::vec(0.000_001f64..10.0, 1..200),
    ) {
        let (hist, exact) = build(&samples);
        prop_assert_eq!(hist.count(), exact.len() as u64);
        let truth: f64 = samples.iter().sum();
        // Sum is kept in integer nanoseconds: half an ns of round-off per
        // sample.
        prop_assert!((hist.sum_seconds() - truth).abs() <= samples.len() as f64 * 1e-9);
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(0.000_001f64..10.0, 1..60),
        b in prop::collection::vec(0.000_001f64..10.0, 1..60),
        c in prop::collection::vec(0.000_001f64..10.0, 1..60),
    ) {
        let fold = |groups: &[&[f64]]| {
            let acc = StreamingHistogram::new();
            for group in groups {
                let shard = StreamingHistogram::new();
                for &s in *group {
                    shard.record(s);
                }
                acc.merge_from(&shard);
            }
            acc
        };
        // (a ⊕ b) ⊕ c
        let left = fold(&[&a, &b]);
        let c_shard = fold(&[&c]);
        left.merge_from(&c_shard);
        // a ⊕ (b ⊕ c)
        let right_tail = fold(&[&b, &c]);
        let right = fold(&[&a]);
        right.merge_from(&right_tail);

        prop_assert_eq!(left.count(), right.count());
        prop_assert!((left.sum_seconds() - right.sum_seconds()).abs() < 1e-9);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            let (l, r) = (left.percentile(q), right.percentile(q));
            prop_assert!(
                (l - r).abs() <= SLACK * l.abs().max(1.0),
                "p{q} differs across merge orders: {l} vs {r}"
            );
        }
    }
}

#[test]
fn concurrent_recording_loses_no_samples() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let hist = Arc::new(StreamingHistogram::new());
    let counter = Arc::new(Counter::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let (hist, counter) = (Arc::clone(&hist), Arc::clone(&counter));
            thread::spawn(move || {
                for i in 0..PER_THREAD {
                    hist.record((t as f64 + 1.0) * 1e-4 + i as f64 * 1e-9);
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let expected = THREADS as u64 * PER_THREAD;
    assert_eq!(hist.count(), expected);
    assert_eq!(counter.get(), expected);
    let rows = hist.cumulative_buckets();
    assert_eq!(rows.last().unwrap().1, expected);
}
