//! Span-tree primitives for causal request tracing.
//!
//! A *trace* is identified by a 128-bit id and holds a list of spans; each
//! span names a stage of work with `[start_s, end_s]` boundaries, an
//! optional parent span (forming a tree), and zero or more *links* to other
//! trace ids that causally interacted with it — the batch a request rode
//! in, the requests a migration stalled. The store is bounded: once more
//! than `capacity` distinct traces are held, whole oldest traces are
//! evicted (a trace is only useful complete — evicting individual spans
//! would leave dangling parents).
//!
//! The recording side lives in `vlite-serve`; this module owns the data
//! model, the bounded store, and the well-formedness checker that the
//! property tests drive.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// One recorded span of work inside a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// The 128-bit trace this span belongs to.
    pub trace_id: u128,
    /// Id unique within the process (not just the trace).
    pub span_id: u64,
    /// Parent span id within the same trace; `None` for a root span.
    pub parent_id: Option<u64>,
    /// Stage name, e.g. `request`, `queue`, `batch`, `scan:shard0`.
    pub name: String,
    /// Start boundary in seconds since the serving epoch.
    pub start_s: f64,
    /// End boundary in seconds since the serving epoch (`>= start_s`).
    pub end_s: f64,
    /// Trace ids causally linked to this span (co-batched requests, the
    /// batch a migration stalled, ...).
    pub links: Vec<u128>,
}

struct Inner {
    traces: HashMap<u128, Vec<SpanRecord>>,
    /// Trace ids in first-recorded order; the eviction queue.
    order: VecDeque<u128>,
}

/// Bounded, thread-safe store of span trees keyed by trace id.
pub struct SpanStore {
    inner: Mutex<Inner>,
    capacity: usize,
    evicted: AtomicU64,
}

/// Local poisoned-lock recovery: span recording must keep working after an
/// unrelated panic, and the data is append-mostly so a poisoned snapshot is
/// still internally consistent.
fn lock_recover<'a>(mutex: &'a Mutex<Inner>) -> MutexGuard<'a, Inner> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl SpanStore {
    /// A store holding at most `capacity` distinct traces. Capacity `0`
    /// drops every span (counting each dropped trace as an eviction).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                traces: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity,
            evicted: AtomicU64::new(0),
        }
    }

    /// Records one span, evicting the oldest whole trace if `span` starts a
    /// new trace beyond capacity.
    pub fn record(&self, span: SpanRecord) {
        if self.capacity == 0 {
            // relaxed: a monotonically increasing diagnostics-only counter;
            // no other memory depends on its ordering.
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut inner = lock_recover(&self.inner);
        if !inner.traces.contains_key(&span.trace_id) {
            while inner.order.len() >= self.capacity {
                if let Some(oldest) = inner.order.pop_front() {
                    inner.traces.remove(&oldest);
                    // relaxed: same diagnostics-only counter as above.
                    self.evicted.fetch_add(1, Ordering::Relaxed);
                }
            }
            inner.order.push_back(span.trace_id);
        }
        inner.traces.entry(span.trace_id).or_default().push(span);
    }

    /// All spans recorded for `trace_id`, in recording order.
    pub fn get(&self, trace_id: u128) -> Option<Vec<SpanRecord>> {
        lock_recover(&self.inner).traces.get(&trace_id).cloned()
    }

    /// Number of distinct traces currently held.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).order.len()
    }

    /// Whether no traces are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total whole traces evicted (or dropped at capacity 0) so far.
    pub fn evicted(&self) -> u64 {
        // relaxed: reading a diagnostics-only counter.
        self.evicted.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SpanStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanStore")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("evicted", &self.evicted())
            .finish()
    }
}

/// Renders a trace id as the 32-digit lowercase hex W3C form.
pub fn format_trace_id(id: u128) -> String {
    format!("{id:032x}")
}

/// Parses a 32-digit hex trace id (the W3C `trace-id` field).
pub fn parse_trace_id(s: &str) -> Option<u128> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// Tolerance when comparing span boundaries: recorded times are f64
/// seconds derived from integer nanoseconds, so equal instants compare
/// equal, but allow for one ulp of drift from unit conversion.
const NEST_EPS: f64 = 1e-9;

/// Checks that `spans` form a well-formed tree for one trace and returns a
/// human-readable description of every violation found (empty = valid).
///
/// Checked invariants:
/// - every span's `end_s >= start_s`;
/// - span ids are unique within the trace;
/// - every `parent_id` refers to a span in the list;
/// - every child's interval nests within its parent's interval;
/// - parent links are acyclic (a root is reachable from every span).
pub fn tree_violations(spans: &[SpanRecord]) -> Vec<String> {
    let mut violations = Vec::new();
    let mut by_id: HashMap<u64, &SpanRecord> = HashMap::new();
    for span in spans {
        if span.end_s < span.start_s {
            violations.push(format!(
                "span {} `{}` ends before it starts ({} < {})",
                span.span_id, span.name, span.end_s, span.start_s
            ));
        }
        if by_id.insert(span.span_id, span).is_some() {
            violations.push(format!("duplicate span id {}", span.span_id));
        }
    }
    for span in spans {
        let Some(parent_id) = span.parent_id else {
            continue;
        };
        let Some(parent) = by_id.get(&parent_id) else {
            violations.push(format!(
                "span {} `{}` references missing parent {}",
                span.span_id, span.name, parent_id
            ));
            continue;
        };
        if span.start_s + NEST_EPS < parent.start_s || span.end_s > parent.end_s + NEST_EPS {
            violations.push(format!(
                "span {} `{}` [{}, {}] escapes parent {} `{}` [{}, {}]",
                span.span_id,
                span.name,
                span.start_s,
                span.end_s,
                parent.span_id,
                parent.name,
                parent.start_s,
                parent.end_s
            ));
        }
    }
    // Cycle check: walk each span's parent chain; a well-formed chain
    // terminates at a root within len(spans) hops.
    for span in spans {
        let mut hops = 0usize;
        let mut cursor = span;
        while let Some(parent_id) = cursor.parent_id {
            let Some(parent) = by_id.get(&parent_id) else {
                break; // already reported as a missing parent
            };
            cursor = parent;
            hops += 1;
            if hops > spans.len() {
                violations.push(format!(
                    "span {} `{}` sits on a parent cycle",
                    span.span_id, span.name
                ));
                break;
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u128, id: u64, parent: Option<u64>, start: f64, end: f64) -> SpanRecord {
        SpanRecord {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            name: format!("s{id}"),
            start_s: start,
            end_s: end,
            links: Vec::new(),
        }
    }

    #[test]
    fn store_keeps_whole_traces_and_evicts_oldest() {
        let store = SpanStore::new(2);
        store.record(span(1, 10, None, 0.0, 1.0));
        store.record(span(1, 11, Some(10), 0.2, 0.8));
        store.record(span(2, 20, None, 0.0, 1.0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evicted(), 0);

        store.record(span(3, 30, None, 0.0, 1.0));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evicted(), 1);
        assert!(store.get(1).is_none(), "oldest trace evicted whole");
        assert_eq!(store.get(2).expect("trace 2 kept").len(), 1);
        assert_eq!(store.get(3).expect("trace 3 kept").len(), 1);

        // Appending to a *held* trace never evicts.
        store.record(span(2, 21, Some(20), 0.1, 0.9));
        assert_eq!(store.evicted(), 1);
        assert_eq!(store.get(2).expect("trace 2 kept").len(), 2);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let store = SpanStore::new(0);
        store.record(span(1, 1, None, 0.0, 1.0));
        assert!(store.is_empty());
        assert_eq!(store.evicted(), 1);
        assert!(store.get(1).is_none());
    }

    #[test]
    fn trace_id_hex_round_trips() {
        let id = 0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10u128;
        let hex = format_trace_id(id);
        assert_eq!(hex, "0102030405060708090a0b0c0d0e0f10");
        assert_eq!(parse_trace_id(&hex), Some(id));
        assert_eq!(parse_trace_id("0102"), None, "short ids rejected");
        assert_eq!(
            parse_trace_id("zz02030405060708090a0b0c0d0e0f10"),
            None,
            "non-hex rejected"
        );
    }

    #[test]
    fn well_formed_tree_has_no_violations() {
        let spans = vec![
            span(1, 1, None, 0.0, 10.0),
            span(1, 2, Some(1), 0.0, 4.0),
            span(1, 3, Some(1), 4.0, 10.0),
            span(1, 4, Some(3), 4.0, 6.0),
        ];
        assert!(tree_violations(&spans).is_empty());
    }

    #[test]
    fn violations_are_detected() {
        let inverted = vec![span(1, 1, None, 5.0, 1.0)];
        assert_eq!(tree_violations(&inverted).len(), 1);

        let dangling = vec![span(1, 1, Some(99), 0.0, 1.0)];
        assert!(tree_violations(&dangling)
            .iter()
            .any(|v| v.contains("missing parent")));

        let escaping = vec![span(1, 1, None, 2.0, 3.0), span(1, 2, Some(1), 0.0, 5.0)];
        assert!(tree_violations(&escaping)
            .iter()
            .any(|v| v.contains("escapes parent")));

        let mut duplicate = vec![span(1, 7, None, 0.0, 1.0)];
        duplicate.push(span(1, 7, None, 0.0, 1.0));
        assert!(tree_violations(&duplicate)
            .iter()
            .any(|v| v.contains("duplicate span id")));

        let cyclic = vec![span(1, 1, Some(2), 0.0, 1.0), span(1, 2, Some(1), 0.0, 1.0)];
        assert!(tree_violations(&cyclic)
            .iter()
            .any(|v| v.contains("parent cycle")));
    }
}
