//! Per-thread CPU-time clocks without `libc`: raw `clock_gettime(2)`.
//!
//! The profiler needs two readings the standard library does not expose:
//! the calling thread's own CPU time (`CLOCK_THREAD_CPUTIME_ID`) and the
//! CPU time of *another* thread identified by its kernel tid (Linux's
//! dynamic per-thread clockids). The offline workspace has no crates.io
//! access, so — exactly like the mmap shim in `vlite-store` — this module
//! issues the raw syscalls itself on Linux x86_64/aarch64 and degrades to
//! "no reading" everywhere else. Callers treat a zero/`None` reading as
//! "CPU time unavailable", never as an error.
//!
//! CPU-time clocks are *real* even when the serving runtime runs on a
//! `VirtualClock`: virtual time pins wall-clock determinism while the CPU
//! clock keeps counting actual cycles burned, which is exactly the
//! wall-vs-CPU split the per-stage profile reports.

/// The calling thread's consumed CPU time in nanoseconds, or `0` when the
/// platform offers no thread CPU clock (non-Linux targets, or a failed
/// syscall). Monotone non-decreasing within one thread.
pub fn self_cpu_nanos() -> u64 {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        sys::self_cpu_nanos().unwrap_or(0)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        0
    }
}

/// The calling thread's kernel thread id, for registering with a sampler
/// that reads its CPU clock from outside. `None` where unsupported.
pub fn current_tid() -> Option<u32> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        sys::current_tid()
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        None
    }
}

/// CPU time consumed by the thread with kernel id `tid`, in nanoseconds.
/// `None` where unsupported or once the thread has exited (the dynamic
/// clockid stops resolving) — samplers skip such workers.
pub fn thread_cpu_nanos(tid: u32) -> Option<u64> {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    {
        sys::thread_cpu_nanos(tid)
    }
    #[cfg(not(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    )))]
    {
        let _ = tid;
        None
    }
}

/// Whether this platform reports thread CPU time at all.
pub fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

/// Raw Linux syscalls — this crate's entire unsafe surface.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
mod sys {
    #[cfg(target_arch = "x86_64")]
    const SYS_CLOCK_GETTIME: usize = 228;
    #[cfg(target_arch = "x86_64")]
    const SYS_GETTID: usize = 186;
    #[cfg(target_arch = "aarch64")]
    const SYS_CLOCK_GETTIME: usize = 113;
    #[cfg(target_arch = "aarch64")]
    const SYS_GETTID: usize = 178;

    /// The calling thread's own CPU-time clock (`<time.h>`'s
    /// `CLOCK_THREAD_CPUTIME_ID`).
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    /// `struct timespec` as `clock_gettime(2)` fills it on 64-bit Linux.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    pub fn self_cpu_nanos() -> Option<u64> {
        clock_nanos(CLOCK_THREAD_CPUTIME_ID)
    }

    pub fn thread_cpu_nanos(tid: u32) -> Option<u64> {
        // Linux encodes "thread `tid`'s scheduler CPU clock" as a dynamic
        // clockid: ((~tid) << 3) | CPUCLOCK_SCHED(2) | CPUCLOCK_PERTHREAD(4).
        #[allow(clippy::cast_possible_wrap)]
        let clockid = (!(tid as i32) << 3) | 6;
        clock_nanos(clockid)
    }

    pub fn current_tid() -> Option<u32> {
        // SAFETY: gettid(2) takes no arguments, writes nothing, and cannot
        // fault; it only returns the caller's kernel thread id.
        let ret = unsafe { syscall2(SYS_GETTID, 0, 0) };
        let signed = ret as isize;
        if signed < 0 {
            return None;
        }
        u32::try_from(ret).ok()
    }

    fn clock_nanos(clockid: i32) -> Option<u64> {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: clock_gettime(2) writes exactly one Timespec through the
        // second argument, which points at a live stack value of that exact
        // layout; the clockid is data, not memory.
        let ret = unsafe {
            syscall2(
                SYS_CLOCK_GETTIME,
                clockid as isize as usize,
                std::ptr::addr_of_mut!(ts) as usize,
            )
        };
        let signed = ret as isize;
        // The kernel reports errors as -errno in [-4095, -1] (e.g. EINVAL
        // once the target thread has exited and its clockid stops
        // resolving).
        if (-4095..0).contains(&signed) {
            return None;
        }
        #[allow(clippy::cast_sign_loss)]
        Some(ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64)
    }

    /// One two-argument Linux syscall.
    ///
    /// # Safety
    ///
    /// The caller must pass a valid syscall number and arguments satisfying
    /// that syscall's contract.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall2(n: usize, a: usize, b: usize) -> usize {
        let ret;
        // SAFETY: the x86_64 Linux syscall ABI — number in rax, args in
        // rdi/rsi, rcx/r11 clobbered, result in rax.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// One two-argument Linux syscall.
    ///
    /// # Safety
    ///
    /// The caller must pass a valid syscall number and arguments satisfying
    /// that syscall's contract.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall2(n: usize, a: usize, b: usize) -> usize {
        let ret;
        // SAFETY: the aarch64 Linux syscall ABI — number in x8, args in
        // x0/x1, result in x0.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Burns CPU until the return value depends on real work (prevents the
    /// loop being optimised out).
    fn burn(iterations: u64) -> u64 {
        let mut acc = 0x9e37_79b9u64;
        for i in 0..iterations {
            acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
        }
        acc
    }

    #[test]
    fn self_cpu_time_is_monotone_and_advances_with_work() {
        if !supported() {
            assert_eq!(self_cpu_nanos(), 0);
            return;
        }
        let before = self_cpu_nanos();
        let sink = burn(2_000_000);
        let after = self_cpu_nanos();
        assert!(sink != 0, "burn must not be optimised away");
        assert!(after >= before, "thread CPU time must be monotone");
        assert!(
            after > before,
            "2M multiply-adds must consume measurable CPU time ({before} -> {after})"
        );
    }

    #[test]
    fn own_tid_resolves_through_the_dynamic_clockid() {
        if !supported() {
            assert!(current_tid().is_none());
            return;
        }
        let tid = current_tid().expect("linux reports a tid");
        let sink = burn(500_000);
        assert!(sink != 0);
        let via_tid = thread_cpu_nanos(tid).expect("own tid resolves");
        let direct = self_cpu_nanos();
        // Both clocks observe the same thread; the direct reading was taken
        // after, so it can only be ahead.
        assert!(
            direct + 1_000_000 >= via_tid,
            "direct {direct} vs via-tid {via_tid}"
        );
        assert!(via_tid > 0, "the dynamic clockid must report consumed CPU");
    }

    #[test]
    fn another_threads_clock_is_readable_while_it_runs() {
        if !supported() {
            return;
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        let worker = std::thread::spawn(move || {
            tx.send(current_tid().expect("worker tid")).expect("send");
            let sink = burn(2_000_000);
            done_rx.recv().expect("release");
            sink
        });
        let tid = rx.recv().expect("worker reports its tid");
        // The worker is alive (blocked on done_rx), so its clock resolves.
        let reading = thread_cpu_nanos(tid);
        assert!(reading.is_some(), "a live thread's CPU clock must resolve");
        done_tx.send(()).expect("release worker");
        assert!(worker.join().expect("worker joins") != 0);
    }
}
