//! Latency statistics, SLO-attainment accounting and result rendering.
//!
//! This crate is the measurement substrate shared by every experiment in the
//! VectorLiteRAG reproduction. It provides:
//!
//! - [`LatencyRecorder`] — an exact-sample recorder with percentile queries,
//!   used for TTFT / end-to-end latency distributions.
//! - [`SloTracker`] — per-request SLO bookkeeping producing attainment rates.
//! - [`Series`] and [`Table`] — lightweight result containers that render to
//!   aligned text tables and CSV, mirroring the paper's figure series.
//! - [`Summary`] — mean/min/max/percentile digest of a sample set.
//! - [`obs`] — lock-free always-on instruments (sharded [`obs::Counter`]s,
//!   [`obs::Gauge`]s, log-bucketed [`obs::StreamingHistogram`]s) for
//!   hot-path telemetry that must never take a global lock.
//! - [`spans`] — span-tree primitives for causal request tracing: the
//!   bounded [`spans::SpanStore`] and the [`spans::tree_violations`]
//!   well-formedness checker.
//! - [`cputime`] — per-thread CPU-time clocks (raw `clock_gettime(2)` on
//!   Linux, graceful zero elsewhere) backing the per-stage profiler.
//!
//! # Examples
//!
//! ```
//! use vlite_metrics::LatencyRecorder;
//!
//! let mut rec = LatencyRecorder::new();
//! for ms in [1.0, 2.0, 3.0, 4.0, 100.0] {
//!     rec.record(ms / 1e3);
//! }
//! assert_eq!(rec.len(), 5);
//! assert!(rec.percentile(0.5) >= 0.002 && rec.percentile(0.5) <= 0.004);
//! ```

// `deny` (not `forbid`) so `cputime` can open its audited raw-syscall
// shim with a module-local `#[allow(unsafe_code)]`, mirroring the mmap
// shim in `vlite-store`; every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cputime;
pub mod obs;
mod recorder;
mod series;
mod slo;
pub mod spans;
mod summary;
mod table;

pub use recorder::LatencyRecorder;
pub use series::{Series, SeriesPoint};
pub use slo::{SloOutcome, SloTracker};
pub use summary::Summary;
pub use table::Table;

/// Formats a duration in seconds with an adaptive unit (ns/µs/ms/s).
///
/// # Examples
///
/// ```
/// assert_eq!(vlite_metrics::fmt_seconds(0.000_25), "250.0µs");
/// assert_eq!(vlite_metrics::fmt_seconds(1.5), "1.500s");
/// ```
pub fn fmt_seconds(secs: f64) -> String {
    if !secs.is_finite() {
        return format!("{secs}");
    }
    let abs = secs.abs();
    if abs >= 1.0 {
        format!("{secs:.3}s")
    } else if abs >= 1e-3 {
        format!("{:.1}ms", secs * 1e3)
    } else if abs >= 1e-6 {
        format!("{:.1}µs", secs * 1e6)
    } else {
        format!("{:.0}ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_seconds_covers_all_units() {
        assert_eq!(fmt_seconds(2.0), "2.000s");
        assert_eq!(fmt_seconds(0.128), "128.0ms");
        assert_eq!(fmt_seconds(0.000_128), "128.0µs");
        assert_eq!(fmt_seconds(0.000_000_128), "128ns");
    }

    #[test]
    fn fmt_seconds_non_finite_passthrough() {
        assert_eq!(fmt_seconds(f64::INFINITY), "inf");
    }
}
