//! Exact-sample latency recorder with percentile queries.

use crate::Summary;

/// Records latency samples (in seconds) and answers percentile queries.
///
/// The recorder keeps exact samples; experiments in this repository record at
/// most a few hundred thousand samples per run, so exactness is affordable
/// and avoids histogram-bucket error in tail percentiles, which the paper's
/// P90/P95 plots are sensitive to.
///
/// Percentile queries sort lazily and cache the sorted order until the next
/// mutation.
///
/// # Examples
///
/// ```
/// let mut rec = vlite_metrics::LatencyRecorder::new();
/// rec.record(0.010);
/// rec.record(0.020);
/// assert_eq!(rec.max(), 0.020);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
    sorted: bool,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Records one sample, in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is not finite or is negative: a latency sample
    /// that is NaN/∞/negative always indicates a bug in the experiment
    /// harness, and poisoning percentiles silently would corrupt results.
    pub fn record(&mut self, seconds: f64) {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "latency sample must be finite and non-negative, got {seconds}"
        );
        self.samples.push(seconds);
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Removes all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
            self.sorted = true;
        }
    }

    /// Returns the `q`-quantile (`q` in `[0, 1]`) using nearest-rank
    /// interpolation, or `0.0` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&mut self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = (q * (n as f64 - 1.0)).round() as usize;
        self.samples[rank.min(n - 1)]
    }

    /// Arithmetic mean of the samples, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Largest sample, or `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Smallest sample, or `0.0` when empty.
    pub fn min(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
            .min(self.max())
    }

    /// Fraction of samples at or below `bound`, i.e. the empirical CDF —
    /// this is exactly the "SLO attainment" metric of the paper when `bound`
    /// is the latency target.
    pub fn fraction_within(&self, bound: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let within = self.samples.iter().filter(|&&s| s <= bound).count();
        within as f64 / self.samples.len() as f64
    }

    /// Produces a [`Summary`] digest (mean, min, max, P50/P90/P95/P99).
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.len(),
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
        }
    }

    /// Immutable view of the raw samples (unspecified order).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl Extend<f64> for LatencyRecorder {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for s in iter {
            self.record(s);
        }
    }
}

impl FromIterator<f64> for LatencyRecorder {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut rec = Self::new();
        rec.extend(iter);
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_is_zeroed() {
        let mut rec = LatencyRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.percentile(0.9), 0.0);
        assert_eq!(rec.mean(), 0.0);
        assert_eq!(rec.fraction_within(1.0), 0.0);
    }

    #[test]
    fn percentiles_are_order_invariant() {
        let mut a: LatencyRecorder = (1..=100).map(|i| i as f64).collect();
        let mut b: LatencyRecorder = (1..=100).rev().map(|i| i as f64).collect();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 1.0] {
            assert_eq!(a.percentile(q), b.percentile(q));
        }
    }

    #[test]
    fn p50_of_uniform_ramp() {
        let mut rec: LatencyRecorder = (0..1001).map(|i| i as f64 / 1000.0).collect();
        assert!((rec.percentile(0.5) - 0.5).abs() < 1e-9);
        assert_eq!(rec.percentile(0.0), 0.0);
        assert_eq!(rec.percentile(1.0), 1.0);
    }

    #[test]
    fn fraction_within_matches_manual_count() {
        let rec: LatencyRecorder = vec![0.1, 0.2, 0.3, 0.4].into_iter().collect();
        assert_eq!(rec.fraction_within(0.25), 0.5);
        assert_eq!(rec.fraction_within(0.4), 1.0);
        assert_eq!(rec.fraction_within(0.05), 0.0);
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut rec = LatencyRecorder::new();
        rec.record(5.0);
        assert_eq!(rec.percentile(0.5), 5.0);
        rec.record(1.0);
        assert_eq!(rec.percentile(0.0), 1.0);
        rec.record(3.0);
        assert_eq!(rec.percentile(0.5), 3.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_sample_rejected() {
        LatencyRecorder::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_rejected() {
        let mut rec: LatencyRecorder = vec![1.0].into_iter().collect();
        rec.percentile(1.5);
    }

    #[test]
    fn summary_digest_is_consistent() {
        let mut rec: LatencyRecorder = (1..=10).map(|i| i as f64).collect();
        let s = rec.summary();
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert!((s.mean - 5.5).abs() < 1e-12);
    }
}
