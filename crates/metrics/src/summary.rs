//! Digest of a latency sample set.

use serde::{Deserialize, Serialize};

use crate::fmt_seconds;

/// Compact digest of a sample distribution, all values in seconds.
///
/// Produced by [`LatencyRecorder::summary`](crate::LatencyRecorder::summary).
///
/// # Examples
///
/// ```
/// let mut rec: vlite_metrics::LatencyRecorder = vec![0.1, 0.2].into_iter().collect();
/// let summary = rec.summary();
/// assert_eq!(summary.count, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p90={} p95={} p99={} max={}",
            self.count,
            fmt_seconds(self.mean),
            fmt_seconds(self.p50),
            fmt_seconds(self.p90),
            fmt_seconds(self.p95),
            fmt_seconds(self.p99),
            fmt_seconds(self.max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_contains_count() {
        let s = Summary {
            count: 3,
            ..Default::default()
        };
        let rendered = format!("{s}");
        assert!(rendered.contains("n=3"));
    }
}
