//! Lock-free telemetry instruments: sharded counters, gauges, and
//! log-bucketed streaming histograms.
//!
//! The exact-sample [`LatencyRecorder`](crate::LatencyRecorder) answers
//! percentile queries precisely but needs a `&mut` (and, in a concurrent
//! runtime, a mutex around it) plus a sort per snapshot. The instruments
//! here are the always-on counterparts: every recording is a handful of
//! relaxed atomic operations, memory is bounded regardless of sample
//! count, and live percentile queries walk `O(buckets)` — so hot-path
//! threads (dispatchers, shard workers, generation workers) can record
//! without ever taking a global lock, and a scrape endpoint can read
//! while they write.
//!
//! - [`Counter`] — a monotonic counter sharded across cache-line-padded
//!   atomic cells, so concurrent writers on different threads do not
//!   contend on one line.
//! - [`Gauge`] — a single last-write-wins `f64` cell.
//! - [`StreamingHistogram`] — log-spaced buckets
//!   ([`SUB_BUCKETS_PER_OCTAVE`] per power of two) over
//!   `[1ns, ~1100s]` with underflow/overflow buckets; percentile queries
//!   return a bucket upper bound, so the relative error against the exact
//!   sample is at most [`StreamingHistogram::relative_error_bound`]
//!   (`2^(1/B) − 1`, ≈ 9.05% at `B = 8`). Histograms merge associatively,
//!   so per-thread shards can be folded into one digest.
//!
//! # Examples
//!
//! ```
//! use vlite_metrics::obs::StreamingHistogram;
//!
//! let h = StreamingHistogram::new();
//! for ms in [1.0, 2.0, 3.0, 4.0, 100.0] {
//!     h.record(ms / 1e3); // &self: no lock, no &mut
//! }
//! assert_eq!(h.count(), 5);
//! let p50 = h.percentile(0.5);
//! let err = StreamingHistogram::relative_error_bound();
//! assert!(p50 >= 0.003 && p50 <= 0.003 * (1.0 + err) + 1e-12);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shards per [`Counter`]; a power of two so shard selection is a mask.
const COUNTER_SHARDS: usize = 16;

/// One cache line per cell, so two threads bumping different shards never
/// share a line.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// A small dense per-thread shard index (first-use registration order),
/// used to spread counter increments across cells.
fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        // relaxed: fresh-id allocation; each thread only needs a distinct
        // value, no ordering with other memory.
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SHARD.with(|s| *s)
}

/// A monotonic counter sharded across cache-line-padded atomic cells.
///
/// [`Counter::add`] touches exactly one relaxed atomic in the calling
/// thread's shard; [`Counter::get`] sums the shards. Reads concurrent with
/// writes see a value that is always ≤ the true total at return time and
/// ≥ the total at call time (the usual monotonic-counter guarantee).
#[derive(Debug, Default)]
pub struct Counter {
    cells: [PaddedCell; COUNTER_SHARDS],
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter (relaxed; never blocks).
    pub fn add(&self, n: u64) {
        // relaxed: monotone stat shard; get() tolerates in-flight bumps.
        self.cells[thread_shard() & (COUNTER_SHARDS - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        // relaxed: the documented monotonic-counter read guarantee needs
        // no cross-shard ordering.
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-write-wins `f64` gauge (one atomic cell, bit-cast).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A gauge at `0.0`.
    pub fn new() -> Self {
        Self {
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        // relaxed: last-write-wins gauge; any published value is complete.
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Reads the gauge.
    pub fn get(&self) -> f64 {
        // relaxed: reads one complete bit-cast word; staleness is fine.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Sub-buckets per octave (power of two) of [`StreamingHistogram`]. Eight
/// sub-buckets bound the relative percentile error at `2^(1/8) − 1`
/// ≈ 9.05% while keeping the whole histogram ~2.5 KiB.
pub const SUB_BUCKETS_PER_OCTAVE: usize = 8;

/// Octaves covered above the 1ns floor: `2^40` ns ≈ 1100 s, far past any
/// latency this runtime can observe; larger samples land in the overflow
/// bucket (whose percentile answer is the exact tracked maximum).
const OCTAVES: usize = 40;

/// Log buckets between the underflow and overflow buckets.
const N_LOG_BUCKETS: usize = SUB_BUCKETS_PER_OCTAVE * OCTAVES;

/// Total buckets: underflow (index 0), the log buckets, overflow (last).
const N_BUCKETS: usize = N_LOG_BUCKETS + 2;

/// The histogram floor in seconds (1 ns): samples at or below it share
/// the underflow bucket, whose reported bound is the floor itself.
const FLOOR_SECONDS: f64 = 1e-9;

/// A bounded-memory streaming histogram over log-spaced latency buckets.
///
/// Recording is a few relaxed atomic adds (`&self`, no lock); percentile
/// queries snapshot the bucket array and walk it in `O(buckets)`. Bucket
/// `i` (for `1 ≤ i ≤ N`) holds samples in
/// `(floor·2^((i−1)/B), floor·2^(i/B)]`, so the upper bound a percentile
/// query returns exceeds the exact sample by at most a factor `2^(1/B)`
/// — see [`StreamingHistogram::relative_error_bound`].
///
/// Histograms with the same (compile-time) geometry merge associatively
/// via [`StreamingHistogram::merge_from`].
#[derive(Debug)]
pub struct StreamingHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Total of all samples, in nanoseconds (saturating).
    sum_nanos: AtomicU64,
    /// Largest sample, in nanoseconds.
    max_nanos: AtomicU64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..N_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// The worst-case relative error of a percentile answer against the
    /// exact sample at that rank: `2^(1/B) − 1` for
    /// `B = `[`SUB_BUCKETS_PER_OCTAVE`]. (Samples at or below the 1ns
    /// floor carry up to 1ns of absolute error instead.)
    pub fn relative_error_bound() -> f64 {
        2f64.powf(1.0 / SUB_BUCKETS_PER_OCTAVE as f64) - 1.0
    }

    /// The bucket a sample of `seconds` lands in.
    fn bucket_index(seconds: f64) -> usize {
        if seconds.is_nan() || seconds <= FLOOR_SECONDS {
            // ≤ floor, zero, or NaN (defensively): the underflow bucket.
            return 0;
        }
        let octaves = (seconds / FLOOR_SECONDS).log2();
        let idx = (octaves * SUB_BUCKETS_PER_OCTAVE as f64).ceil() as usize;
        // `ceil` of a tiny positive value can still round to 0.
        idx.clamp(1, N_BUCKETS - 1)
    }

    /// The upper bound (seconds) of bucket `i`; the overflow bucket has no
    /// finite bound and reports the tracked maximum instead.
    fn bucket_bound(i: usize) -> f64 {
        if i == 0 {
            FLOOR_SECONDS
        } else {
            FLOOR_SECONDS * 2f64.powf(i as f64 / SUB_BUCKETS_PER_OCTAVE as f64)
        }
    }

    /// Records one sample, in seconds. Negative and non-finite samples are
    /// clamped into the underflow/overflow buckets rather than panicking:
    /// this is an always-on observability path, not an experiment harness.
    pub fn record(&self, seconds: f64) {
        let s = if seconds.is_finite() {
            seconds.max(0.0)
        } else {
            f64::INFINITY
        };
        let idx = if s.is_finite() {
            Self::bucket_index(s)
        } else {
            N_BUCKETS - 1
        };
        let nanos = if s.is_finite() {
            (s * 1e9).round().min(u64::MAX as f64) as u64
        } else {
            u64::MAX
        };
        // relaxed: each field is an independent tally; readers tolerate a
        // bucket/count/sum triple that tears across concurrent records.
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum: one pathological sample must not wrap the total.
        let mut prev = self.sum_nanos.load(Ordering::Relaxed);
        loop {
            let next = prev.saturating_add(nanos);
            // relaxed: the CAS only needs atomicity of this one word; the
            // sum orders nothing else.
            match self.sum_nanos.compare_exchange_weak(
                prev,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => prev = actual,
            }
        }
        // relaxed: single-word running maximum, same tally discipline.
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        // relaxed: monotone tally read; staleness is acceptable.
        self.count.load(Ordering::Relaxed)
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Total of all samples, in seconds (saturating at ~584 years).
    pub fn sum_seconds(&self) -> f64 {
        // relaxed: monotone tally read; staleness is acceptable.
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Largest recorded sample, in seconds (`0.0` when empty).
    pub fn max_seconds(&self) -> f64 {
        // relaxed: monotone running-max read; staleness is acceptable.
        let nanos = self.max_nanos.load(Ordering::Relaxed);
        if nanos == u64::MAX {
            f64::INFINITY
        } else {
            nanos as f64 / 1e9
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`) by nearest rank over a snapshot
    /// of the buckets, or `0.0` when empty. The answer is the containing
    /// bucket's upper bound (the tracked maximum for the overflow bucket),
    /// so it errs high by at most
    /// [`relative_error_bound`](Self::relative_error_bound).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        // relaxed: the percentile is already approximate; a snapshot that
        // tears across buckets shifts the answer by at most the in-flight
        // samples, which the error bound documents.
        let snapshot: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q * (total as f64 - 1.0)).round() as u64;
        let mut cumulative = 0u64;
        for (i, &n) in snapshot.iter().enumerate() {
            cumulative += n;
            if cumulative > rank {
                return if i == N_BUCKETS - 1 {
                    self.max_seconds()
                } else {
                    Self::bucket_bound(i)
                };
            }
        }
        self.max_seconds()
    }

    /// Folds another histogram into this one (bucket-wise addition).
    /// Merging is commutative and associative up to the saturating sum, so
    /// per-thread shards can be reduced in any grouping.
    pub fn merge_from(&self, other: &StreamingHistogram) {
        // relaxed: bucket-wise tally fold; both sides tolerate in-flight
        // records, so no ordering relates the fields.
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        // relaxed: as above — independent tallies.
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let other_sum = other.sum_nanos.load(Ordering::Relaxed);
        let mut prev = self.sum_nanos.load(Ordering::Relaxed);
        loop {
            let next = prev.saturating_add(other_sum);
            // relaxed: single-word saturating-sum CAS, as in record().
            match self.sum_nanos.compare_exchange_weak(
                prev,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => prev = actual,
            }
        }
        // relaxed: single-word running maximum, same tally discipline.
        self.max_nanos
            .fetch_max(other.max_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Snapshot of the non-empty buckets as `(upper_bound_seconds,
    /// cumulative_count)` pairs in ascending bound order — exactly the
    /// shape a Prometheus histogram exposition needs (the caller appends
    /// the `+Inf` row from [`count`](Self::count)). Overflow samples are
    /// only in the final `+Inf` row, not in any finite bound.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate().take(N_BUCKETS - 1) {
            // relaxed: exposition snapshot; tolerates in-flight records.
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                cumulative += n;
                out.push((Self::bucket_bound(i), cumulative));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_shards() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(2.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = StreamingHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), 0.0);
        assert_eq!(h.sum_seconds(), 0.0);
        assert_eq!(h.max_seconds(), 0.0);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn percentile_answers_err_high_within_the_bound() {
        let h = StreamingHistogram::new();
        let samples = [0.0001, 0.0005, 0.001, 0.002, 0.01, 0.05, 0.2, 1.0];
        for &s in &samples {
            h.record(s);
        }
        let err = StreamingHistogram::relative_error_bound();
        // Nearest rank: round(q * (n-1)) over the sorted samples, matching
        // LatencyRecorder — so p50 of 8 samples is index 4, not 3.
        for (q, exact) in [(0.0, 0.0001), (0.5, 0.01), (1.0, 1.0)] {
            let answer = h.percentile(q);
            assert!(
                answer >= exact * (1.0 - 1e-12),
                "p{q} answered {answer} below exact {exact}"
            );
            assert!(
                answer <= exact * (1.0 + err) * (1.0 + 1e-12),
                "p{q} answered {answer}, more than {err:.4} above exact {exact}"
            );
        }
    }

    #[test]
    fn zero_and_subfloor_samples_share_the_underflow_bucket() {
        let h = StreamingHistogram::new();
        h.record(0.0);
        h.record(1e-12);
        assert_eq!(h.count(), 2);
        assert_eq!(h.percentile(1.0), 1e-9);
    }

    #[test]
    fn pathological_samples_are_clamped_not_panicked() {
        let h = StreamingHistogram::new();
        h.record(-3.0); // clamped to underflow
        h.record(f64::INFINITY); // overflow bucket
        h.record(f64::NAN); // overflow bucket (non-finite)
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.0), 1e-9);
    }

    #[test]
    fn overflow_percentile_reports_the_tracked_maximum() {
        let h = StreamingHistogram::new();
        h.record(5_000.0); // past the 2^40ns range
        assert_eq!(h.percentile(1.0), 5_000.0);
        // Overflow samples never appear under a finite bucket bound.
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn merge_adds_counts_and_keeps_the_max() {
        let (a, b) = (StreamingHistogram::new(), StreamingHistogram::new());
        a.record(0.001);
        b.record(0.1);
        b.record(0.2);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert!((a.sum_seconds() - 0.301).abs() < 1e-9);
        assert!((a.max_seconds() - 0.2).abs() < 1e-12);
        let p0 = a.percentile(0.0);
        assert!((0.001..=0.001 * 1.1).contains(&p0));
    }

    #[test]
    fn cumulative_buckets_are_monotonic_and_end_at_count() {
        let h = StreamingHistogram::new();
        for i in 1..=100 {
            h.record(i as f64 / 1_000.0);
        }
        let rows = h.cumulative_buckets();
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(rows.last().unwrap().1, 100);
    }
}
