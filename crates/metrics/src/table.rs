//! Aligned text tables and CSV rendering for experiment output.

/// A simple column-aligned table used by the figure/table harnesses to print
/// paper-style rows.
///
/// # Examples
///
/// ```
/// let mut t = vlite_metrics::Table::new(vec!["SLO (ms)", "Index (GB)"]);
/// t.row(vec!["100".into(), "3.80".into()]);
/// let text = t.render();
/// assert!(text.contains("SLO (ms)"));
/// assert!(text.contains("3.80"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width — a mismatch is
    /// always a harness bug and silently truncating would misalign results.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table with a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV.
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let text = t.render();
        let lines: Vec<_> = text.lines().collect();
        // Header line and data line start their second column at the same offset.
        let header_off = lines[0].find("long-header").unwrap();
        let data_off = lines[2].find('1').unwrap();
        assert_eq!(header_off, data_off);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(vec!["name", "v"]);
        t.row(vec!["a,b".into(), "1".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(vec!["h1", "h2"]);
        assert!(t.is_empty());
        assert!(t.render().contains("h1"));
    }
}
