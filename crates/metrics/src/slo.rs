//! Per-request SLO bookkeeping.

use serde::{Deserialize, Serialize};

/// Outcome of checking a single request against its SLO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SloOutcome {
    /// The request met its latency target.
    Met,
    /// The request violated its latency target.
    Violated,
}

/// Tracks SLO attainment over a stream of requests.
///
/// The paper's headline metric — "SLO attainment" (Figs. 11, 16, 17) — is the
/// fraction of requests whose TTFT falls within the combined target
/// `SLO_LLM + SLO_search`. This tracker also keeps the violation magnitudes
/// so harnesses can report how badly a configuration misses.
///
/// # Examples
///
/// ```
/// let mut slo = vlite_metrics::SloTracker::new(0.200);
/// slo.observe(0.150);
/// slo.observe(0.250);
/// assert_eq!(slo.attainment(), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct SloTracker {
    target: f64,
    met: usize,
    violated: usize,
    worst_violation: f64,
    violation_sum: f64,
}

impl SloTracker {
    /// Creates a tracker for the given latency target in seconds.
    ///
    /// # Panics
    ///
    /// Panics if `target_seconds` is not finite and positive.
    pub fn new(target_seconds: f64) -> Self {
        assert!(
            target_seconds.is_finite() && target_seconds > 0.0,
            "SLO target must be positive and finite, got {target_seconds}"
        );
        Self {
            target: target_seconds,
            met: 0,
            violated: 0,
            worst_violation: 0.0,
            violation_sum: 0.0,
        }
    }

    /// Latency target in seconds.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// Records one observed latency and returns whether it met the SLO.
    pub fn observe(&mut self, latency_seconds: f64) -> SloOutcome {
        if latency_seconds <= self.target {
            self.met += 1;
            SloOutcome::Met
        } else {
            self.violated += 1;
            let excess = latency_seconds - self.target;
            self.violation_sum += excess;
            if excess > self.worst_violation {
                self.worst_violation = excess;
            }
            SloOutcome::Violated
        }
    }

    /// Total observed requests.
    pub fn total(&self) -> usize {
        self.met + self.violated
    }

    /// Fraction of requests that met the SLO (`0.0` when no observations).
    pub fn attainment(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.met as f64 / total as f64
        }
    }

    /// Largest observed excess over the target, in seconds.
    pub fn worst_violation(&self) -> f64 {
        self.worst_violation
    }

    /// Mean excess over the target among violating requests, in seconds
    /// (`0.0` when there are no violations).
    pub fn mean_violation(&self) -> f64 {
        if self.violated == 0 {
            0.0
        } else {
            self.violation_sum / self.violated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attainment_counts_boundaries_as_met() {
        let mut slo = SloTracker::new(0.1);
        assert_eq!(slo.observe(0.1), SloOutcome::Met);
        assert_eq!(slo.attainment(), 1.0);
    }

    #[test]
    fn violation_statistics() {
        let mut slo = SloTracker::new(1.0);
        slo.observe(1.5);
        slo.observe(3.0);
        slo.observe(0.5);
        assert_eq!(slo.total(), 3);
        assert!((slo.attainment() - 1.0 / 3.0).abs() < 1e-12);
        assert!((slo.worst_violation() - 2.0).abs() < 1e-12);
        assert!((slo.mean_violation() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_reports_zero_attainment() {
        let slo = SloTracker::new(0.5);
        assert_eq!(slo.attainment(), 0.0);
        assert_eq!(slo.total(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_target_rejected() {
        SloTracker::new(0.0);
    }
}
