//! Named (x, y) series — the unit of a paper figure line.

use serde::{Deserialize, Serialize};

/// One point of a [`Series`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// X coordinate (e.g. arrival rate in requests/s, batch size, coverage).
    pub x: f64,
    /// Y coordinate (e.g. latency in seconds, attainment fraction).
    pub y: f64,
}

/// A named sequence of (x, y) points, corresponding to one line in a paper
/// figure (e.g. "vLiteRAG" in Fig. 11's Wiki-All/Llama3-8B panel).
///
/// # Examples
///
/// ```
/// let mut s = vlite_metrics::Series::new("CPU Only");
/// s.push(20.0, 0.95);
/// s.push(30.0, 0.40);
/// assert_eq!(s.len(), 2);
/// assert!(s.to_csv().starts_with("x,CPU Only"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    name: String,
    points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Display name of the series.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(SeriesPoint { x, y });
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Immutable view of the points.
    pub fn points(&self) -> &[SeriesPoint] {
        &self.points
    }

    /// The y value at the given x, if a point with exactly that x exists.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }

    /// Largest x for which `y` satisfies `pred`, scanning in x order.
    ///
    /// This is how "the SLO-compliant request-rate range" is extracted from
    /// an attainment curve: the last arrival rate at which attainment stays
    /// at or above the 90% threshold.
    pub fn last_x_where(&self, mut pred: impl FnMut(f64) -> bool) -> Option<f64> {
        let mut sorted: Vec<_> = self.points.clone();
        sorted.sort_by(|a, b| a.x.total_cmp(&b.x));
        let mut best = None;
        for p in sorted {
            if pred(p.y) {
                best = Some(p.x);
            } else {
                break;
            }
        }
        best
    }

    /// Renders the series as two-column CSV (`x,<name>`).
    pub fn to_csv(&self) -> String {
        let mut out = format!("x,{}\n", self.name);
        for p in &self.points {
            out.push_str(&format!("{},{}\n", p.x, p.y));
        }
        out
    }

    /// Merges several series sharing the same x grid into multi-column CSV.
    ///
    /// Points are matched by position, not by x value; series of different
    /// lengths are truncated to the shortest.
    pub fn merge_csv(series: &[Series]) -> String {
        if series.is_empty() {
            return String::new();
        }
        let mut out = String::from("x");
        for s in series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        let rows = series.iter().map(Series::len).min().unwrap_or(0);
        for i in 0..rows {
            out.push_str(&format!("{}", series[0].points[i].x));
            for s in series {
                out.push_str(&format!(",{}", s.points[i].y));
            }
            out.push('\n');
        }
        out
    }
}

impl Extend<(f64, f64)> for Series {
    fn extend<T: IntoIterator<Item = (f64, f64)>>(&mut self, iter: T) {
        for (x, y) in iter {
            self.push(x, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(name: &str) -> Series {
        let mut s = Series::new(name);
        s.extend([(1.0, 0.99), (2.0, 0.95), (3.0, 0.80), (4.0, 0.99)]);
        s
    }

    #[test]
    fn last_x_where_stops_at_first_failure() {
        let s = ramp("a");
        // attainment >= 0.9 holds at x=1,2 then breaks at 3; the recovery at
        // x=4 must not count (the paper reports contiguous compliant range).
        assert_eq!(s.last_x_where(|y| y >= 0.9), Some(2.0));
    }

    #[test]
    fn last_x_where_none_when_first_fails() {
        let s = ramp("a");
        assert_eq!(s.last_x_where(|y| y >= 0.995), None);
    }

    #[test]
    fn csv_round_trip_shape() {
        let s = ramp("sys");
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.lines().next().unwrap().contains("sys"));
    }

    #[test]
    fn merge_csv_truncates_to_shortest() {
        let a = ramp("a");
        let mut b = Series::new("b");
        b.extend([(1.0, 0.5), (2.0, 0.6)]);
        let csv = Series::merge_csv(&[a, b]);
        assert_eq!(csv.lines().count(), 3); // header + 2 rows
    }

    #[test]
    fn y_at_exact_match_only() {
        let s = ramp("a");
        assert_eq!(s.y_at(2.0), Some(0.95));
        assert_eq!(s.y_at(2.5), None);
    }
}
