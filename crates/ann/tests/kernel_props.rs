//! Kernel-equivalence properties and the dispatch self-report.
//!
//! These tests are the substance of CI's `kernels` matrix job: the suite
//! runs once with `VLITE_FORCE_SCALAR=1` (every dispatched call must hit
//! the scalar kernels) and once with native features (`RUSTFLAGS="-C
//! target-cpu=native"`, plus `VLITE_REQUIRE_SIMD=1` so this file *fails*
//! if a runner that supports SIMD did not actually exercise it — a
//! silently-rotten dispatcher cannot pass).
//!
//! Equivalence contract (documented in `vlite_ann::kernel`): SIMD
//! results match the scalar kernels bit-exactly wherever the operation
//! order admits no reassociation (empty inputs, length ≤ 1, the pure
//! scalar tail), and within the 1-ulp-per-accumulation envelope
//! `n · ε_f32 · Σ|termᵢ|` for the FMA-reassociated reductions.

use proptest::prelude::*;

use vlite_ann::kernel::{self, KernelKind};

/// The documented reassociation envelope, plus an absolute whisker so
/// all-zero inputs don't demand exact-zero agreement of `-0.0` vs `0.0`.
fn envelope(n: usize, abs_sum: f32) -> f32 {
    (n as f32) * f32::EPSILON * abs_sum + 1e-12
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dispatched dot matches the scalar reference within the envelope
    /// on arbitrary lengths (covering every unroll width and tail).
    #[test]
    fn dot_matches_scalar_within_envelope(
        a in prop::collection::vec(-8.0f32..8.0, 0..200),
        extra in 0usize..3,
    ) {
        let n = a.len();
        let b: Vec<f32> = (0..n).map(|i| ((i + extra) as f32 * 0.73).sin() * 4.0).collect();
        let table = kernel::kernels();
        let simd = (table.dot)(&a, &b);
        let scalar = kernel::scalar::dot(&a, &b);
        let abs_sum: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        prop_assert!(
            (simd - scalar).abs() <= envelope(n, abs_sum),
            "kind={:?} n={n} simd={simd} scalar={scalar}", table.kind
        );
    }

    /// Dispatched squared-L2 matches the scalar reference within the
    /// envelope (terms are non-negative, so Σ|terms| is the result).
    #[test]
    fn l2_matches_scalar_within_envelope(
        a in prop::collection::vec(-8.0f32..8.0, 0..200),
        extra in 0usize..3,
    ) {
        let n = a.len();
        let b: Vec<f32> = (0..n).map(|i| ((i + extra) as f32 * 0.41).cos() * 4.0).collect();
        let table = kernel::kernels();
        let simd = (table.l2_sq)(&a, &b);
        let scalar = kernel::scalar::l2_sq(&a, &b);
        prop_assert!(
            (simd - scalar).abs() <= envelope(n, scalar),
            "kind={:?} n={n} simd={simd} scalar={scalar}", table.kind
        );
    }

    /// Dispatched SQ8 LUT sum matches the scalar reference within the
    /// envelope over random tables and codes (gather-path coverage).
    #[test]
    fn sq8_lut_matches_scalar_within_envelope(
        raw_codes in prop::collection::vec(0u16..256, 0..70),
        scale in 0.001f32..2.0,
    ) {
        let codes: Vec<u8> = raw_codes.iter().map(|&c| c as u8).collect();
        let dim = codes.len();
        let table: Vec<f32> = (0..dim * 256)
            .map(|i| ((i % 131) as f32 - 40.0) * scale)
            .collect();
        let kern = kernel::kernels();
        let simd = (kern.sq8_lut_sum)(&table, &codes);
        let scalar = kernel::scalar::sq8_lut_sum(&table, &codes);
        let abs_sum: f32 = codes
            .iter()
            .enumerate()
            .map(|(j, &c)| table[j * 256 + usize::from(c)].abs())
            .sum();
        prop_assert!(
            (simd - scalar).abs() <= envelope(dim, abs_sum),
            "kind={:?} dim={dim} simd={simd} scalar={scalar}", kern.kind
        );
    }

    /// Where the op order admits no reassociation — length ≤ 1 — every
    /// kernel is bit-exact against scalar, not merely within a bound.
    #[test]
    fn length_le_one_is_bit_exact(x in -100.0f32..100.0, y in -100.0f32..100.0) {
        let table = kernel::kernels();
        prop_assert_eq!((table.dot)(&[], &[]).to_bits(), 0.0f32.to_bits());
        prop_assert_eq!(
            (table.dot)(&[x], &[y]).to_bits(),
            kernel::scalar::dot(&[x], &[y]).to_bits()
        );
        prop_assert_eq!(
            (table.l2_sq)(&[x], &[y]).to_bits(),
            kernel::scalar::l2_sq(&[x], &[y]).to_bits()
        );
        let lut: Vec<f32> = (0..256).map(|i| i as f32 * 0.5 - x).collect();
        prop_assert_eq!(
            (table.sq8_lut_sum)(&lut, &[129]).to_bits(),
            kernel::scalar::sq8_lut_sum(&lut, &[129]).to_bits()
        );
    }

    /// The scalar tail of a SIMD kernel runs the same arithmetic as the
    /// scalar kernel's tail: extending both inputs by one element past a
    /// full SIMD block changes both results by the bit-identical term.
    #[test]
    fn simd_tail_is_the_scalar_tail(tail_a in -4.0f32..4.0, tail_b in -4.0f32..4.0) {
        let table = kernel::kernels();
        let base: Vec<f32> = (0..16).map(|i| i as f32 * 0.25).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let whole_dot = (table.dot)(&a, &b);
        a.push(tail_a);
        b.push(tail_b);
        prop_assert_eq!(
            (table.dot)(&a, &b).to_bits(),
            (whole_dot + tail_a * tail_b).to_bits()
        );
    }
}

/// The only test that touches the process-global dispatch override: it
/// owns the whole force/clear lifecycle sequentially, then asserts the
/// self-report the CI matrix relies on. (The equivalence proptests above
/// stay correct under any concurrent override state — they compare
/// whatever table dispatch returns against the scalar module directly.)
#[test]
fn dispatch_overrides_and_self_report() {
    let env_scalar = std::env::var("VLITE_FORCE_SCALAR").map(|v| v == "1") == Ok(true);
    let default_kind = kernel::active();

    // Env semantics: VLITE_FORCE_SCALAR pins scalar, otherwise dispatch
    // follows one-time feature detection.
    if env_scalar {
        assert_eq!(
            default_kind,
            KernelKind::Scalar,
            "env override must pin scalar"
        );
    } else {
        assert_eq!(default_kind, kernel::detected());
    }

    // Runtime overrides (benchmark A/B hooks) take precedence over the
    // environment in both directions.
    kernel::force_scalar();
    assert_eq!(kernel::active(), KernelKind::Scalar);
    assert_eq!(kernel::kernels().kind, KernelKind::Scalar);
    kernel::force_native();
    assert_eq!(kernel::active(), kernel::detected());
    kernel::clear_force();
    assert_eq!(
        kernel::active(),
        default_kind,
        "clear_force restores env semantics"
    );

    // Self-report: resolving a table must tally under the active kind,
    // and the resolved table must agree with scalar on a smoke vector.
    let before = kernel::resolution_count(default_kind);
    let table = kernel::kernels();
    assert_eq!(table.kind, default_kind);
    assert!(kernel::resolution_count(default_kind) > before);
    let a: Vec<f32> = (0..33).map(|i| i as f32 * 0.1).collect();
    let diff = ((table.dot)(&a, &a) - kernel::scalar::dot(&a, &a)).abs();
    assert!(diff <= envelope(a.len(), (table.dot)(&a, &a).abs()));

    // The CI matrix's teeth: the native-feature job exports
    // VLITE_REQUIRE_SIMD=1, so a runner whose CPU supports a SIMD kernel
    // *fails* here if dispatch did not select it.
    if std::env::var("VLITE_REQUIRE_SIMD").map(|v| v == "1") == Ok(true) {
        assert_ne!(
            kernel::detected(),
            KernelKind::Scalar,
            "VLITE_REQUIRE_SIMD is set but this CPU detects no SIMD kernel — \
             run the forced-scalar lane instead"
        );
        assert_eq!(
            default_kind,
            kernel::detected(),
            "SIMD-capable runner dispatched scalar: the SIMD path was not exercised"
        );
    }
}
