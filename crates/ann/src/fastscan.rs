//! Register-blocked PQ scanning ("fast scan").
//!
//! Faiss's IVF-PQ fast-scan (André et al., VLDB 2016) reorganizes PQ codes
//! into fixed-size blocks, transposed subquantizer-major, and quantizes the
//! f32 lookup table to 8 bits so an entire block's partial distances fit in
//! SIMD registers. This module reproduces that *structure* in safe Rust:
//!
//! - codes are stored in blocks of [`FAST_SCAN_BLOCK`] vectors, contiguous
//!   per subquantizer, so the scan inner loop streams both the code bytes
//!   and one LUT row linearly;
//! - the f32 LUT is quantized to `u8` with a shared scale and per-table
//!   bias, accumulated in `u32`.
//!
//! The compiler auto-vectorizes the branch-free inner loop, capturing the
//! memory-layout advantage that makes fast scan outrun classic IVF-PQ
//! (paper Fig. 3 left) without hand-written intrinsics.

use crate::pq::Lut;
use crate::TopK;

/// Number of vectors per fast-scan block.
pub const FAST_SCAN_BLOCK: usize = 32;

/// An 8-bit quantized lookup table.
///
/// The approximate distance of a code is
/// `bias + scale · Σ_j table8[j][code_j]`, with per-entry rounding error at
/// most `scale / 2`.
#[derive(Debug, Clone)]
pub struct QuantizedLut {
    m: usize,
    ksub: usize,
    table: Vec<u8>,
    /// Multiplier from integer accumulator to f32 distance.
    pub scale: f32,
    /// Additive offset (sum of per-subquantizer minima).
    pub bias: f32,
}

impl QuantizedLut {
    /// Quantizes a full-precision LUT.
    pub fn from_lut(lut: &Lut) -> QuantizedLut {
        let (m, ksub) = (lut.m(), lut.ksub());
        let table = lut.table();
        let mut mins = vec![f32::INFINITY; m];
        let mut spread_max = 0.0f32;
        for j in 0..m {
            let row = &table[j * ksub..(j + 1) * ksub];
            let lo = row.iter().copied().fold(f32::INFINITY, f32::min);
            mins[j] = lo;
            let hi = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            spread_max = spread_max.max(hi - lo);
        }
        let bias: f32 = mins.iter().sum();
        let scale = if spread_max > 0.0 {
            spread_max / 255.0
        } else {
            1.0
        };
        let mut q = Vec::with_capacity(m * ksub);
        for j in 0..m {
            for c in 0..ksub {
                let v = (table[j * ksub + c] - mins[j]) / scale;
                q.push(v.round().clamp(0.0, 255.0) as u8);
            }
        }
        QuantizedLut {
            m,
            ksub,
            table: q,
            scale,
            bias,
        }
    }

    /// Number of subquantizers.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Worst-case absolute error versus the full-precision LUT distance.
    pub fn max_error(&self) -> f32 {
        self.m as f32 * self.scale / 2.0
    }

    #[inline]
    fn row(&self, j: usize) -> &[u8] {
        &self.table[j * self.ksub..(j + 1) * self.ksub]
    }
}

/// PQ codes for one inverted list, laid out in fast-scan blocks.
///
/// # Examples
///
/// ```
/// use vlite_ann::{FastScanList, PqConfig, ProductQuantizer, QuantizedLut, TopK, VecSet};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let data = VecSet::from_fn(300, 8, |_, _| rng.random::<f32>());
/// let pq = ProductQuantizer::train(&data, &PqConfig::new(4))?;
/// let ids: Vec<u64> = (0..300).collect();
/// let list = FastScanList::build(&pq.encode_batch(&data), pq.m(), &ids);
///
/// let qlut = QuantizedLut::from_lut(&pq.lut(data.get(0)));
/// let mut top = TopK::new(5);
/// list.scan(&qlut, &mut top);
/// assert_eq!(top.into_sorted()[0].id, 0);
/// # Ok::<(), vlite_ann::AnnError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FastScanList {
    m: usize,
    len: usize,
    ids: Vec<u64>,
    /// Blocked codes: for each block `b` and subquantizer `j`, the 32 code
    /// bytes of the block's vectors, zero-padded in the final block.
    blocks: Vec<u8>,
}

impl FastScanList {
    /// Builds the blocked layout from row-major codes (`len × m`) and ids.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != ids.len() * m`.
    pub fn build(codes: &[u8], m: usize, ids: &[u64]) -> FastScanList {
        assert_eq!(codes.len(), ids.len() * m, "codes/ids length mismatch");
        let len = ids.len();
        let nblocks = len.div_ceil(FAST_SCAN_BLOCK);
        let mut blocks = vec![0u8; nblocks * m * FAST_SCAN_BLOCK];
        for (i, code) in codes.chunks_exact(m).enumerate() {
            let b = i / FAST_SCAN_BLOCK;
            let lane = i % FAST_SCAN_BLOCK;
            for (j, &c) in code.iter().enumerate() {
                blocks[(b * m + j) * FAST_SCAN_BLOCK + lane] = c;
            }
        }
        FastScanList {
            m,
            len,
            ids: ids.to_vec(),
            blocks,
        }
    }

    /// Number of encoded vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of subquantizers.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Memory footprint of the blocked code storage in bytes.
    pub fn bytes(&self) -> usize {
        self.blocks.len() + self.ids.len() * std::mem::size_of::<u64>()
    }

    /// Recovers the row-major (`len × m`) code matrix by inverting the
    /// blocked transposition. Used when appending to a list forces a layout
    /// rebuild.
    pub fn to_codes(&self) -> Vec<u8> {
        let mut codes = vec![0u8; self.len * self.m];
        for i in 0..self.len {
            let b = i / FAST_SCAN_BLOCK;
            let lane = i % FAST_SCAN_BLOCK;
            for j in 0..self.m {
                codes[i * self.m + j] = self.blocks[(b * self.m + j) * FAST_SCAN_BLOCK + lane];
            }
        }
        codes
    }

    /// Scans the whole list against a quantized LUT, offering every vector
    /// to `top`. Returns the number of distance computations performed.
    pub fn scan(&self, lut: &QuantizedLut, top: &mut TopK) -> usize {
        debug_assert_eq!(lut.m(), self.m);
        let nblocks = self.len.div_ceil(FAST_SCAN_BLOCK);
        let mut acc = [0u32; FAST_SCAN_BLOCK];
        for b in 0..nblocks {
            acc.fill(0);
            for j in 0..self.m {
                let row = lut.row(j);
                let codes = &self.blocks[(b * self.m + j) * FAST_SCAN_BLOCK..][..FAST_SCAN_BLOCK];
                for lane in 0..FAST_SCAN_BLOCK {
                    // Branch-free gather; auto-vectorizes on x86-64.
                    acc[lane] += u32::from(row[codes[lane] as usize]);
                }
            }
            let base = b * FAST_SCAN_BLOCK;
            let lanes = FAST_SCAN_BLOCK.min(self.len - base);
            for (lane, &sum) in acc.iter().enumerate().take(lanes) {
                let dist = lut.bias + lut.scale * sum as f32;
                top.push(self.ids[base + lane], dist);
            }
        }
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PqConfig, ProductQuantizer, VecSet};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize) -> (VecSet, ProductQuantizer, FastScanList) {
        let mut rng = StdRng::seed_from_u64(11);
        // Train on a fixed-size corpus; the list under test holds its first
        // `n` rows (so tiny lists still get well-trained codebooks).
        let data = VecSet::from_fn(n.max(320), 8, |_, _| rng.random::<f32>());
        let cfg = PqConfig {
            m: 4,
            ksub: 16,
            train_iters: 6,
            seed: 5,
        };
        let pq = ProductQuantizer::train(&data, &cfg).unwrap();
        let subset = data.select(&(0..n).collect::<Vec<_>>());
        let ids: Vec<u64> = (0..n as u64).collect();
        let list = FastScanList::build(&pq.encode_batch(&subset), pq.m(), &ids);
        (data, pq, list)
    }

    #[test]
    fn quantized_scan_matches_exact_lut_within_bound() {
        let (data, pq, list) = setup(100);
        let lut = pq.lut(data.get(3));
        let qlut = QuantizedLut::from_lut(&lut);
        let mut top = TopK::new(100);
        list.scan(&qlut, &mut top);
        let results = top.into_sorted();
        assert_eq!(results.len(), 100);
        for n in &results {
            let exact = lut.distance(&pq.encode(data.get(n.id as usize)));
            assert!(
                (n.distance - exact).abs() <= qlut.max_error() + 1e-4,
                "id={} approx={} exact={} bound={}",
                n.id,
                n.distance,
                exact,
                qlut.max_error()
            );
        }
    }

    #[test]
    fn non_multiple_of_block_size_handled() {
        for n in [1, 31, 32, 33, 63, 65] {
            let (_, pq, list) = setup(n);
            assert_eq!(list.len(), n);
            let query: Vec<f32> = vec![0.5; 8];
            let qlut = QuantizedLut::from_lut(&pq.lut(&query));
            let mut top = TopK::new(n);
            let scanned = list.scan(&qlut, &mut top);
            assert_eq!(scanned, n);
            assert_eq!(
                top.into_sorted().len(),
                n,
                "padding lanes must not leak ids (n={n})"
            );
        }
    }

    #[test]
    fn top1_recall_is_high_despite_quantization() {
        let (data, pq, list) = setup(320);
        let mut hits = 0;
        for q in (0..320).step_by(16) {
            let lut = pq.lut(data.get(q));
            // Exact-LUT top-1.
            let mut exact_best = (0u64, f32::INFINITY);
            for i in 0..data.len() {
                let d = lut.distance(&pq.encode(data.get(i)));
                if d < exact_best.1 {
                    exact_best = (i as u64, d);
                }
            }
            let qlut = QuantizedLut::from_lut(&lut);
            let mut top = TopK::new(4);
            list.scan(&qlut, &mut top);
            if top.into_sorted().iter().any(|n| n.id == exact_best.0) {
                hits += 1;
            }
        }
        assert!(
            hits >= 18,
            "8-bit LUT quantization lost too much: {hits}/20"
        );
    }

    #[test]
    fn empty_list_scans_nothing() {
        let (_, pq, _) = setup(64);
        let list = FastScanList::build(&[], pq.m(), &[]);
        let qlut = QuantizedLut::from_lut(&pq.lut(&[0.0; 8]));
        let mut top = TopK::new(3);
        assert_eq!(list.scan(&qlut, &mut top), 0);
        assert!(top.is_empty());
    }

    #[test]
    fn bytes_accounts_blocks_and_ids() {
        let (_, _, list) = setup(33);
        // 33 vectors → 2 blocks × m=4 × 32 bytes of codes + 33 ids × 8 bytes.
        assert_eq!(list.bytes(), 2 * 4 * 32 + 33 * 8);
    }
}
