//! Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2018).
//!
//! The paper keeps coarse quantization on the CPU and notes it "is often
//! implemented using memory-intensive graph-based structures such as HNSW"
//! (§IV-A1). This module provides that coarse quantizer: a multi-layer
//! proximity graph with greedy descent through upper layers and beam search
//! (`ef`) at the base layer.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Metric, Neighbor, VecSet};

/// Configuration for [`Hnsw::build`].
#[derive(Debug, Clone, PartialEq)]
pub struct HnswConfig {
    /// Maximum out-degree per node on layers ≥ 1 (layer 0 allows `2m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Default beam width during search.
    pub ef_search: usize,
    /// Distance metric.
    pub metric: Metric,
    /// RNG seed for level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            metric: Metric::L2,
            seed: 0xb01d,
        }
    }
}

#[derive(Debug, Clone)]
struct HnswNode {
    /// `neighbors[l]` is the adjacency list on layer `l` (0 = base).
    neighbors: Vec<Vec<u32>>,
}

/// A built HNSW graph over a vector set.
///
/// # Examples
///
/// ```
/// use vlite_ann::{Hnsw, HnswConfig, VecSet};
///
/// let data = VecSet::from_fn(200, 2, |i, j| (i * 2 + j) as f32);
/// let hnsw = Hnsw::build(&data, &HnswConfig::default());
/// let hits = hnsw.search(data.get(42), 1, 32);
/// assert_eq!(hits[0].id, 42);
/// ```
#[derive(Debug, Clone)]
pub struct Hnsw {
    data: VecSet,
    nodes: Vec<HnswNode>,
    entry: u32,
    max_level: usize,
    metric: Metric,
    config: HnswConfig,
}

impl Hnsw {
    /// Builds a graph over `data` by sequential insertion.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `config.m == 0`.
    pub fn build(data: &VecSet, config: &HnswConfig) -> Hnsw {
        assert!(!data.is_empty(), "HNSW needs at least one vector");
        assert!(config.m > 0, "HNSW connectivity m must be >= 1");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let ml = 1.0 / (config.m as f64).ln().max(0.7);
        let mut hnsw = Hnsw {
            data: data.clone(),
            nodes: Vec::with_capacity(data.len()),
            entry: 0,
            max_level: 0,
            metric: config.metric,
            config: config.clone(),
        };
        for i in 0..data.len() {
            let u: f64 = rng.random::<f64>().max(1e-12);
            let level = ((-u.ln()) * ml).floor() as usize;
            hnsw.insert(i as u32, level);
        }
        hnsw
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty (never true for a built graph).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Approximate memory footprint of the graph edges in bytes — the
    /// overhead the paper cites as HNSW's weakness at scale.
    pub fn edge_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| n.neighbors.iter().map(|adj| adj.len() * 4).sum::<usize>())
            .sum()
    }

    fn dist(&self, a: &[f32], node: u32) -> f32 {
        self.metric.score(a, self.data.get(node as usize))
    }

    fn insert(&mut self, id: u32, level: usize) {
        let node = HnswNode {
            neighbors: vec![Vec::new(); level + 1],
        };
        self.nodes.push(node);
        if self.nodes.len() == 1 {
            self.entry = id;
            self.max_level = level;
            return;
        }
        let query = self.data.get(id as usize).to_vec();
        let mut current = self.entry;
        // Greedy descent through layers above the new node's level.
        for l in ((level + 1)..=self.max_level).rev() {
            current = self.greedy_step(&query, current, l);
        }
        // Beam-connect on each layer the node participates in.
        for l in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(&query, current, self.config.ef_construction, l);
            current = found.first().map_or(current, |n| n.id as u32);
            let max_degree = if l == 0 {
                2 * self.config.m
            } else {
                self.config.m
            };
            let selected: Vec<u32> = found
                .iter()
                .take(self.config.m)
                .map(|n| n.id as u32)
                .collect();
            self.nodes[id as usize].neighbors[l] = selected.clone();
            for &peer in &selected {
                let adj = &mut self.nodes[peer as usize].neighbors[l];
                adj.push(id);
                if adj.len() > max_degree {
                    // Prune to the max_degree closest neighbors of `peer`.
                    let peer_vec = self.data.get(peer as usize).to_vec();
                    let mut scored: Vec<(f32, u32)> = self.nodes[peer as usize].neighbors[l]
                        .iter()
                        .map(|&nb| (self.metric.score(&peer_vec, self.data.get(nb as usize)), nb))
                        .collect();
                    scored.sort_by(|a, b| a.0.total_cmp(&b.0));
                    scored.truncate(max_degree);
                    self.nodes[peer as usize].neighbors[l] =
                        scored.into_iter().map(|(_, nb)| nb).collect();
                }
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
    }

    fn greedy_step(&self, query: &[f32], start: u32, layer: usize) -> u32 {
        let mut current = start;
        let mut current_d = self.dist(query, current);
        loop {
            let mut improved = false;
            for &nb in &self.nodes[current as usize].neighbors[layer] {
                let d = self.dist(query, nb);
                if d < current_d {
                    current = nb;
                    current_d = d;
                    improved = true;
                }
            }
            if !improved {
                return current;
            }
        }
    }

    /// Beam search on one layer; returns up to `ef` closest nodes, sorted.
    fn search_layer(&self, query: &[f32], entry: u32, ef: usize, layer: usize) -> Vec<Neighbor> {
        let mut visited = vec![false; self.nodes.len()];
        visited[entry as usize] = true;
        let entry_d = self.dist(query, entry);
        // Min-heap of candidates to expand; max-heap of current results.
        let mut candidates = BinaryHeap::new();
        candidates.push(Reverse(Neighbor::new(entry as u64, entry_d)));
        let mut results: BinaryHeap<Neighbor> = BinaryHeap::new();
        results.push(Neighbor::new(entry as u64, entry_d));
        while let Some(Reverse(cand)) = candidates.pop() {
            let worst = results.peek().expect("results never empty").distance;
            if cand.distance > worst && results.len() >= ef {
                break;
            }
            for &nb in &self.nodes[cand.id as usize].neighbors[layer] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let d = self.dist(query, nb);
                let worst = results.peek().expect("non-empty").distance;
                if results.len() < ef || d < worst {
                    candidates.push(Reverse(Neighbor::new(nb as u64, d)));
                    results.push(Neighbor::new(nb as u64, d));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out = results.into_vec();
        out.sort_unstable();
        out
    }

    /// Returns the approximate `k` nearest neighbors using beam width `ef`.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the indexed dimensionality.
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.data.dim(),
            "query has wrong dimensionality"
        );
        let mut current = self.entry;
        for l in (1..=self.max_level).rev() {
            current = self.greedy_step(query, current, l);
        }
        let ef = ef.max(k);
        let mut found = self.search_layer(query, current, ef, 0);
        found.truncate(k);
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> VecSet {
        let mut rng = StdRng::seed_from_u64(seed);
        VecSet::from_fn(n, dim, |_, _| rng.random::<f32>())
    }

    #[test]
    fn exact_match_found() {
        let data = random_data(500, 8, 1);
        let hnsw = Hnsw::build(&data, &HnswConfig::default());
        for i in (0..500).step_by(61) {
            let hits = hnsw.search(data.get(i), 1, 64);
            assert_eq!(hits[0].id, i as u64, "query {i} should find itself");
        }
    }

    #[test]
    fn recall_at_10_beats_090_vs_flat() {
        let data = random_data(2000, 16, 2);
        let hnsw = Hnsw::build(&data, &HnswConfig::default());
        let flat = FlatIndex::new(data.clone(), Metric::L2);
        let mut recall_sum = 0.0;
        let trials = 50;
        for q in 0..trials {
            let query: Vec<f32> = {
                let mut rng = StdRng::seed_from_u64(100 + q);
                (0..16).map(|_| rng.random::<f32>()).collect()
            };
            let truth: Vec<u64> = flat.search(&query, 10).iter().map(|n| n.id).collect();
            let approx = hnsw.search(&query, 10, 128);
            let hit = approx.iter().filter(|n| truth.contains(&n.id)).count();
            recall_sum += hit as f64 / 10.0;
        }
        let recall = recall_sum / trials as f64;
        assert!(recall > 0.9, "HNSW recall@10 too low: {recall}");
    }

    #[test]
    fn single_vector_graph() {
        let data = random_data(1, 4, 3);
        let hnsw = Hnsw::build(&data, &HnswConfig::default());
        let hits = hnsw.search(&[0.0; 4], 5, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = random_data(300, 8, 4);
        let a = Hnsw::build(&data, &HnswConfig::default());
        let b = Hnsw::build(&data, &HnswConfig::default());
        let qa = a.search(data.get(5), 7, 50);
        let qb = b.search(data.get(5), 7, 50);
        assert_eq!(qa, qb);
    }

    #[test]
    fn edge_bytes_grows_with_size() {
        let small = Hnsw::build(&random_data(100, 4, 5), &HnswConfig::default());
        let large = Hnsw::build(&random_data(1000, 4, 5), &HnswConfig::default());
        assert!(large.edge_bytes() > small.edge_bytes());
    }

    #[test]
    #[should_panic(expected = "at least one vector")]
    fn empty_build_rejected() {
        Hnsw::build(&VecSet::new(4), &HnswConfig::default());
    }
}
