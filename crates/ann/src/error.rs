//! Error type for ANN operations.

use std::fmt;

/// Errors produced by index construction and search.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnnError {
    /// A vector had a different dimensionality than the index.
    DimensionMismatch {
        /// Dimensionality the index expects.
        expected: usize,
        /// Dimensionality that was supplied.
        actual: usize,
    },
    /// Training data was too small for the requested configuration.
    InsufficientTrainingData {
        /// Number of training vectors required.
        required: usize,
        /// Number of training vectors supplied.
        supplied: usize,
    },
    /// A configuration parameter was invalid.
    InvalidConfig(String),
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: index expects {expected}, got {actual}"
                )
            }
            AnnError::InsufficientTrainingData { required, supplied } => {
                write!(
                    f,
                    "insufficient training data: need {required} vectors, got {supplied}"
                )
            }
            AnnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for AnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = AnnError::DimensionMismatch {
            expected: 8,
            actual: 4,
        };
        assert_eq!(format!("{e}"), "dimension mismatch: index expects 8, got 4");
        let e = AnnError::InsufficientTrainingData {
            required: 10,
            supplied: 2,
        };
        assert!(format!("{e}").contains("need 10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnnError>();
    }
}
