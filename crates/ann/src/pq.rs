//! Product quantization (PQ) with asymmetric-distance lookup tables.
//!
//! PQ (Jégou et al., TPAMI 2011) splits each `d`-dimensional vector into `m`
//! subvectors of `d/m` dimensions and quantizes each subvector against a
//! 256-entry codebook, compressing a vector to `m` bytes. At query time a
//! lookup table (LUT) of partial distances between the query's subvectors
//! and every codeword is precomputed; a database vector's approximate
//! distance is the sum of `m` table lookups — the "LUT construction" and
//! "LUT scan" stages whose cost dominates IVF search latency (paper Fig. 3).

use crate::{l2_sq, AnnError, KMeans, KMeansConfig, KMeansInit, Result, VecSet};

/// Configuration for [`ProductQuantizer::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct PqConfig {
    /// Number of subquantizers `m` (codes per vector). Must divide the
    /// vector dimensionality.
    pub m: usize,
    /// Codebook size per subquantizer; fixed to ≤ 256 so codes fit in one
    /// byte (the paper's indexes use 8-bit PQ).
    pub ksub: usize,
    /// k-means iterations per codebook.
    pub train_iters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PqConfig {
    /// Creates a config with `m` subquantizers and 256-entry codebooks.
    pub fn new(m: usize) -> Self {
        Self {
            m,
            ksub: 256,
            train_iters: 8,
            seed: 0x009a_5eed,
        }
    }
}

/// A trained product quantizer.
///
/// # Examples
///
/// ```
/// use vlite_ann::{PqConfig, ProductQuantizer, VecSet};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let data = VecSet::from_fn(1000, 8, |_, _| rng.random::<f32>());
/// let pq = ProductQuantizer::train(&data, &PqConfig::new(4))?;
/// let codes = pq.encode(data.get(0));
/// assert_eq!(codes.len(), 4);
/// let lut = pq.lut(data.get(0));
/// // The ADC distance of a vector to itself is its quantization error — small.
/// assert!(lut.distance(&codes) < 0.5);
/// # Ok::<(), vlite_ann::AnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    dsub: usize,
    ksub: usize,
    /// `m` codebooks, each `ksub × dsub`.
    codebooks: Vec<VecSet>,
}

/// A query's table of partial distances: `m × ksub` entries.
#[derive(Debug, Clone)]
pub struct Lut {
    m: usize,
    ksub: usize,
    table: Vec<f32>,
}

impl Lut {
    /// Number of subquantizers.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codebook size per subquantizer.
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Raw table, row-major `m × ksub`.
    pub fn table(&self) -> &[f32] {
        &self.table
    }

    /// Asymmetric distance of an encoded vector: the sum of one lookup per
    /// subquantizer.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `codes.len() != m`.
    #[inline]
    pub fn distance(&self, codes: &[u8]) -> f32 {
        debug_assert_eq!(codes.len(), self.m);
        let mut sum = 0.0f32;
        for (j, &code) in codes.iter().enumerate() {
            sum += self.table[j * self.ksub + code as usize];
        }
        sum
    }
}

impl ProductQuantizer {
    /// Trains `config.m` codebooks on `data` by running k-means in each
    /// subspace.
    ///
    /// # Errors
    ///
    /// - [`AnnError::InvalidConfig`] if `m` does not divide the
    ///   dimensionality, `m == 0`, or `ksub` is 0 or exceeds 256.
    /// - [`AnnError::InsufficientTrainingData`] if fewer than `ksub`
    ///   training vectors are supplied.
    pub fn train(data: &VecSet, config: &PqConfig) -> Result<ProductQuantizer> {
        let dim = data.dim();
        if config.m == 0 || !dim.is_multiple_of(config.m) {
            return Err(AnnError::InvalidConfig(format!(
                "m={} must be positive and divide dim={dim}",
                config.m
            )));
        }
        if config.ksub == 0 || config.ksub > 256 {
            return Err(AnnError::InvalidConfig(format!(
                "ksub={} must be in 1..=256 so codes fit in a byte",
                config.ksub
            )));
        }
        if data.len() < config.ksub {
            return Err(AnnError::InsufficientTrainingData {
                required: config.ksub,
                supplied: data.len(),
            });
        }
        let dsub = dim / config.m;
        let mut codebooks = Vec::with_capacity(config.m);
        for j in 0..config.m {
            // Slice out subspace j of every training vector.
            let sub = VecSet::from_fn(data.len(), dsub, |i, col| data.get(i)[j * dsub + col]);
            let cfg = KMeansConfig {
                k: config.ksub,
                max_iters: config.train_iters,
                tolerance: 1e-5,
                init: KMeansInit::PlusPlus,
                seed: config.seed.wrapping_add(j as u64),
                threads: 4,
            };
            let model = KMeans::train(&sub, &cfg)?;
            codebooks.push(model.centroids().clone());
        }
        Ok(ProductQuantizer {
            dim,
            m: config.m,
            dsub,
            ksub: config.ksub,
            codebooks,
        })
    }

    /// Vector dimensionality this quantizer encodes.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subquantizers (= bytes per code).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codebook size per subquantizer.
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Code size per vector in bytes.
    pub fn code_bytes(&self) -> usize {
        self.m
    }

    /// Encodes one vector into `m` codebook indices.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim, "encode: wrong dimensionality");
        let mut codes = Vec::with_capacity(self.m);
        for j in 0..self.m {
            let sub = &v[j * self.dsub..(j + 1) * self.dsub];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (c, word) in self.codebooks[j].iter().enumerate() {
                let d = l2_sq(sub, word);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            codes.push(best as u8);
        }
        codes
    }

    /// Encodes every vector of `data`, returning a flat `n × m` code buffer.
    pub fn encode_batch(&self, data: &VecSet) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() * self.m);
        for v in data.iter() {
            out.extend_from_slice(&self.encode(v));
        }
        out
    }

    /// Reconstructs the vector represented by `codes`.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != m`.
    pub fn decode(&self, codes: &[u8]) -> Vec<f32> {
        assert_eq!(codes.len(), self.m, "decode: wrong code length");
        let mut out = Vec::with_capacity(self.dim);
        for (j, &code) in codes.iter().enumerate() {
            out.extend_from_slice(self.codebooks[j].get(code as usize));
        }
        out
    }

    /// Builds the asymmetric-distance lookup table for `query` — the "LUT
    /// construction" stage of the paper's latency breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != dim`.
    pub fn lut(&self, query: &[f32]) -> Lut {
        assert_eq!(query.len(), self.dim, "lut: wrong dimensionality");
        let mut table = Vec::with_capacity(self.m * self.ksub);
        for j in 0..self.m {
            let sub = &query[j * self.dsub..(j + 1) * self.dsub];
            for word in self.codebooks[j].iter() {
                table.push(l2_sq(sub, word));
            }
        }
        Lut {
            m: self.m,
            ksub: self.ksub,
            table,
        }
    }

    /// Mean squared reconstruction error over `data`.
    pub fn reconstruction_error(&self, data: &VecSet) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        for v in data.iter() {
            let rec = self.decode(&self.encode(v));
            total += f64::from(l2_sq(v, &rec));
        }
        total / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> VecSet {
        let mut rng = StdRng::seed_from_u64(seed);
        VecSet::from_fn(n, dim, |_, _| rng.random::<f32>())
    }

    fn small_pq(data: &VecSet, m: usize) -> ProductQuantizer {
        let cfg = PqConfig {
            m,
            ksub: 16,
            train_iters: 6,
            seed: 42,
        };
        ProductQuantizer::train(data, &cfg).unwrap()
    }

    #[test]
    fn encode_decode_reduces_error_vs_zero_baseline() {
        let data = random_data(600, 8, 1);
        let pq = small_pq(&data, 4);
        let err = pq.reconstruction_error(&data);
        // Zero vector baseline error for U[0,1)^8 data is d * E[x²] ≈ 8/3.
        assert!(
            err < 8.0 / 3.0 * 0.5,
            "PQ must beat half the trivial baseline, err={err}"
        );
    }

    #[test]
    fn lut_distance_equals_decoded_distance() {
        let data = random_data(400, 8, 2);
        let pq = small_pq(&data, 4);
        let query = data.get(7);
        let lut = pq.lut(query);
        for i in (0..data.len()).step_by(37) {
            let codes = pq.encode(data.get(i));
            let adc = lut.distance(&codes);
            let decoded = pq.decode(&codes);
            let direct = l2_sq(query, &decoded);
            // ADC computes the same quantity as distance-to-reconstruction
            // only when subspace cross-terms vanish; for L2 they do exactly.
            assert!((adc - direct).abs() < 1e-3, "adc={adc} direct={direct}");
        }
    }

    #[test]
    fn more_subquantizers_reduce_error() {
        let data = random_data(800, 16, 3);
        let e2 = small_pq(&data, 2).reconstruction_error(&data);
        let e8 = small_pq(&data, 8).reconstruction_error(&data);
        assert!(e8 < e2, "m=8 ({e8}) must beat m=2 ({e2})");
    }

    #[test]
    fn invalid_m_rejected() {
        let data = random_data(100, 10, 4);
        let err = ProductQuantizer::train(&data, &PqConfig::new(3)).unwrap_err();
        assert!(matches!(err, AnnError::InvalidConfig(_)));
    }

    #[test]
    fn oversized_ksub_rejected() {
        let data = random_data(100, 8, 5);
        let cfg = PqConfig {
            ksub: 300,
            ..PqConfig::new(4)
        };
        assert!(matches!(
            ProductQuantizer::train(&data, &cfg),
            Err(AnnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn too_little_training_data_rejected() {
        let data = random_data(10, 8, 6);
        let cfg = PqConfig {
            ksub: 16,
            ..PqConfig::new(4)
        };
        assert!(matches!(
            ProductQuantizer::train(&data, &cfg),
            Err(AnnError::InsufficientTrainingData { .. })
        ));
    }

    #[test]
    fn encode_batch_matches_individual_encode() {
        let data = random_data(50, 8, 7);
        let pq = small_pq(&data, 4);
        let batch = pq.encode_batch(&data);
        for i in 0..data.len() {
            assert_eq!(
                &batch[i * 4..(i + 1) * 4],
                pq.encode(data.get(i)).as_slice()
            );
        }
    }

    #[test]
    fn code_bytes_is_m() {
        let data = random_data(100, 8, 8);
        assert_eq!(small_pq(&data, 4).code_bytes(), 4);
    }
}
