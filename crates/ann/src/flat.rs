//! Exhaustive (flat) index — the recall ground truth.

use crate::{Metric, Neighbor, TopK, VecSet};

/// A brute-force index that scans every vector.
///
/// Used as the ground truth for recall/NDCG evaluation and as the
/// small-database baseline where the paper notes "CPU-based vector search
/// may be sufficient".
///
/// # Examples
///
/// ```
/// use vlite_ann::{FlatIndex, Metric, VecSet};
///
/// let data = VecSet::from_fn(10, 2, |i, _| i as f32);
/// let index = FlatIndex::new(data, Metric::L2);
/// let hits = index.search(&[3.2, 3.2], 2);
/// assert_eq!(hits[0].id, 3);
/// ```
#[derive(Debug, Clone)]
pub struct FlatIndex {
    data: VecSet,
    metric: Metric,
}

impl FlatIndex {
    /// Wraps a vector set; ids are the row positions.
    pub fn new(data: VecSet, metric: Metric) -> Self {
        Self { data, metric }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.data.dim()
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Returns the exact `k` nearest neighbors of `query`, closest first.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the index dimensionality.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.data.dim(),
            "query has wrong dimensionality"
        );
        let mut top = TopK::new(k);
        for (i, v) in self.data.iter().enumerate() {
            top.push(i as u64, self.metric.score(query, v));
        }
        top.into_sorted()
    }

    /// Searches a batch of queries, parallelized over queries with scoped
    /// threads.
    pub fn search_batch(&self, queries: &VecSet, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
        assert_eq!(
            queries.dim(),
            self.data.dim(),
            "queries have wrong dimensionality"
        );
        let n = queries.len();
        let mut out: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        let threads = threads.max(1).min(n.max(1));
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slice) in out.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    for (offset, result) in slice.iter_mut().enumerate() {
                        *result = self.search(queries.get(start + offset), k);
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn finds_self_as_nearest() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = VecSet::from_fn(50, 4, |_, _| rng.random::<f32>());
        let index = FlatIndex::new(data.clone(), Metric::L2);
        for i in (0..50).step_by(7) {
            let hits = index.search(data.get(i), 1);
            assert_eq!(hits[0].id, i as u64);
            assert_eq!(hits[0].distance, 0.0);
        }
    }

    #[test]
    fn results_are_sorted_ascending() {
        let mut rng = StdRng::seed_from_u64(2);
        let data = VecSet::from_fn(100, 4, |_, _| rng.random::<f32>());
        let index = FlatIndex::new(data, Metric::L2);
        let hits = index.search(&[0.5; 4], 10);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn batch_matches_single() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = VecSet::from_fn(80, 4, |_, _| rng.random::<f32>());
        let queries = VecSet::from_fn(9, 4, |_, _| rng.random::<f32>());
        let index = FlatIndex::new(data, Metric::L2);
        let batch = index.search_batch(&queries, 5, 4);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], index.search(q, 5));
        }
    }

    #[test]
    fn inner_product_prefers_aligned_vectors() {
        let mut data = VecSet::new(2);
        data.push(&[1.0, 0.0]);
        data.push(&[10.0, 0.0]);
        data.push(&[0.0, 1.0]);
        let index = FlatIndex::new(data, Metric::InnerProduct);
        let hits = index.search(&[1.0, 0.0], 3);
        assert_eq!(hits[0].id, 1); // largest dot product first
    }
}
