//! Distance functions and the [`Metric`] enum.
//!
//! The actual arithmetic lives in [`crate::kernel`]: runtime-dispatched
//! `std::arch` SIMD (AVX2+FMA / NEON) with the portable unrolled-scalar
//! loops as the always-tested fallback. The entry points here are the
//! crate's stable public API; they pay one relaxed atomic load of
//! dispatch state per call. Scan loops that want zero per-call dispatch
//! resolve a [`crate::kernel::Kernels`] table once per pass instead.

use serde::{Deserialize, Serialize};

use crate::kernel;

/// Squared Euclidean (L2²) distance.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length.
///
/// # Examples
///
/// ```
/// assert_eq!(vlite_ann::l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
/// ```
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    kernel::l2_sq(a, b)
}

/// Inner (dot) product.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length.
///
/// # Examples
///
/// ```
/// assert_eq!(vlite_ann::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    kernel::dot(a, b)
}

/// Cosine distance `1 − cos(a, b)`; `1.0` when either vector is zero.
///
/// # Examples
///
/// ```
/// assert!(vlite_ann::cosine_distance(&[1.0, 0.0], &[2.0, 0.0]) < 1e-6);
/// assert!((vlite_ann::cosine_distance(&[1.0, 0.0], &[0.0, 3.0]) - 1.0).abs() < 1e-6);
/// ```
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let num = dot(a, b);
    let den = (dot(a, a) * dot(b, b)).sqrt();
    if den <= 0.0 {
        1.0
    } else {
        1.0 - num / den
    }
}

/// Distance metric for index construction and search.
///
/// All metrics are expressed as "smaller is closer" scores so that top-k
/// selection is metric-agnostic: inner product is negated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// Squared Euclidean distance.
    #[default]
    L2,
    /// (Negated) inner product — maximum inner product search.
    InnerProduct,
    /// Cosine distance `1 − cos` (angular similarity). Supported by flat
    /// list storage only: the norm term does not decompose over PQ
    /// subspaces.
    Cosine,
}

impl Metric {
    /// Computes the "smaller is closer" score between two vectors.
    #[inline]
    pub fn score(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::L2 => l2_sq(a, b),
            Metric::InnerProduct => -dot(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_l2(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    #[test]
    fn l2_matches_naive_on_odd_lengths() {
        for n in [1, 3, 4, 5, 7, 16, 33, 100] {
            let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
            let b: Vec<f32> = (0..n).map(|i| (n - i) as f32 * 0.25).collect();
            let fast = l2_sq(&a, &b);
            let slow = naive_l2(&a, &b);
            assert!((fast - slow).abs() < 1e-3, "n={n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32).cos()).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-4);
    }

    #[test]
    fn metric_scores_are_smaller_is_closer() {
        let query = [1.0, 0.0];
        let near = [0.9, 0.1];
        let far = [-1.0, 0.0];
        for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            assert!(
                metric.score(&query, &near) < metric.score(&query, &far),
                "{metric:?} must rank the near vector closer"
            );
        }
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!(cosine_distance(&a, &b) < 1e-6);
        let scaled: Vec<f32> = a.iter().map(|x| x * 7.0).collect();
        let c = [3.0, -1.0, 0.5];
        assert!((cosine_distance(&a, &c) - cosine_distance(&scaled, &c)).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_zero_vector_is_one() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let v = [1.5, -2.5, 3.0];
        assert_eq!(l2_sq(&v, &v), 0.0);
    }
}
