//! From-scratch approximate nearest neighbor (ANN) substrate.
//!
//! The paper builds on Faiss (IVF, IVF-PQ, IVF-FastScan, HNSW coarse
//! quantization). Faiss is unavailable here, so this crate reimplements the
//! required index family in pure Rust:
//!
//! - [`FlatIndex`] — exhaustive search, the recall ground truth.
//! - [`KMeans`] — Lloyd's algorithm with k-means++ / random-sample
//!   initialization and empty-cluster repair; trains coarse centroids and PQ
//!   codebooks.
//! - [`ProductQuantizer`] — product quantization (Jégou et al.) with
//!   asymmetric-distance lookup tables (LUTs), the paper's compression
//!   scheme.
//! - [`ScalarQuantizer`] — `f32 → u8` scalar quantization baseline.
//! - [`IvfIndex`] — inverted-file index over k-means clusters with flat, PQ,
//!   or fast-scan list storage; exposes the *three search stages* the paper's
//!   performance model distinguishes (Fig. 2): coarse quantization → LUT
//!   construction → LUT scan.
//! - [`FastScanList`] — register-blocked PQ code layout with 8-bit quantized
//!   LUTs, the structural analogue of Faiss's IVF-PQ fast-scan.
//! - [`Hnsw`] — hierarchical navigable small world graph, used (as in the
//!   paper) for coarse quantization over many centroids.
//! - [`eval`] — recall@k and NDCG@k quality metrics.
//!
//! # Examples
//!
//! Build an IVF index and search it:
//!
//! ```
//! use vlite_ann::{IvfConfig, IvfIndex, ListStorage, VecSet};
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let data = VecSet::from_fn(512, 16, |_, _| rng.random::<f32>());
//! let config = IvfConfig::new(8).storage(ListStorage::Flat);
//! let index = IvfIndex::train(&data, &config)?;
//! let hits = index.search(data.get(3), 5, 4);
//! assert_eq!(hits[0].id, 3); // the vector itself is its own nearest neighbor
//! # Ok::<(), vlite_ann::AnnError>(())
//! ```

// `deny`, not `forbid`: the `kernel` module's arch submodules carry a
// scoped `#[allow(unsafe_code)]` for `std::arch` intrinsics — the
// crate's sole audited unsafe surface (see `vlite-analyze`'s
// unsafe-audit rule). Everything else still refuses `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod distance;
mod error;
pub mod eval;
mod fastscan;
mod flat;
mod hnsw;
mod ivf;
pub mod kernel;
mod kmeans;
mod pq;
mod sq;
mod store;
mod topk;
mod vecset;

pub use distance::{cosine_distance, dot, l2_sq, Metric};
pub use error::AnnError;
pub use fastscan::{FastScanList, QuantizedLut, FAST_SCAN_BLOCK};
pub use flat::FlatIndex;
pub use hnsw::{Hnsw, HnswConfig};
pub use ivf::{CoarseKind, IvfConfig, IvfIndex, ListStorage, Probe};
pub use kernel::{KernelKind, Kernels};
pub use kmeans::{KMeans, KMeansConfig, KMeansInit};
pub use pq::{Lut, PqConfig, ProductQuantizer};
pub use sq::ScalarQuantizer;
pub use store::{scan_lists_store, scan_lists_store_batch, BatchQuery, ClusterStore};
pub use topk::{merge_sorted, Neighbor, TopK};
pub use vecset::VecSet;

/// Result alias for fallible ANN operations.
pub type Result<T> = std::result::Result<T, AnnError>;
