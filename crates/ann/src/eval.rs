//! Retrieval quality metrics: recall@k and NDCG@k.
//!
//! The paper tunes `nprobe` to hit an average retrieval quality of
//! 0.91 NDCG@50 against exact search (§V-A); these metrics let the
//! reproduction verify its indexes reach comparable operating points.

use crate::Neighbor;

/// Fraction of the true top-k ids present in the approximate top-k.
///
/// # Panics
///
/// Panics if `truth` is empty.
///
/// # Examples
///
/// ```
/// use vlite_ann::{eval::recall_at_k, Neighbor};
///
/// let truth = vec![Neighbor::new(1, 0.1), Neighbor::new(2, 0.2)];
/// let approx = vec![Neighbor::new(2, 0.2), Neighbor::new(9, 0.3)];
/// assert_eq!(recall_at_k(&truth, &approx, 2), 0.5);
/// ```
pub fn recall_at_k(truth: &[Neighbor], approx: &[Neighbor], k: usize) -> f64 {
    assert!(!truth.is_empty(), "ground truth must be non-empty");
    let k = k.min(truth.len());
    let truth_ids: Vec<u64> = truth.iter().take(k).map(|n| n.id).collect();
    let hits = approx
        .iter()
        .take(k)
        .filter(|n| truth_ids.contains(&n.id))
        .count();
    hits as f64 / k as f64
}

/// Normalized discounted cumulative gain at `k`, with binary relevance: a
/// returned id is relevant iff it appears in the true top-k.
///
/// Returns 1.0 when the approximate ranking contains the entire true top-k
/// in any order of the first k positions with ideal positioning, and less
/// as relevant items are missed or pushed down the ranking.
///
/// # Panics
///
/// Panics if `truth` is empty.
///
/// # Examples
///
/// ```
/// use vlite_ann::{eval::ndcg_at_k, Neighbor};
///
/// let truth = vec![Neighbor::new(1, 0.1), Neighbor::new(2, 0.2)];
/// // Perfect ranking.
/// assert_eq!(ndcg_at_k(&truth, &truth, 2), 1.0);
/// ```
pub fn ndcg_at_k(truth: &[Neighbor], approx: &[Neighbor], k: usize) -> f64 {
    assert!(!truth.is_empty(), "ground truth must be non-empty");
    let k = k.min(truth.len());
    let truth_ids: Vec<u64> = truth.iter().take(k).map(|n| n.id).collect();
    let dcg: f64 = approx
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, n)| {
            if truth_ids.contains(&n.id) {
                1.0 / ((i + 2) as f64).log2()
            } else {
                0.0
            }
        })
        .sum();
    let ideal: f64 = (0..k).map(|i| 1.0 / ((i + 2) as f64).log2()).sum();
    dcg / ideal
}

/// Mean of a metric over query pairs.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mean_metric(
    truths: &[Vec<Neighbor>],
    approxes: &[Vec<Neighbor>],
    k: usize,
    metric: fn(&[Neighbor], &[Neighbor], usize) -> f64,
) -> f64 {
    assert_eq!(truths.len(), approxes.len(), "query count mismatch");
    assert!(!truths.is_empty(), "need at least one query");
    truths
        .iter()
        .zip(approxes)
        .map(|(t, a)| metric(t, a, k))
        .sum::<f64>()
        / truths.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nb(ids: &[u64]) -> Vec<Neighbor> {
        ids.iter()
            .enumerate()
            .map(|(i, &id)| Neighbor::new(id, i as f32))
            .collect()
    }

    #[test]
    fn perfect_recall_and_ndcg() {
        let truth = nb(&[1, 2, 3, 4]);
        assert_eq!(recall_at_k(&truth, &truth, 4), 1.0);
        assert_eq!(ndcg_at_k(&truth, &truth, 4), 1.0);
    }

    #[test]
    fn recall_counts_set_overlap() {
        let truth = nb(&[1, 2, 3, 4]);
        let approx = nb(&[4, 3, 9, 8]);
        assert_eq!(recall_at_k(&truth, &approx, 4), 0.5);
    }

    #[test]
    fn ndcg_penalizes_low_positions() {
        let truth = nb(&[1, 2]);
        let front = nb(&[1, 9]);
        let back = nb(&[9, 1]);
        assert!(ndcg_at_k(&truth, &front, 2) > ndcg_at_k(&truth, &back, 2));
    }

    #[test]
    fn ndcg_zero_when_nothing_relevant() {
        let truth = nb(&[1, 2]);
        let approx = nb(&[8, 9]);
        assert_eq!(ndcg_at_k(&truth, &approx, 2), 0.0);
    }

    #[test]
    fn short_approx_lists_are_partial() {
        let truth = nb(&[1, 2, 3, 4]);
        let approx = nb(&[1]);
        assert_eq!(recall_at_k(&truth, &approx, 4), 0.25);
    }

    #[test]
    fn mean_metric_averages() {
        let truths = vec![nb(&[1, 2]), nb(&[3, 4])];
        let approxes = vec![nb(&[1, 2]), nb(&[9, 9])];
        assert_eq!(mean_metric(&truths, &approxes, 2, recall_at_k), 0.5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_truth_rejected() {
        recall_at_k(&[], &nb(&[1]), 1);
    }
}
