//! The [`ClusterStore`] abstraction: where inverted-list payloads
//! physically live.
//!
//! [`IvfIndex`](crate::IvfIndex) historically owned every list's vectors in
//! memory at full precision, which makes "placement" a routing concept
//! only. A `ClusterStore` turns placement physical: the IVF scan path reads
//! cluster payloads *through this trait*, so an implementation can keep hot
//! clusters in resident full-precision arenas while cold clusters live in
//! quantized on-disk extents — the asymmetric fast/slow tiers of the
//! paper's partitioning, realized in bytes rather than labels. The
//! `vlite-store` crate provides the tiered implementation; this crate only
//! defines the read interface so the scan loop stays storage-agnostic.

use crate::{Metric, Neighbor, TopK};

/// Read-side interface over physically stored cluster payloads.
///
/// An implementation owns the bytes of every cluster (inverted list) of one
/// index and knows how to accumulate scan candidates for a query, whatever
/// the encoding (full-precision `f32`, SQ8 codes against a per-query lookup
/// table, …). Implementations must be shareable across scan threads.
///
/// The distance metric is a property of the store (fixed when the payloads
/// were written), not of the call: callers route queries, stores score
/// them.
///
/// # Examples
///
/// A minimal resident store over one flat cluster:
///
/// ```
/// use vlite_ann::{ClusterStore, Metric, TopK, VecSet};
///
/// struct OneCluster(VecSet);
///
/// impl ClusterStore for OneCluster {
///     fn dim(&self) -> usize { self.0.dim() }
///     fn n_clusters(&self) -> usize { 1 }
///     fn metric(&self) -> Metric { Metric::L2 }
///     fn cluster_len(&self, _c: u32) -> usize { self.0.len() }
///     fn scan_cluster(&self, _c: u32, query: &[f32], top: &mut TopK) {
///         for (i, v) in self.0.iter().enumerate() {
///             top.push(i as u64, Metric::L2.score(query, v));
///         }
///     }
/// }
///
/// let store = OneCluster(VecSet::from_fn(8, 2, |i, j| (i + j) as f32));
/// let mut top = TopK::new(1);
/// store.scan_cluster(0, &[0.0, 1.0], &mut top);
/// assert_eq!(top.into_sorted()[0].id, 0);
/// ```
pub trait ClusterStore: Send + Sync {
    /// Vector dimensionality of every stored cluster.
    fn dim(&self) -> usize;

    /// Number of clusters the store holds payloads for.
    fn n_clusters(&self) -> usize;

    /// The distance metric the payloads are scored under.
    fn metric(&self) -> Metric;

    /// Number of vectors stored in cluster `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    fn cluster_len(&self, cluster: u32) -> usize;

    /// Scans cluster `cluster`, offering every stored vector's `(id,
    /// score)` to `top` under [`ClusterStore::metric`].
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range or `query.len() != dim()`.
    fn scan_cluster(&self, cluster: u32, query: &[f32], top: &mut TopK);

    /// Scans several clusters for one query. The default just loops over
    /// [`ClusterStore::scan_cluster`]; implementations override it to
    /// share per-query state across the clusters (e.g. one SQ8 lookup
    /// table across every cold probe, instead of one per probe).
    ///
    /// # Panics
    ///
    /// As [`ClusterStore::scan_cluster`].
    fn scan_clusters(&self, clusters: &[u32], query: &[f32], top: &mut TopK) {
        for &c in clusters {
            self.scan_cluster(c, query, top);
        }
    }

    /// Scans a whole batch of queries — each with its own probe list — in
    /// one call, accumulating into `tops[i]` for `queries[i]`.
    ///
    /// The default runs query-at-a-time over
    /// [`ClusterStore::scan_clusters`]. Implementations override it to
    /// make *blocked* (cluster-major) passes: when several queries of the
    /// batch probe the same cluster, one pass over the cluster's bytes
    /// scores all of them, instead of each query re-streaming the
    /// payload. Because [`TopK`]'s ordering is a total order over
    /// `(score, id)`, any override must produce results identical to this
    /// default for every query, whatever order it visits clusters in.
    ///
    /// # Panics
    ///
    /// Panics if `queries.len() != tops.len()`; otherwise as
    /// [`ClusterStore::scan_cluster`].
    fn scan_batch(&self, queries: &[BatchQuery<'_>], tops: &mut [TopK]) {
        assert_eq!(queries.len(), tops.len(), "one TopK per batched query");
        for (q, top) in queries.iter().zip(tops.iter_mut()) {
            self.scan_clusters(q.lists, q.query, top);
        }
    }
}

/// One query of a batched scan: the vector plus the clusters its coarse
/// probe selected.
#[derive(Debug, Clone, Copy)]
pub struct BatchQuery<'a> {
    /// The query vector (`dim()` components).
    pub query: &'a [f32],
    /// The cluster ids this query probes.
    pub lists: &'a [u32],
}

/// Scans `lists` through a [`ClusterStore`] and returns the top-`k`
/// neighbors — the storage-agnostic stage-3 scan loop.
///
/// # Panics
///
/// Panics if `query.len() != store.dim()`, `k == 0`, or a list id is out of
/// range.
pub fn scan_lists_store(
    store: &dyn ClusterStore,
    query: &[f32],
    lists: &[u32],
    k: usize,
) -> Vec<Neighbor> {
    assert_eq!(query.len(), store.dim(), "query has wrong dimensionality");
    let mut top = TopK::new(k);
    store.scan_clusters(lists, query, &mut top);
    top.into_sorted()
}

/// Scans a whole batch of queries through a [`ClusterStore`] and returns
/// each query's top-`k` neighbors, in batch order — the batched
/// counterpart of [`scan_lists_store`], routing through
/// [`ClusterStore::scan_batch`] so tiered stores can block the scan
/// (one pass over a cluster's bytes scores every query probing it).
///
/// # Panics
///
/// Panics if any `query.len() != store.dim()`, `k == 0`, or a list id is
/// out of range.
pub fn scan_lists_store_batch(
    store: &dyn ClusterStore,
    queries: &[BatchQuery<'_>],
    k: usize,
) -> Vec<Vec<Neighbor>> {
    for q in queries {
        assert_eq!(q.query.len(), store.dim(), "query has wrong dimensionality");
    }
    let mut tops: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(k)).collect();
    store.scan_batch(queries, &mut tops);
    tops.into_iter().map(TopK::into_sorted).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecSet;

    /// Two tiny clusters with disjoint id spaces.
    struct TwoClusters {
        a: VecSet,
        b: VecSet,
    }

    impl ClusterStore for TwoClusters {
        fn dim(&self) -> usize {
            self.a.dim()
        }
        fn n_clusters(&self) -> usize {
            2
        }
        fn metric(&self) -> Metric {
            Metric::L2
        }
        fn cluster_len(&self, cluster: u32) -> usize {
            match cluster {
                0 => self.a.len(),
                1 => self.b.len(),
                other => panic!("cluster {other} out of range"),
            }
        }
        fn scan_cluster(&self, cluster: u32, query: &[f32], top: &mut TopK) {
            let (set, base) = match cluster {
                0 => (&self.a, 0u64),
                1 => (&self.b, 100u64),
                other => panic!("cluster {other} out of range"),
            };
            for (i, v) in set.iter().enumerate() {
                top.push(base + i as u64, Metric::L2.score(query, v));
            }
        }
    }

    fn store() -> TwoClusters {
        TwoClusters {
            a: VecSet::from_fn(4, 2, |i, _| i as f32),
            b: VecSet::from_fn(4, 2, |i, _| 10.0 + i as f32),
        }
    }

    #[test]
    fn scan_lists_store_merges_across_clusters() {
        let s = store();
        let hits = scan_lists_store(&s, &[10.0, 10.0], &[0, 1], 2);
        assert_eq!(hits[0].id, 100, "closest lives in cluster 1");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn scan_subset_only_touches_requested_lists() {
        let s = store();
        let hits = scan_lists_store(&s, &[10.0, 10.0], &[0], 1);
        assert_eq!(hits[0].id, 3, "cluster 1 excluded from the scan");
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn dimension_mismatch_rejected() {
        scan_lists_store(&store(), &[0.0; 3], &[0], 1);
    }
}
