//! Dense row-major vector storage.

/// A dense, row-major matrix of `f32` vectors sharing one dimensionality.
///
/// All indexes in this crate store and exchange vectors through `VecSet`; a
/// flat allocation keeps scans cache-friendly and makes footprint accounting
/// exact (`len * dim * 4` bytes).
///
/// # Examples
///
/// ```
/// use vlite_ann::VecSet;
///
/// let mut set = VecSet::new(3);
/// set.push(&[1.0, 2.0, 3.0]);
/// set.push(&[4.0, 5.0, 6.0]);
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.get(1), &[4.0, 5.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VecSet {
    dim: usize,
    data: Vec<f32>,
}

impl VecSet {
    /// Creates an empty set of `dim`-dimensional vectors.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "vector dimensionality must be positive");
        Self {
            dim,
            data: Vec::new(),
        }
    }

    /// Creates an empty set with capacity for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        let mut s = Self::new(dim);
        s.data.reserve(n * dim);
        s
    }

    /// Builds an `n × dim` set by evaluating `f(row, col)`.
    pub fn from_fn(n: usize, dim: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut s = Self::with_capacity(dim, n);
        for i in 0..n {
            for j in 0..dim {
                s.data.push(f(i, j));
            }
        }
        s
    }

    /// Wraps an existing flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "vector dimensionality must be positive");
        assert_eq!(
            data.len() % dim,
            0,
            "flat buffer length must be a multiple of dim"
        );
        Self { dim, data }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the set contains no vectors.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one vector.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "pushed vector has wrong dimensionality");
        self.data.extend_from_slice(v);
    }

    /// Borrows the `i`-th vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrows the `i`-th vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over vectors as slices.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat buffer.
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Copies out a subset of rows in the given order.
    pub fn select(&self, rows: &[usize]) -> VecSet {
        let mut out = VecSet::with_capacity(self.dim, rows.len());
        for &r in rows {
            out.push(self.get(r));
        }
        out
    }

    /// In-memory footprint of the vector payload in bytes.
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl<'a> IntoIterator for &'a VecSet {
    type Item = &'a [f32];
    type IntoIter = std::slice::ChunksExact<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.chunks_exact(self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_round_trip() {
        let mut s = VecSet::new(2);
        s.push(&[1.0, 2.0]);
        s.push(&[3.0, 4.0]);
        assert_eq!(s.get(0), &[1.0, 2.0]);
        assert_eq!(s.get(1), &[3.0, 4.0]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn from_fn_builds_expected_layout() {
        let s = VecSet::from_fn(3, 2, |i, j| (i * 10 + j) as f32);
        assert_eq!(s.get(2), &[20.0, 21.0]);
        assert_eq!(s.as_flat(), &[0.0, 1.0, 10.0, 11.0, 20.0, 21.0]);
    }

    #[test]
    fn select_copies_rows_in_order() {
        let s = VecSet::from_fn(4, 1, |i, _| i as f32);
        let sel = s.select(&[3, 0, 3]);
        assert_eq!(sel.as_flat(), &[3.0, 0.0, 3.0]);
    }

    #[test]
    fn iter_matches_get() {
        let s = VecSet::from_fn(5, 3, |i, j| (i + j) as f32);
        for (i, row) in s.iter().enumerate() {
            assert_eq!(row, s.get(i));
        }
    }

    #[test]
    fn bytes_accounting() {
        let s = VecSet::from_fn(10, 4, |_, _| 0.0);
        assert_eq!(s.bytes(), 160);
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn mismatched_push_rejected() {
        VecSet::new(3).push(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_flat_buffer_rejected() {
        VecSet::from_flat(3, vec![1.0; 7]);
    }
}
