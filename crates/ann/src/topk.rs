//! Bounded top-k selection.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One search result: a vector id and its "smaller is closer" score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Identifier of the database vector.
    pub id: u64,
    /// Distance/score to the query (smaller is closer).
    pub distance: f32,
}

impl Neighbor {
    /// Creates a neighbor.
    pub fn new(id: u64, distance: f32) -> Self {
        Self { id, distance }
    }
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order: distance first, id as a deterministic tie-breaker.
        self.distance
            .total_cmp(&other.distance)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Keeps the `k` smallest-distance neighbors seen so far using a bounded
/// max-heap, the standard selection structure in ANN scan loops.
///
/// # Examples
///
/// ```
/// use vlite_ann::TopK;
///
/// let mut top = TopK::new(2);
/// top.push(1, 5.0);
/// top.push(2, 1.0);
/// top.push(3, 3.0);
/// let hits = top.into_sorted();
/// assert_eq!(hits.len(), 2);
/// assert_eq!(hits[0].id, 2);
/// assert_eq!(hits[1].id, 3);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Neighbor>,
}

impl TopK {
    /// Creates a selector for the `k` closest results.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k selection requires k >= 1");
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Requested result count `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of candidates currently held (≤ `k`).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no candidates have been accepted yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Current admission threshold: the k-th best distance, or `+∞` while
    /// fewer than `k` candidates are held. Scan loops use this to skip
    /// distance computations early.
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |n| n.distance)
        }
    }

    /// Offers a candidate; returns `true` if it was admitted.
    pub fn push(&mut self, id: u64, distance: f32) -> bool {
        let candidate = Neighbor::new(id, distance);
        if self.heap.len() < self.k {
            self.heap.push(candidate);
            true
        } else if candidate < *self.heap.peek().expect("heap is non-empty at capacity") {
            self.heap.pop();
            self.heap.push(candidate);
            true
        } else {
            false
        }
    }

    /// Merges another selector's contents into this one.
    pub fn merge(&mut self, other: TopK) {
        for n in other.heap {
            self.push(n.id, n.distance);
        }
    }

    /// Consumes the selector, returning results sorted closest-first.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

/// Merges several sorted result lists into a single sorted top-k list.
///
/// Used by the dispatcher to combine CPU and GPU partial results (paper
/// §IV-B2: "merges the CPU and GPU results, re-ranks them").
pub fn merge_sorted(lists: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    let mut top = TopK::new(k);
    for list in lists {
        for n in list {
            top.push(n.id, n.distance);
        }
    }
    top.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut top = TopK::new(3);
        for (id, d) in [(1, 9.0), (2, 1.0), (3, 8.0), (4, 2.0), (5, 7.0), (6, 3.0)] {
            top.push(id, d);
        }
        let ids: Vec<u64> = top.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![2, 4, 6]);
    }

    #[test]
    fn threshold_tracks_kth_distance() {
        let mut top = TopK::new(2);
        assert_eq!(top.threshold(), f32::INFINITY);
        top.push(1, 5.0);
        assert_eq!(top.threshold(), f32::INFINITY);
        top.push(2, 3.0);
        assert_eq!(top.threshold(), 5.0);
        top.push(3, 1.0);
        assert_eq!(top.threshold(), 3.0);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let mut top = TopK::new(1);
        top.push(7, 1.0);
        top.push(3, 1.0);
        assert_eq!(top.into_sorted()[0].id, 3);
    }

    #[test]
    fn rejected_candidates_return_false() {
        let mut top = TopK::new(1);
        assert!(top.push(1, 1.0));
        assert!(!top.push(2, 2.0));
        assert!(top.push(3, 0.5));
    }

    #[test]
    fn merge_combines_selectors() {
        let mut a = TopK::new(2);
        a.push(1, 1.0);
        a.push(2, 2.0);
        let mut b = TopK::new(2);
        b.push(3, 0.5);
        b.push(4, 3.0);
        a.merge(b);
        let ids: Vec<u64> = a.into_sorted().iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![3, 1]);
    }

    #[test]
    fn merge_sorted_lists() {
        let l1 = vec![Neighbor::new(1, 1.0), Neighbor::new(2, 4.0)];
        let l2 = vec![Neighbor::new(3, 2.0), Neighbor::new(4, 3.0)];
        let merged = merge_sorted(&[l1, l2], 3);
        let ids: Vec<u64> = merged.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_rejected() {
        TopK::new(0);
    }
}
