//! Inverted-file (IVF) index with flat, PQ, or fast-scan list storage.
//!
//! Search proceeds in the three stages of paper Fig. 2, each separately
//! exposed so the profiler and the hybrid CPU/GPU runtime can time and
//! split them:
//!
//! 1. **Coarse quantization** ([`IvfIndex::probe`]) — rank clusters by
//!    centroid distance and keep the closest `nprobe`.
//! 2. **LUT construction** — build the query's partial-distance table
//!    (PQ/fast-scan storage only).
//! 3. **LUT scan** ([`IvfIndex::scan_lists`]) — accumulate approximate
//!    distances over the selected inverted lists and keep the top-k.

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;

use crate::{
    AnnError, BatchQuery, ClusterStore, FastScanList, Hnsw, HnswConfig, KMeans, KMeansConfig,
    Metric, Neighbor, PqConfig, ProductQuantizer, QuantizedLut, Result, TopK, VecSet,
};

/// How inverted lists store their vectors.
#[derive(Debug, Clone, PartialEq)]
pub enum ListStorage {
    /// Full-precision vectors (IVF-Flat).
    Flat,
    /// PQ codes scanned against a full-precision LUT (classic IVF-PQ).
    Pq(PqConfig),
    /// PQ codes in register-blocked layout with 8-bit LUTs (IVF-PQ
    /// fast-scan, the paper's CPU baseline).
    FastScan(PqConfig),
}

/// How coarse quantization ranks centroids.
#[derive(Debug, Clone, PartialEq)]
pub enum CoarseKind {
    /// Exact scan over all centroids.
    Exact,
    /// HNSW graph over the centroids (the paper's assumption for large
    /// `nlist`).
    Hnsw(HnswConfig),
}

/// Configuration for [`IvfIndex::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct IvfConfig {
    /// Number of inverted lists (clusters).
    pub nlist: usize,
    /// Distance metric.
    pub metric: Metric,
    /// List storage scheme.
    pub storage: ListStorage,
    /// Coarse quantizer structure.
    pub coarse: CoarseKind,
    /// k-means iterations for centroid training.
    pub train_iters: usize,
    /// Max training vectors sampled for k-means (Faiss-style cap so huge
    /// adds don't make training quadratic).
    pub max_train_points: usize,
    /// Encode PQ codes over residuals `v − centroid` instead of raw
    /// vectors. Improves quantization resolution inside tight clusters at
    /// the cost of one LUT construction *per probed cluster* — the
    /// per-probe "LUT Cmp" stage of the paper's latency breakdown (Fig. 3).
    pub by_residual: bool,
    /// RNG seed.
    pub seed: u64,
}

impl IvfConfig {
    /// Creates a config with `nlist` clusters, IVF-Flat storage, and exact
    /// coarse quantization.
    pub fn new(nlist: usize) -> Self {
        Self {
            nlist,
            metric: Metric::L2,
            storage: ListStorage::Flat,
            coarse: CoarseKind::Exact,
            train_iters: 10,
            max_train_points: 65_536,
            by_residual: false,
            seed: 0x1f,
        }
    }

    /// Enables residual PQ encoding (see [`IvfConfig::by_residual`]).
    pub fn by_residual(mut self, enable: bool) -> Self {
        self.by_residual = enable;
        self
    }

    /// Sets the list storage scheme.
    pub fn storage(mut self, storage: ListStorage) -> Self {
        self.storage = storage;
        self
    }

    /// Sets the coarse quantizer structure.
    pub fn coarse(mut self, coarse: CoarseKind) -> Self {
        self.coarse = coarse;
        self
    }

    /// Sets the metric.
    pub fn metric(mut self, metric: Metric) -> Self {
        self.metric = metric;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// One coarse-quantization result: a cluster and its centroid distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// Cluster (inverted list) id.
    pub list: u32,
    /// Query-to-centroid score (smaller is closer).
    pub distance: f32,
}

#[derive(Debug, Clone)]
enum ListData {
    Flat(VecSet),
    Pq(Vec<u8>),
    FastScan(FastScanList),
}

#[derive(Debug, Clone)]
struct InvertedList {
    ids: Vec<u64>,
    data: ListData,
}

impl InvertedList {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn bytes(&self, dim: usize) -> usize {
        let payload = match &self.data {
            ListData::Flat(v) => v.len() * dim * 4,
            ListData::Pq(codes) => codes.len(),
            ListData::FastScan(fs) => fs.bytes().saturating_sub(fs.len() * 8),
        };
        payload + self.ids.len() * 8
    }
}

/// An IVF index: k-means centroids plus one inverted list per cluster.
///
/// # Examples
///
/// ```
/// use vlite_ann::{IvfConfig, IvfIndex, ListStorage, PqConfig, VecSet};
/// use rand::{Rng, SeedableRng};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let data = VecSet::from_fn(2048, 16, |_, _| rng.random::<f32>());
/// let cfg = IvfConfig::new(16)
///     .storage(ListStorage::FastScan(PqConfig { m: 4, ksub: 16, train_iters: 4, seed: 9 }));
/// let index = IvfIndex::train(&data, &cfg)?;
/// let hits = index.search(data.get(100), 10, 8);
/// assert!(hits.iter().any(|n| n.id == 100));
/// # Ok::<(), vlite_ann::AnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IvfIndex {
    config: IvfConfig,
    dim: usize,
    centroids: KMeans,
    coarse_graph: Option<Hnsw>,
    pq: Option<ProductQuantizer>,
    lists: Vec<InvertedList>,
    ntotal: usize,
}

impl IvfIndex {
    /// Trains centroids (and PQ codebooks if configured) on `data` and adds
    /// all of `data` to the index with sequential ids.
    ///
    /// # Errors
    ///
    /// Propagates k-means/PQ training errors (insufficient data, invalid
    /// configuration).
    pub fn train(data: &VecSet, config: &IvfConfig) -> Result<IvfIndex> {
        let mut index = IvfIndex::train_empty(data, config)?;
        let ids: Vec<u64> = (0..data.len() as u64).collect();
        index.add(&ids, data)?;
        Ok(index)
    }

    /// Trains the quantizers only, returning an index with empty lists.
    ///
    /// # Errors
    ///
    /// See [`IvfIndex::train`].
    pub fn train_empty(data: &VecSet, config: &IvfConfig) -> Result<IvfIndex> {
        if config.nlist == 0 {
            return Err(AnnError::InvalidConfig("nlist must be >= 1".into()));
        }
        if config.metric == Metric::Cosine && !matches!(config.storage, ListStorage::Flat) {
            return Err(AnnError::InvalidConfig(
                "cosine metric requires flat list storage (norms do not decompose over PQ subspaces)"
                    .into(),
            ));
        }
        if config.by_residual && matches!(config.storage, ListStorage::Flat) {
            return Err(AnnError::InvalidConfig(
                "residual encoding only applies to PQ-based list storage".into(),
            ));
        }
        // Subsample training points, Faiss-style.
        let train_set: VecSet = if data.len() > config.max_train_points {
            let mut rng = StdRng::seed_from_u64(config.seed);
            let rows: Vec<usize> = sample(&mut rng, data.len(), config.max_train_points)
                .into_iter()
                .collect();
            data.select(&rows)
        } else {
            data.clone()
        };
        let km_cfg = KMeansConfig::new(config.nlist)
            .max_iters(config.train_iters)
            .seed(config.seed);
        let centroids = KMeans::train(&train_set, &km_cfg)?;
        let coarse_graph = match &config.coarse {
            CoarseKind::Exact => None,
            CoarseKind::Hnsw(hnsw_cfg) => Some(Hnsw::build(centroids.centroids(), hnsw_cfg)),
        };
        let pq = match &config.storage {
            ListStorage::Flat => None,
            ListStorage::Pq(pq_cfg) | ListStorage::FastScan(pq_cfg) => {
                if config.by_residual {
                    // Codebooks must cover the residual, not raw, space.
                    let assignment = centroids.assign(&train_set);
                    let residuals = VecSet::from_fn(train_set.len(), train_set.dim(), |i, j| {
                        train_set.get(i)[j] - centroids.centroids().get(assignment[i] as usize)[j]
                    });
                    Some(ProductQuantizer::train(&residuals, pq_cfg)?)
                } else {
                    Some(ProductQuantizer::train(&train_set, pq_cfg)?)
                }
            }
        };
        let lists = (0..config.nlist)
            .map(|_| InvertedList {
                ids: Vec::new(),
                data: match &config.storage {
                    ListStorage::Flat => ListData::Flat(VecSet::new(data.dim())),
                    ListStorage::Pq(_) => ListData::Pq(Vec::new()),
                    ListStorage::FastScan(_) => ListData::FastScan(FastScanList::default()),
                },
            })
            .collect();
        Ok(IvfIndex {
            config: config.clone(),
            dim: data.dim(),
            centroids,
            coarse_graph,
            pq,
            lists,
            ntotal: 0,
        })
    }

    /// Adds vectors with explicit ids.
    ///
    /// Fast-scan lists are rebuilt per affected cluster (the blocked layout
    /// is append-unfriendly; the paper likewise rebuilds shards wholesale,
    /// §IV-B3).
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::DimensionMismatch`] if `data` has the wrong
    /// dimensionality and [`AnnError::InvalidConfig`] if `ids` and `data`
    /// lengths differ.
    pub fn add(&mut self, ids: &[u64], data: &VecSet) -> Result<()> {
        if data.dim() != self.dim {
            return Err(AnnError::DimensionMismatch {
                expected: self.dim,
                actual: data.dim(),
            });
        }
        if ids.len() != data.len() {
            return Err(AnnError::InvalidConfig(format!(
                "ids ({}) and vectors ({}) must have equal length",
                ids.len(),
                data.len()
            )));
        }
        let assignment = self.centroids.assign(data);
        // Group rows by destination list to amortize fast-scan rebuilds.
        let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); self.lists.len()];
        for (row, &list) in assignment.iter().enumerate() {
            grouped[list as usize].push(row);
        }
        let by_residual = self.config.by_residual;
        for (list_id, rows) in grouped.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let centroid: Vec<f32> = if by_residual {
                self.centroids.centroids().get(list_id).to_vec()
            } else {
                Vec::new()
            };
            let prep = |v: &[f32]| -> Vec<f32> {
                if by_residual {
                    v.iter().zip(&centroid).map(|(x, c)| x - c).collect()
                } else {
                    v.to_vec()
                }
            };
            let list = &mut self.lists[list_id];
            for &row in &rows {
                list.ids.push(ids[row]);
            }
            match &mut list.data {
                ListData::Flat(store) => {
                    for &row in &rows {
                        store.push(data.get(row));
                    }
                }
                ListData::Pq(codes) => {
                    let pq = self.pq.as_ref().expect("PQ storage implies trained PQ");
                    for &row in &rows {
                        codes.extend_from_slice(&pq.encode(&prep(data.get(row))));
                    }
                }
                ListData::FastScan(fs) => {
                    let pq = self
                        .pq
                        .as_ref()
                        .expect("fast-scan storage implies trained PQ");
                    // The blocked layout is append-unfriendly: recover the
                    // existing row-major codes, append, and rebuild.
                    let mut staged = fs.to_codes();
                    staged.reserve(rows.len() * pq.m());
                    for &row in &rows {
                        staged.extend_from_slice(&pq.encode(&prep(data.get(row))));
                    }
                    *fs = FastScanList::build(&staged, pq.m(), &list.ids);
                }
            }
        }
        self.ntotal += data.len();
        Ok(())
    }

    /// Total number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ntotal
    }

    /// Whether the index holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.ntotal == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Number of vectors in list `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn list_len(&self, l: usize) -> usize {
        self.lists[l].len()
    }

    /// Per-list sizes, the input to the splitter's round-robin packing.
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(InvertedList::len).collect()
    }

    /// Approximate memory footprint of list `l` in bytes (codes + ids).
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    pub fn list_bytes(&self, l: usize) -> usize {
        self.lists[l].bytes(self.dim)
    }

    /// The trained product quantizer, when the storage scheme uses one.
    pub fn pq(&self) -> Option<&ProductQuantizer> {
        self.pq.as_ref()
    }

    /// The coarse centroids.
    pub fn centroids(&self) -> &VecSet {
        self.centroids.centroids()
    }

    /// Stage 1 — coarse quantization: the `nprobe` closest clusters,
    /// closest first.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the index dimensionality.
    pub fn probe(&self, query: &[f32], nprobe: usize) -> Vec<Probe> {
        assert_eq!(query.len(), self.dim, "query has wrong dimensionality");
        let nprobe = nprobe.min(self.nlist()).max(1);
        match &self.coarse_graph {
            Some(graph) => graph
                .search(query, nprobe, (2 * nprobe).max(64))
                .into_iter()
                .map(|n| Probe {
                    list: n.id as u32,
                    distance: n.distance,
                })
                .collect(),
            None => {
                let mut top = TopK::new(nprobe);
                for (c, centroid) in self.centroids.centroids().iter().enumerate() {
                    top.push(c as u64, self.config.metric.score(query, centroid));
                }
                top.into_sorted()
                    .into_iter()
                    .map(|n| Probe {
                        list: n.id as u32,
                        distance: n.distance,
                    })
                    .collect()
            }
        }
    }

    /// Stages 2+3 — LUT construction and scan over the given lists,
    /// returning the top-`k` hits. Also usable on an arbitrary list subset,
    /// which is how the hybrid runtime scans only CPU-resident (or only
    /// GPU-resident) clusters.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the index dimensionality or a
    /// list id is out of range.
    pub fn scan_lists(&self, query: &[f32], lists: &[u32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query has wrong dimensionality");
        let mut top = TopK::new(k);
        match &self.config.storage {
            ListStorage::Flat => {
                for &l in lists {
                    let list = &self.lists[l as usize];
                    if let ListData::Flat(store) = &list.data {
                        for (i, v) in store.iter().enumerate() {
                            top.push(list.ids[i], self.config.metric.score(query, v));
                        }
                    }
                }
            }
            ListStorage::Pq(_) => {
                let pq = self.pq.as_ref().expect("PQ storage implies trained PQ");
                let m = pq.m();
                // Non-residual: one LUT serves every probed list. Residual:
                // a per-cluster LUT over (query − centroid) — the per-probe
                // "LUT Cmp" stage of the paper's breakdown.
                let shared = (!self.config.by_residual).then(|| pq.lut(query));
                for &l in lists {
                    let list = &self.lists[l as usize];
                    let per_cluster;
                    let lut = match &shared {
                        Some(lut) => lut,
                        None => {
                            per_cluster = pq.lut(&self.residual_query(query, l));
                            &per_cluster
                        }
                    };
                    if let ListData::Pq(codes) = &list.data {
                        for (i, code) in codes.chunks_exact(m).enumerate() {
                            top.push(list.ids[i], lut.distance(code));
                        }
                    }
                }
            }
            ListStorage::FastScan(_) => {
                let pq = self
                    .pq
                    .as_ref()
                    .expect("fast-scan storage implies trained PQ");
                let shared =
                    (!self.config.by_residual).then(|| QuantizedLut::from_lut(&pq.lut(query)));
                for &l in lists {
                    let per_cluster;
                    let qlut = match &shared {
                        Some(qlut) => qlut,
                        None => {
                            per_cluster =
                                QuantizedLut::from_lut(&pq.lut(&self.residual_query(query, l)));
                            &per_cluster
                        }
                    };
                    if let ListData::FastScan(fs) = &self.lists[l as usize].data {
                        fs.scan(qlut, &mut top);
                    }
                }
            }
        }
        top.into_sorted()
    }

    /// Stages 2+3 over an external [`ClusterStore`] instead of this index's
    /// own lists: the scan path of a *physically tiered* deployment, where
    /// hot clusters are resident arenas and cold clusters are quantized
    /// on-disk extents. The index still owns coarse quantization
    /// ([`IvfIndex::probe`]); the store owns every payload byte.
    ///
    /// # Panics
    ///
    /// Panics if the store disagrees with the index on dimensionality,
    /// cluster count, or metric, or if a list id is out of range.
    pub fn scan_lists_with(
        &self,
        store: &dyn ClusterStore,
        query: &[f32],
        lists: &[u32],
        k: usize,
    ) -> Vec<Neighbor> {
        assert_eq!(store.dim(), self.dim, "store has wrong dimensionality");
        assert_eq!(
            store.n_clusters(),
            self.nlist(),
            "store has wrong cluster count"
        );
        assert_eq!(
            store.metric(),
            self.config.metric,
            "store scores under a different metric"
        );
        crate::scan_lists_store(store, query, lists, k)
    }

    /// Batched counterpart of [`IvfIndex::scan_lists_with`]: scans every
    /// query of a batch through the store in one call, letting tiered
    /// stores run blocked (cluster-major) passes when queries share
    /// probes. Returns each query's top-`k`, in batch order.
    ///
    /// # Panics
    ///
    /// As [`IvfIndex::scan_lists_with`], for any query in the batch.
    pub fn scan_lists_batch_with(
        &self,
        store: &dyn ClusterStore,
        queries: &[BatchQuery<'_>],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        assert_eq!(store.dim(), self.dim, "store has wrong dimensionality");
        assert_eq!(
            store.n_clusters(),
            self.nlist(),
            "store has wrong cluster count"
        );
        assert_eq!(
            store.metric(),
            self.config.metric,
            "store scores under a different metric"
        );
        crate::scan_lists_store_batch(store, queries, k)
    }

    /// Detaches every inverted list's payload (ids + full-precision
    /// vectors), leaving the lists empty — the handoff that moves list
    /// bytes out of the index and into an external [`ClusterStore`].
    /// Returns `None` (index untouched) unless the storage scheme is
    /// [`ListStorage::Flat`].
    ///
    /// After detaching, [`IvfIndex::probe`] and the centroids are
    /// unaffected, but [`IvfIndex::scan_lists`] sees empty lists: all
    /// scanning must go through [`IvfIndex::scan_lists_with`].
    pub fn take_flat_lists(&mut self) -> Option<Vec<(Vec<u64>, VecSet)>> {
        if !matches!(self.config.storage, ListStorage::Flat) {
            return None;
        }
        let dim = self.dim;
        Some(
            self.lists
                .iter_mut()
                .map(|list| {
                    let ids = std::mem::take(&mut list.ids);
                    let data = match &mut list.data {
                        ListData::Flat(store) => std::mem::replace(store, VecSet::new(dim)),
                        _ => unreachable!("flat storage holds flat lists"),
                    };
                    (ids, data)
                })
                .collect(),
        )
    }

    /// The query's residual against one list's centroid.
    fn residual_query(&self, query: &[f32], list: u32) -> Vec<f32> {
        let centroid = self.centroids.centroids().get(list as usize);
        query.iter().zip(centroid).map(|(q, c)| q - c).collect()
    }

    /// Full search: probe then scan.
    ///
    /// # Panics
    ///
    /// Panics if `query.len()` differs from the index dimensionality.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<Neighbor> {
        let probes = self.probe(query, nprobe);
        let lists: Vec<u32> = probes.iter().map(|p| p.list).collect();
        self.scan_lists(query, &lists, k)
    }

    /// Batched search parallelized over queries.
    pub fn search_batch(
        &self,
        queries: &VecSet,
        k: usize,
        nprobe: usize,
        threads: usize,
    ) -> Vec<Vec<Neighbor>> {
        assert_eq!(queries.dim(), self.dim, "queries have wrong dimensionality");
        let n = queries.len();
        let mut out: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        let threads = threads.max(1).min(n.max(1));
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, slice) in out.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                scope.spawn(move || {
                    for (offset, result) in slice.iter_mut().enumerate() {
                        *result = self.search(queries.get(start + offset), k, nprobe);
                    }
                });
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_data(n: usize, dim: usize, seed: u64) -> VecSet {
        let mut rng = StdRng::seed_from_u64(seed);
        VecSet::from_fn(n, dim, |i, _| {
            let center = (i % 8) as f32 * 4.0;
            center + rng.random::<f32>()
        })
    }

    fn recall_vs_flat(index: &IvfIndex, data: &VecSet, k: usize, nprobe: usize) -> f64 {
        let flat = FlatIndex::new(data.clone(), Metric::L2);
        let mut total = 0.0;
        let trials = 20;
        for q in 0..trials {
            let query = data.get(q * 31 % data.len());
            let truth: Vec<u64> = flat.search(query, k).iter().map(|n| n.id).collect();
            let approx = index.search(query, k, nprobe);
            total += approx.iter().filter(|n| truth.contains(&n.id)).count() as f64 / k as f64;
        }
        total / trials as f64
    }

    #[test]
    fn flat_storage_with_full_probe_is_exact() {
        let data = clustered_data(1000, 8, 1);
        let index = IvfIndex::train(&data, &IvfConfig::new(10)).unwrap();
        let recall = recall_vs_flat(&index, &data, 10, 10);
        assert_eq!(recall, 1.0, "probing every list must be exhaustive");
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let data = clustered_data(2000, 8, 2);
        let index = IvfIndex::train(&data, &IvfConfig::new(32)).unwrap();
        let r1 = recall_vs_flat(&index, &data, 10, 1);
        let r8 = recall_vs_flat(&index, &data, 10, 8);
        assert!(r8 >= r1, "r8={r8} r1={r1}");
        assert!(r8 > 0.8, "r8={r8}");
    }

    #[test]
    fn fastscan_top1_distance_within_lut_quantization_error() {
        // Same seeds → identical centroids and codebooks; the only
        // difference between the two indexes is the scan arithmetic, so the
        // top-1 ADC distances must agree within the 8-bit LUT error bound.
        // (Id-level agreement is not required: clustered data produces
        // duplicate codes and therefore ties.)
        let data = clustered_data(1500, 16, 3);
        let pq_cfg = PqConfig {
            m: 4,
            ksub: 16,
            train_iters: 5,
            seed: 7,
        };
        let pq_index = IvfIndex::train(
            &data,
            &IvfConfig::new(16).storage(ListStorage::Pq(pq_cfg.clone())),
        )
        .unwrap();
        let fs_index = IvfIndex::train(
            &data,
            &IvfConfig::new(16).storage(ListStorage::FastScan(pq_cfg)),
        )
        .unwrap();
        for q in 0..20 {
            let query = data.get(q * 71 % data.len());
            let bound = QuantizedLut::from_lut(&pq_index.pq().unwrap().lut(query)).max_error();
            let a = pq_index.search(query, 1, 8)[0].distance;
            let b = fs_index.search(query, 1, 8)[0].distance;
            assert!(
                (a - b).abs() <= bound + 1e-3,
                "query {q}: pq={a} fastscan={b} bound={bound}"
            );
        }
    }

    #[test]
    fn all_vectors_land_in_exactly_one_list() {
        let data = clustered_data(500, 8, 4);
        let index = IvfIndex::train(&data, &IvfConfig::new(8)).unwrap();
        assert_eq!(index.list_sizes().iter().sum::<usize>(), 500);
        assert_eq!(index.len(), 500);
    }

    #[test]
    fn hnsw_coarse_matches_exact_coarse_usually() {
        let data = clustered_data(2000, 8, 5);
        let exact = IvfIndex::train(&data, &IvfConfig::new(64)).unwrap();
        let hnsw = IvfIndex::train(
            &data,
            &IvfConfig::new(64).coarse(CoarseKind::Hnsw(HnswConfig::default())),
        )
        .unwrap();
        let mut overlap = 0usize;
        let mut total = 0usize;
        for q in 0..10 {
            let query = data.get(q * 101 % data.len());
            let pe: Vec<u32> = exact.probe(query, 8).iter().map(|p| p.list).collect();
            let ph: Vec<u32> = hnsw.probe(query, 8).iter().map(|p| p.list).collect();
            overlap += ph.iter().filter(|l| pe.contains(l)).count();
            total += 8;
        }
        assert!(
            overlap as f64 / total as f64 > 0.8,
            "HNSW coarse overlap too low: {overlap}/{total}"
        );
    }

    #[test]
    fn incremental_add_after_train_empty() {
        let data = clustered_data(600, 8, 6);
        let mut index = IvfIndex::train_empty(&data, &IvfConfig::new(8)).unwrap();
        assert!(index.is_empty());
        let ids: Vec<u64> = (1000..1600).collect();
        index.add(&ids, &data).unwrap();
        assert_eq!(index.len(), 600);
        let hits = index.search(data.get(0), 1, 8);
        assert_eq!(hits[0].id, 1000);
    }

    #[test]
    fn fastscan_incremental_add_preserves_existing_codes() {
        let data = clustered_data(512, 16, 7);
        let pq_cfg = PqConfig {
            m: 4,
            ksub: 16,
            train_iters: 4,
            seed: 3,
        };
        let cfg = IvfConfig::new(4).storage(ListStorage::FastScan(pq_cfg));
        let mut index = IvfIndex::train_empty(&data, &cfg).unwrap();
        let half = 256;
        let first: Vec<u64> = (0..half as u64).collect();
        let second: Vec<u64> = (half as u64..512).collect();
        index
            .add(&first, &data.select(&(0..half).collect::<Vec<_>>()))
            .unwrap();
        index
            .add(&second, &data.select(&(half..512).collect::<Vec<_>>()))
            .unwrap();

        // Reference: everything added at once.
        let mut reference = IvfIndex::train_empty(&data, &cfg).unwrap();
        let all: Vec<u64> = (0..512).collect();
        reference.add(&all, &data).unwrap();

        for q in [0usize, 100, 300, 500] {
            let a = index.search(data.get(q), 5, 4);
            let b = reference.search(data.get(q), 5, 4);
            assert_eq!(a, b, "incremental vs bulk mismatch at query {q}");
        }
    }

    #[test]
    fn residual_encoding_improves_recall_on_tight_clusters() {
        // Tight blobs: raw PQ collapses within-cluster structure; residual
        // codebooks operate at the noise scale and resolve it.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let data = VecSet::from_fn(3000, 16, |i, _| {
            (i % 12) as f32 * 8.0 + rng.random::<f32>() * 0.5
        });
        let pq_cfg = PqConfig {
            m: 4,
            ksub: 32,
            train_iters: 6,
            seed: 5,
        };
        let raw = IvfIndex::train(
            &data,
            &IvfConfig::new(12).storage(ListStorage::Pq(pq_cfg.clone())),
        )
        .unwrap();
        let residual = IvfIndex::train(
            &data,
            &IvfConfig::new(12)
                .storage(ListStorage::Pq(pq_cfg))
                .by_residual(true),
        )
        .unwrap();
        let r_raw = recall_vs_flat(&raw, &data, 10, 4);
        let r_res = recall_vs_flat(&residual, &data, 10, 4);
        assert!(
            r_res > r_raw + 0.1,
            "residual recall {r_res} should clearly beat raw {r_raw}"
        );
    }

    #[test]
    fn residual_fastscan_matches_residual_pq_closely() {
        let data = clustered_data(1200, 16, 13);
        let pq_cfg = PqConfig {
            m: 4,
            ksub: 32,
            train_iters: 5,
            seed: 6,
        };
        let pq_idx = IvfIndex::train(
            &data,
            &IvfConfig::new(8)
                .storage(ListStorage::Pq(pq_cfg.clone()))
                .by_residual(true),
        )
        .unwrap();
        let fs_idx = IvfIndex::train(
            &data,
            &IvfConfig::new(8)
                .storage(ListStorage::FastScan(pq_cfg))
                .by_residual(true),
        )
        .unwrap();
        for q in 0..10 {
            let query = data.get(q * 111 % data.len());
            let a = pq_idx.search(query, 1, 4)[0].distance;
            let b = fs_idx.search(query, 1, 4)[0].distance;
            let bound = QuantizedLut::from_lut(&pq_idx.pq().unwrap().lut(query)).max_error() * 4.0;
            assert!((a - b).abs() <= bound + 1e-2, "q{q}: {a} vs {b}");
        }
    }

    #[test]
    fn cosine_with_pq_storage_rejected() {
        let data = clustered_data(200, 8, 14);
        let cfg = IvfConfig::new(4)
            .metric(Metric::Cosine)
            .storage(ListStorage::Pq(PqConfig {
                m: 4,
                ksub: 16,
                train_iters: 3,
                seed: 1,
            }));
        assert!(matches!(
            IvfIndex::train(&data, &cfg),
            Err(AnnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn residual_with_flat_storage_rejected() {
        let data = clustered_data(200, 8, 15);
        let cfg = IvfConfig::new(4).by_residual(true);
        assert!(matches!(
            IvfIndex::train(&data, &cfg),
            Err(AnnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn cosine_flat_index_ranks_by_angle() {
        let mut data = VecSet::new(2);
        data.push(&[10.0, 0.1]); // nearly aligned with +x, large norm
        data.push(&[0.1, 10.0]); // orthogonal-ish
        data.push(&[1.0, 0.0]); // exactly aligned, small norm
        let cfg = IvfConfig::new(1).metric(Metric::Cosine);
        let index = IvfIndex::train(&data, &cfg).unwrap();
        let hits = index.search(&[5.0, 0.0], 3, 1);
        assert_eq!(
            hits[0].id, 2,
            "exact angular match must win regardless of norm"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let data = clustered_data(100, 8, 8);
        let mut index = IvfIndex::train_empty(&data, &IvfConfig::new(4)).unwrap();
        let wrong = VecSet::from_fn(10, 4, |_, _| 0.0);
        assert!(matches!(
            index.add(&[0; 10], &wrong),
            Err(AnnError::DimensionMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn probe_respects_nprobe_clamp() {
        let data = clustered_data(100, 8, 9);
        let index = IvfIndex::train(&data, &IvfConfig::new(4)).unwrap();
        assert_eq!(index.probe(data.get(0), 100).len(), 4);
        assert_eq!(index.probe(data.get(0), 2).len(), 2);
    }

    #[test]
    fn batch_search_matches_single() {
        let data = clustered_data(400, 8, 10);
        let index = IvfIndex::train(&data, &IvfConfig::new(8)).unwrap();
        let queries = data.select(&[5, 50, 100, 200, 399]);
        let batch = index.search_batch(&queries, 3, 4, 3);
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], index.search(q, 3, 4));
        }
    }
}
