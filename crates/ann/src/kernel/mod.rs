//! Runtime-dispatched SIMD distance kernels.
//!
//! Every distance computed by this workspace funnels through three
//! primitives — f32 dot product, f32 squared-L2, and the SQ8
//! asymmetric-distance LUT sum — and all three were scalar loops until
//! this module. Here they get hand-written `std::arch` implementations:
//!
//! - **AVX2 + FMA** on `x86_64` ([`x86`]): 8-lane `f32` with fused
//!   multiply-add, two independent accumulators for ILP, and
//!   `vgatherdps` for the SQ8 table walk.
//! - **NEON** on `aarch64` ([`neon`]): 4-lane `f32` with `vfmaq_f32`
//!   (the SQ8 LUT walk stays scalar — NEON has no gather).
//! - **Scalar** ([`scalar`]): the portable fallback, kept permanently as
//!   the reference the property tests compare the SIMD paths against.
//!
//! # Dispatch
//!
//! Feature detection runs **once** per process ([`detected`], a
//! `OnceLock` over CPUID / `getauxval`) — never inside a scan loop. Call
//! sites either use the convenience entry points ([`dot`], [`l2_sq`],
//! [`sq8_lut_sum`]), which cost one relaxed atomic load per call, or —
//! on scan hot paths — resolve a [`Kernels`] table once per cluster pass
//! via [`kernels`] and loop over plain function pointers, so the inner
//! loop carries no dispatch branching at all.
//!
//! Setting `VLITE_FORCE_SCALAR=1` in the environment pins dispatch to
//! the scalar kernels (read once, at first dispatch); CI's kernel
//! equivalence matrix runs the whole test suite under both settings.
//! [`force_scalar`] / [`clear_force`] override the choice at runtime for
//! in-process A/B benchmarks (`serve_smoke --kernels`).
//!
//! # Accuracy contract
//!
//! The SIMD kernels reassociate the reduction (lane-parallel partial
//! sums, FMA contraction), so results may differ from the scalar
//! kernels. The documented bound, asserted by the property tests in
//! `tests/kernel_props.rs`: each of the `n` accumulation steps may
//! contribute at most one unit of rounding at the running magnitude,
//! i.e. `|simd − scalar| ≤ n · ε_f32 · Σ|termᵢ|` (for L2 and SQ8 the
//! terms are non-negative, so the envelope is `n · ε · result`).
//! Where the operation order allows no reassociation (length ≤ 1 blocks,
//! the scalar tail) results are bit-exact.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

pub mod scalar;

// The audited unsafe surface of this crate: raw `std::arch` intrinsics
// behind CPUID-gated wrappers. `vlite-analyze`'s `unsafe-audit` rule
// allowlists exactly these files and still requires a SAFETY comment at
// every site.
#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon;
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86;

/// Which kernel implementation dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable scalar loops (always available, always tested).
    Scalar,
    /// AVX2 + FMA on `x86_64` (8-lane f32, gather-based SQ8).
    Avx2Fma,
    /// NEON on `aarch64` (4-lane f32; SQ8 stays scalar).
    Neon,
}

impl KernelKind {
    /// Stable lowercase name for reports, CSV rows and Prometheus labels.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Avx2Fma => "avx2_fma",
            KernelKind::Neon => "neon",
        }
    }

    fn index(self) -> usize {
        match self {
            KernelKind::Scalar => 0,
            KernelKind::Avx2Fma => 1,
            KernelKind::Neon => 2,
        }
    }
}

/// The best kernel this CPU supports, independent of any override — the
/// dispatcher's one-time feature detection (CPUID on `x86_64`,
/// `getauxval`-backed detection on `aarch64`), cached in a `OnceLock` so
/// no scan path ever re-runs it.
pub fn detected() -> KernelKind {
    static DETECTED: OnceLock<KernelKind> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return KernelKind::Avx2Fma;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return KernelKind::Neon;
            }
        }
        KernelKind::Scalar
    })
}

/// Whether `VLITE_FORCE_SCALAR=1` was set when dispatch first ran (the
/// environment is read once; changing it later has no effect).
fn env_forces_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("VLITE_FORCE_SCALAR")
            .map(|v| v == "1")
            .unwrap_or(false)
    })
}

/// Runtime override: 0 = follow `VLITE_FORCE_SCALAR` + detection,
/// 1 = force scalar, 2 = force the detected kernel (ignore the env var).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Forces dispatch to the scalar kernels from now on — the in-process
/// counterpart of `VLITE_FORCE_SCALAR=1`, used by benchmarks that A/B
/// the kernels inside one process. Undo with [`clear_force`].
pub fn force_scalar() {
    // relaxed: a dispatch preference flag; every kernel it selects
    // computes the same mathematical result, so no ordering is needed.
    OVERRIDE.store(1, Ordering::Relaxed);
}

/// Forces dispatch to the detected kernel, overriding both a previous
/// [`force_scalar`] *and* `VLITE_FORCE_SCALAR` (benchmark use only).
pub fn force_native() {
    // relaxed: same dispatch preference flag as `force_scalar`.
    OVERRIDE.store(2, Ordering::Relaxed);
}

/// Restores default dispatch (`VLITE_FORCE_SCALAR` + detection).
pub fn clear_force() {
    // relaxed: same dispatch preference flag as `force_scalar`.
    OVERRIDE.store(0, Ordering::Relaxed);
}

/// The kernel dispatch would select right now — the self-report the CI
/// kernel-equivalence matrix asserts against.
pub fn active() -> KernelKind {
    // relaxed: reading the dispatch preference; any raced value selects
    // a correct kernel.
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => KernelKind::Scalar,
        2 => detected(),
        _ => {
            if env_forces_scalar() {
                KernelKind::Scalar
            } else {
                detected()
            }
        }
    }
}

/// How many times [`kernels`] resolved each kind — the "was the SIMD
/// path actually exercised?" evidence the equivalence tests assert.
static RESOLUTIONS: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

/// Times [`kernels`] has resolved to `kind` since process start.
pub fn resolution_count(kind: KernelKind) -> u64 {
    // relaxed: monotone telemetry counter, read only by tests/reports.
    RESOLUTIONS[kind.index()].load(Ordering::Relaxed)
}

/// A resolved kernel table: plain function pointers, so a scan loop pays
/// dispatch exactly once per pass and zero branches per vector.
#[derive(Clone, Copy)]
pub struct Kernels {
    /// Which implementation the table points at.
    pub kind: KernelKind,
    /// Inner (dot) product over equal-length slices.
    pub dot: fn(&[f32], &[f32]) -> f32,
    /// Squared Euclidean distance over equal-length slices.
    pub l2_sq: fn(&[f32], &[f32]) -> f32,
    /// SQ8 LUT sum: `Σⱼ table[j·256 + codes[j]]` with
    /// `table.len() == codes.len() · 256`.
    pub sq8_lut_sum: fn(&[f32], &[u8]) -> f32,
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels").field("kind", &self.kind).finish()
    }
}

const SCALAR_KERNELS: Kernels = Kernels {
    kind: KernelKind::Scalar,
    dot: scalar::dot,
    l2_sq: scalar::l2_sq,
    sq8_lut_sum: scalar::sq8_lut_sum,
};

/// Resolves the active kernel table. Call once per scan pass, not per
/// vector: the table itself is two words and `Copy`.
pub fn kernels() -> Kernels {
    let kind = active();
    // relaxed: monotone telemetry counter (see `resolution_count`).
    RESOLUTIONS[kind.index()].fetch_add(1, Ordering::Relaxed);
    match kind {
        KernelKind::Scalar => SCALAR_KERNELS,
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => Kernels {
            kind,
            dot: x86::dot,
            l2_sq: x86::l2_sq,
            sq8_lut_sum: x86::sq8_lut_sum,
        },
        #[cfg(target_arch = "aarch64")]
        KernelKind::Neon => Kernels {
            kind,
            dot: neon::dot,
            l2_sq: neon::l2_sq,
            // NEON has no gather; the LUT walk stays scalar.
            sq8_lut_sum: scalar::sq8_lut_sum,
        },
        // A kind whose arch is compiled out can never be detected here.
        #[allow(unreachable_patterns)]
        _ => SCALAR_KERNELS,
    }
}

/// Dispatched inner (dot) product.
///
/// # Panics
///
/// Panics if the slices differ in length. The check is load-bearing for
/// the SIMD paths (their unchecked lane loads assume equal lengths), so
/// it runs in release builds too; one compare per kernel call is noise
/// next to the reduction itself.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => x86::dot(a, b),
        #[cfg(target_arch = "aarch64")]
        KernelKind::Neon => neon::dot(a, b),
        _ => scalar::dot(a, b),
    }
}

/// Dispatched squared Euclidean (L2²) distance.
///
/// # Panics
///
/// Panics if the slices differ in length (release builds included — see
/// [`dot`]).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => x86::l2_sq(a, b),
        #[cfg(target_arch = "aarch64")]
        KernelKind::Neon => neon::l2_sq(a, b),
        _ => scalar::l2_sq(a, b),
    }
}

/// Dispatched SQ8 LUT sum: `Σⱼ table[j·256 + codes[j]]`.
///
/// # Panics
///
/// Panics if `table.len() != codes.len() * 256` (release builds
/// included — see [`dot`]).
#[inline]
pub fn sq8_lut_sum(table: &[f32], codes: &[u8]) -> f32 {
    assert_eq!(table.len(), codes.len() * 256);
    match active() {
        #[cfg(target_arch = "x86_64")]
        KernelKind::Avx2Fma => x86::sq8_lut_sum(table, codes),
        _ => scalar::sq8_lut_sum(table, codes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The shared per-test tolerance: `n · ε · Σ|terms|` (the module's
    /// documented reassociation envelope) plus a whisker of absolute
    /// slack for all-zero inputs.
    fn bound(n: usize, abs_sum: f32) -> f32 {
        (n as f32) * f32::EPSILON * abs_sum + 1e-12
    }

    #[test]
    fn detected_kernel_matches_arch_expectations() {
        let k = detected();
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        assert_eq!(k, KernelKind::Scalar);
        #[cfg(target_arch = "aarch64")]
        assert_ne!(k, KernelKind::Avx2Fma);
        #[cfg(target_arch = "x86_64")]
        assert_ne!(k, KernelKind::Neon);
    }

    #[test]
    fn all_kernels_agree_on_fixed_vectors() {
        let n = 67; // odd length exercises every tail path
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..n).map(|i| (i as f32 * 0.21).cos()).collect();
        let table = kernels();
        let dot_abs: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        assert!(
            ((table.dot)(&a, &b) - scalar::dot(&a, &b)).abs() <= bound(n, dot_abs),
            "dot disagrees beyond the documented envelope"
        );
        let l2_ref = scalar::l2_sq(&a, &b);
        assert!(((table.l2_sq)(&a, &b) - l2_ref).abs() <= bound(n, l2_ref));
    }

    #[test]
    fn sq8_kernels_agree_on_fixed_codes() {
        let dim = 19;
        let table: Vec<f32> = (0..dim * 256).map(|i| ((i % 97) as f32) * 0.013).collect();
        let codes: Vec<u8> = (0..dim).map(|j| (j * 41 % 256) as u8).collect();
        let want = scalar::sq8_lut_sum(&table, &codes);
        let got = (kernels().sq8_lut_sum)(&table, &codes);
        assert!((got - want).abs() <= bound(dim, want.abs()));
    }

    #[test]
    fn empty_and_single_lane_inputs_are_bit_exact() {
        let table = kernels();
        assert_eq!((table.dot)(&[], &[]), 0.0);
        assert_eq!((table.l2_sq)(&[], &[]), 0.0);
        // Length 1 admits no reassociation: bit-exact by contract.
        assert_eq!((table.dot)(&[3.5], &[-2.0]), scalar::dot(&[3.5], &[-2.0]));
        assert_eq!((table.sq8_lut_sum)(&[0.0; 256], &[7]), 0.0);
    }
}
