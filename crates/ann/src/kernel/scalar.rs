//! Portable scalar kernels — the always-available dispatch fallback and
//! the reference implementation every SIMD kernel is property-tested
//! against.
//!
//! The f32 loops are manually unrolled 4-wide into independent lane
//! accumulators; on x86-64 the compiler auto-vectorizes them to SSE/AVX
//! even without the hand-written kernels, which is what stood in for
//! Faiss's SIMD before the `kernel` module existed.

/// Scalar squared Euclidean (L2²) distance.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            let d = a[base + lane] - b[base + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Scalar inner (dot) product.
///
/// # Panics
///
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Scalar SQ8 LUT sum: `Σⱼ table[j·256 + codes[j]]` — the asymmetric-
/// distance accumulation over one stored vector's codes, `table` being
/// the per-query `dim × 256` lookup table.
///
/// # Panics
///
/// Panics in debug builds if `table.len() != codes.len() * 256`.
#[inline]
pub fn sq8_lut_sum(table: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(table.len(), codes.len() * 256);
    let mut sum = 0.0f32;
    for (j, &c) in codes.iter().enumerate() {
        sum += table[j * 256 + usize::from(c)];
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_on_odd_lengths() {
        for n in [0, 1, 3, 4, 5, 7, 16, 33, 100] {
            let a: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
            let b: Vec<f32> = (0..n).map(|i| (n - i) as f32 * 0.25).collect();
            let naive_l2: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            let naive_dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((l2_sq(&a, &b) - naive_l2).abs() < 1e-3, "n={n}");
            assert!((dot(&a, &b) - naive_dot).abs() < 1e-3, "n={n}");
        }
    }

    #[test]
    fn lut_sum_matches_naive() {
        let dim = 9;
        let table: Vec<f32> = (0..dim * 256).map(|i| i as f32 * 0.001).collect();
        let codes: Vec<u8> = (0..dim).map(|j| (j * 29) as u8).collect();
        let naive: f32 = codes
            .iter()
            .enumerate()
            .map(|(j, &c)| table[j * 256 + usize::from(c)])
            .sum();
        assert_eq!(sq8_lut_sum(&table, &codes), naive);
    }
}
