//! NEON kernels for `aarch64`.
//!
//! Safe wrappers over `#[target_feature(enable = "neon")]` inner
//! functions, reachable only through the dispatcher in [`super`] after
//! one-time feature detection. 4-lane f32 with `vfmaq_f32`, two
//! independent accumulators for ILP. NEON has no gather instruction, so
//! the SQ8 LUT walk stays on [`super::scalar`] (see the dispatch table
//! in [`super::kernels`]).
//!
//! Accuracy: same reassociation envelope as the AVX2 kernels, documented
//! in [`super`]; scalar tails and length ≤ 1 inputs are bit-exact.

use std::arch::aarch64::{vaddq_f32, vaddvq_f32, vdupq_n_f32, vfmaq_f32, vld1q_f32, vsubq_f32};

/// NEON inner (dot) product; dispatch-only entry.
///
/// # Panics
///
/// Panics if the slices differ in length (the assert is load-bearing:
/// it is what makes the unchecked 4-lane loads below sound).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    // SAFETY: the dispatcher routes to this module only after runtime
    // feature detection confirmed NEON, satisfying `dot_neon`'s sole
    // (target-feature) precondition; all loads stay within the slice
    // lengths just asserted equal (in all build profiles).
    unsafe { dot_neon(a, b) }
}

/// NEON squared-L2 distance; dispatch-only entry.
///
/// # Panics
///
/// Panics if the slices differ in length (the assert is load-bearing:
/// it is what makes the unchecked 4-lane loads below sound).
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    // SAFETY: same argument as `dot` — feature-gated dispatch
    // guarantees the NEON target-feature precondition of `l2_sq_neon`,
    // and the length equality the loads rely on was just asserted.
    unsafe { l2_sq_neon(a, b) }
}

// SAFETY: `unsafe` is the target-feature contract only (callers checked
// detection); every `vld1q_f32` reads 4 f32 at offset i with
// `i + 4 <= n` maintained by the loop bounds, tail via safe indexing.
#[target_feature(enable = "neon")]
unsafe fn dot_neon(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 8 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc1 = vfmaq_f32(acc1, vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
        i += 8;
    }
    if i + 4 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        i += 4;
    }
    let mut sum = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        sum += a[i] * b[i];
        i += 1;
    }
    sum
}

// SAFETY: `unsafe` is the target-feature contract only (callers checked
// detection); load bounds identical to `dot_neon` (`i + 4 <= n` before
// each 4-lane load), scalar tail via safe indexing.
#[target_feature(enable = "neon")]
unsafe fn l2_sq_neon(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let d0 = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc0 = vfmaq_f32(acc0, d0, d0);
        let d1 = vsubq_f32(vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
        acc1 = vfmaq_f32(acc1, d1, d1);
        i += 8;
    }
    if i + 4 <= n {
        let d = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc0 = vfmaq_f32(acc0, d, d);
        i += 4;
    }
    let mut sum = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        let d = a[i] - b[i];
        sum += d * d;
        i += 1;
    }
    sum
}
