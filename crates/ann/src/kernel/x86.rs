//! AVX2 + FMA kernels for `x86_64`.
//!
//! Each public entry is a safe wrapper over a `#[target_feature]` inner
//! function; the wrappers are only reachable through the dispatcher in
//! [`super`], which routes here strictly after one-time CPUID detection
//! confirmed `avx2` and `fma`. The f32 reductions run two independent
//! 8-lane FMA accumulators (breaking the dependency chain for ILP); the
//! SQ8 LUT walk widens 8 codes to `u32` lanes and fetches all 8 table
//! entries with one `vgatherdps`.
//!
//! Accuracy: lane-parallel partial sums + FMA contraction reassociate
//! the reduction, bounded by the envelope documented in [`super`]
//! (`n · ε · Σ|termᵢ|`); scalar tails and length ≤ 1 inputs are
//! bit-exact against [`super::scalar`].

use std::arch::x86_64::{
    __m128i, __m256, _mm256_add_epi32, _mm256_add_ps, _mm256_castps256_ps128, _mm256_cvtepu8_epi32,
    _mm256_extractf128_ps, _mm256_fmadd_ps, _mm256_i32gather_ps, _mm256_loadu_ps, _mm256_set_epi32,
    _mm256_setzero_ps, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32, _mm_loadl_epi64,
    _mm_movehdup_ps, _mm_movehl_ps,
};

/// AVX2+FMA inner (dot) product; dispatch-only entry.
///
/// # Panics
///
/// Panics if the slices differ in length (the assert is load-bearing:
/// it is what makes the unchecked 8-lane loads below sound).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    // SAFETY: the dispatcher routes to this module only after CPUID
    // detection confirmed avx2+fma, satisfying `dot_avx2`'s sole
    // (target-feature) precondition; slice lengths were just asserted
    // equal (in all build profiles) and all loads below stay within
    // them.
    unsafe { dot_avx2(a, b) }
}

/// AVX2+FMA squared-L2 distance; dispatch-only entry.
///
/// # Panics
///
/// Panics if the slices differ in length (the assert is load-bearing:
/// it is what makes the unchecked 8-lane loads below sound).
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    // SAFETY: same argument as `dot` — CPUID-gated dispatch guarantees
    // the avx2+fma target-feature precondition of `l2_sq_avx2`, and the
    // length equality the loads rely on was just asserted.
    unsafe { l2_sq_avx2(a, b) }
}

/// AVX2 gather-based SQ8 LUT sum; dispatch-only entry.
///
/// # Panics
///
/// Panics if `table.len() != codes.len() * 256` (the assert is
/// load-bearing: it is what makes the gather bound argument sound).
pub fn sq8_lut_sum(table: &[f32], codes: &[u8]) -> f32 {
    assert_eq!(table.len(), codes.len() * 256);
    // SAFETY: CPUID-gated dispatch guarantees the avx2 target-feature
    // precondition; the table/codes length relation the gather bound
    // depends on was just asserted (in all build profiles), and the
    // gather index bound (< 2048 f32 from the moving base) is argued at
    // the gather site inside.
    unsafe { sq8_avx2(table, codes) }
}

// SAFETY: `unsafe` is the target-feature contract only (callers checked
// CPUID); every `loadu` reads 8 f32 at offset i with `i + 8 <= n`
// maintained by the loop bounds, and the tail indexes via safe slices.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
            acc1,
        );
        i += 16;
    }
    if i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        i += 8;
    }
    let mut sum = hsum8(_mm256_add_ps(acc0, acc1));
    while i < n {
        sum += a[i] * b[i];
        i += 1;
    }
    sum
}

// SAFETY: `unsafe` is the target-feature contract only (callers checked
// CPUID); load bounds identical to `dot_avx2` (`i + 8 <= n` before each
// 8-lane `loadu`), scalar tail via safe indexing.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn l2_sq_avx2(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        let d1 = _mm256_sub_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
        );
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        i += 16;
    }
    if i + 8 <= n {
        let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        acc0 = _mm256_fmadd_ps(d, d, acc0);
        i += 8;
    }
    let mut sum = hsum8(_mm256_add_ps(acc0, acc1));
    while i < n {
        let d = a[i] - b[i];
        sum += d * d;
        i += 1;
    }
    sum
}

// SAFETY: `unsafe` is the target-feature contract only (callers checked
// CPUID). Bounds: the 8-byte `loadl_epi64` reads codes[j..j+8] under
// `j + 8 <= dim`; the gather reads lane k at f32 index
// `j·256 + k·256 + codes[j+k] ≤ (j+7)·256 + 255 < dim·256 = table.len()`
// (the caller asserted that length), so every gathered element is
// in-bounds.
#[target_feature(enable = "avx2")]
unsafe fn sq8_avx2(table: &[f32], codes: &[u8]) -> f32 {
    let dim = codes.len();
    // Per-lane row offsets: lane k of a gather starting at dim j reads
    // row j+k, i.e. byte-index (k·256 + code) into the f32 table slice
    // based at j·256. (`set_epi32` takes the highest lane first.)
    let row_off = _mm256_set_epi32(1792, 1536, 1280, 1024, 768, 512, 256, 0);
    let mut acc = _mm256_setzero_ps();
    let mut j = 0usize;
    while j + 8 <= dim {
        let codes8 = _mm_loadl_epi64(codes.as_ptr().add(j).cast::<__m128i>());
        let idx = _mm256_add_epi32(_mm256_cvtepu8_epi32(codes8), row_off);
        acc = _mm256_add_ps(
            acc,
            _mm256_i32gather_ps::<4>(table.as_ptr().add(j * 256), idx),
        );
        j += 8;
    }
    let mut sum = hsum8(acc);
    while j < dim {
        sum += table[j * 256 + usize::from(codes[j])];
        j += 1;
    }
    sum
}

// SAFETY: `unsafe` is the target-feature contract only (pure register
// shuffles and adds, no memory access); only called from the avx2
// kernels above, which are themselves CPUID-gated.
#[target_feature(enable = "avx2")]
unsafe fn hsum8(v: __m256) -> f32 {
    let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps::<1>(v));
    let s = _mm_add_ps(s, _mm_movehdup_ps(s));
    _mm_cvtss_f32(_mm_add_ss(s, _mm_movehl_ps(s, s)))
}
