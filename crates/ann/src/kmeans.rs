//! K-means clustering (Lloyd's algorithm).
//!
//! Trains both the IVF coarse centroids and, per subspace, the PQ codebooks.
//! Assignment is parallelized over data chunks with scoped threads; centroid
//! updates are sequential (they are O(n·d) and not the bottleneck).

use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::{Rng, SeedableRng};

use crate::{l2_sq, AnnError, Result, VecSet};

/// Centroid initialization strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KMeansInit {
    /// Uniform sample of distinct training points. O(k) — the right choice
    /// for large `k` (IVF coarse training with thousands of lists).
    #[default]
    RandomSample,
    /// k-means++ D² weighting. O(n·k) — better seeds for small `k`
    /// (PQ codebooks with 256 centroids per subspace).
    PlusPlus,
}

/// Configuration for [`KMeans::train`].
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Relative improvement in mean quantization error below which training
    /// stops early.
    pub tolerance: f64,
    /// Initialization strategy.
    pub init: KMeansInit,
    /// RNG seed (training is fully deterministic given the seed).
    pub seed: u64,
    /// Number of worker threads for the assignment step; `1` disables
    /// threading.
    pub threads: usize,
}

impl KMeansConfig {
    /// Creates a config with `k` clusters and defaults suitable for IVF
    /// coarse training (random-sample init, 10 iterations).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_iters: 10,
            tolerance: 1e-4,
            init: KMeansInit::RandomSample,
            seed: 0x5eed,
            threads: 4,
        }
    }

    /// Sets the iteration budget.
    pub fn max_iters(mut self, iters: usize) -> Self {
        self.max_iters = iters;
        self
    }

    /// Sets the initialization strategy.
    pub fn init(mut self, init: KMeansInit) -> Self {
        self.init = init;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the assignment thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be >= 1");
        self.threads = threads;
        self
    }
}

/// A trained k-means model: the centroid set.
///
/// # Examples
///
/// ```
/// use vlite_ann::{KMeans, KMeansConfig, VecSet};
///
/// // Two well-separated blobs on a line.
/// let data = VecSet::from_fn(100, 1, |i, _| if i % 2 == 0 { 0.0 } else { 10.0 });
/// let model = KMeans::train(&data, &KMeansConfig::new(2))?;
/// let a = model.assign_one(&[0.1]);
/// let b = model.assign_one(&[9.9]);
/// assert_ne!(a, b);
/// # Ok::<(), vlite_ann::AnnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: VecSet,
}

impl KMeans {
    /// Trains `config.k` centroids on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::InsufficientTrainingData`] if `data` holds fewer
    /// than `k` vectors, and [`AnnError::InvalidConfig`] for `k == 0`.
    pub fn train(data: &VecSet, config: &KMeansConfig) -> Result<KMeans> {
        if config.k == 0 {
            return Err(AnnError::InvalidConfig("k-means requires k >= 1".into()));
        }
        if data.len() < config.k {
            return Err(AnnError::InsufficientTrainingData {
                required: config.k,
                supplied: data.len(),
            });
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut centroids = match config.init {
            KMeansInit::RandomSample => init_random(data, config.k, &mut rng),
            KMeansInit::PlusPlus => init_plus_plus(data, config.k, &mut rng),
        };

        let mut prev_err = f64::INFINITY;
        let mut assignments = vec![0u32; data.len()];
        for _ in 0..config.max_iters {
            let err = assign_parallel(data, &centroids, &mut assignments, config.threads);
            update_centroids(data, &assignments, &mut centroids, &mut rng);
            if prev_err.is_finite() && (prev_err - err).abs() <= config.tolerance * prev_err {
                break;
            }
            prev_err = err;
        }
        Ok(KMeans { centroids })
    }

    /// Builds a model directly from externally computed centroids.
    pub fn from_centroids(centroids: VecSet) -> KMeans {
        KMeans { centroids }
    }

    /// The trained centroids.
    pub fn centroids(&self) -> &VecSet {
        &self.centroids
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Assigns one vector to its nearest centroid, returning the cluster id.
    pub fn assign_one(&self, v: &[f32]) -> u32 {
        let mut best = 0u32;
        let mut best_d = f32::INFINITY;
        for (c, centroid) in self.centroids.iter().enumerate() {
            let d = l2_sq(v, centroid);
            if d < best_d {
                best_d = d;
                best = c as u32;
            }
        }
        best
    }

    /// Assigns every vector of `data`, returning per-vector cluster ids.
    pub fn assign(&self, data: &VecSet) -> Vec<u32> {
        let mut out = vec![0u32; data.len()];
        assign_parallel(data, &self.centroids, &mut out, 4);
        out
    }

    /// Mean squared quantization error of `data` under this model.
    pub fn quantization_error(&self, data: &VecSet) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0f64;
        for v in data.iter() {
            let c = self.assign_one(v);
            total += f64::from(l2_sq(v, self.centroids.get(c as usize)));
        }
        total / data.len() as f64
    }
}

fn init_random(data: &VecSet, k: usize, rng: &mut StdRng) -> VecSet {
    let picks = sample(rng, data.len(), k);
    let rows: Vec<usize> = picks.into_iter().collect();
    data.select(&rows)
}

fn init_plus_plus(data: &VecSet, k: usize, rng: &mut StdRng) -> VecSet {
    let mut centroids = VecSet::with_capacity(data.dim(), k);
    let first = rng.random_range(0..data.len());
    centroids.push(data.get(first));
    let mut d2: Vec<f32> = data.iter().map(|v| l2_sq(v, centroids.get(0))).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().map(|&d| f64::from(d)).sum();
        let next = if total <= 0.0 {
            rng.random_range(0..data.len())
        } else {
            let mut target = rng.random::<f64>() * total;
            let mut chosen = data.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= f64::from(d);
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(data.get(next));
        let newest = centroids.get(centroids.len() - 1).to_vec();
        for (i, v) in data.iter().enumerate() {
            let d = l2_sq(v, &newest);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

/// Assigns each vector to its nearest centroid; returns the mean squared
/// error. Parallel over contiguous chunks.
fn assign_parallel(
    data: &VecSet,
    centroids: &VecSet,
    assignments: &mut [u32],
    threads: usize,
) -> f64 {
    let n = data.len();
    if n == 0 {
        return 0.0;
    }
    let threads = threads.max(1).min(n);
    let chunk = n.div_ceil(threads);
    let mut chunk_errs = vec![0.0f64; threads];

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, (slice, err)) in assignments
            .chunks_mut(chunk)
            .zip(chunk_errs.iter_mut())
            .enumerate()
        {
            let start = t * chunk;
            handles.push(scope.spawn(move || {
                let mut local_err = 0.0f64;
                for (offset, out) in slice.iter_mut().enumerate() {
                    let v = data.get(start + offset);
                    let mut best = 0u32;
                    let mut best_d = f32::INFINITY;
                    for (c, centroid) in centroids.iter().enumerate() {
                        let d = l2_sq(v, centroid);
                        if d < best_d {
                            best_d = d;
                            best = c as u32;
                        }
                    }
                    *out = best;
                    local_err += f64::from(best_d);
                }
                *err = local_err;
            }));
        }
        for h in handles {
            h.join().expect("k-means worker panicked");
        }
    });
    chunk_errs.iter().sum::<f64>() / n as f64
}

/// Recomputes centroids as assignment means; re-seeds empty clusters from
/// random points of the largest cluster (Faiss's `split` repair policy).
fn update_centroids(data: &VecSet, assignments: &[u32], centroids: &mut VecSet, rng: &mut StdRng) {
    let k = centroids.len();
    let dim = data.dim();
    let mut sums = vec![0.0f64; k * dim];
    let mut counts = vec![0usize; k];
    for (i, v) in data.iter().enumerate() {
        let c = assignments[i] as usize;
        counts[c] += 1;
        for (j, &x) in v.iter().enumerate() {
            sums[c * dim + j] += f64::from(x);
        }
    }
    let largest = (0..k).max_by_key(|&c| counts[c]).unwrap_or(0);
    for c in 0..k {
        if counts[c] == 0 {
            // Empty cluster: re-seed from a random member of the largest one,
            // nudged so the two copies diverge next iteration.
            let members: Vec<usize> = (0..data.len())
                .filter(|&i| assignments[i] as usize == largest)
                .collect();
            if let Some(&pick) = members.get(rng.random_range(0..members.len().max(1))) {
                let src = data.get(pick).to_vec();
                let dst = centroids.get_mut(c);
                for (j, x) in src.iter().enumerate() {
                    dst[j] = x * (1.0 + 1e-4) + 1e-6;
                }
            }
            continue;
        }
        let dst = centroids.get_mut(c);
        for j in 0..dim {
            dst[j] = (sums[c * dim + j] / counts[c] as f64) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn blobs(n_per: usize, centers: &[[f32; 2]], seed: u64) -> VecSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = VecSet::new(2);
        for c in centers {
            for _ in 0..n_per {
                set.push(&[
                    c[0] + rng.random::<f32>() * 0.1,
                    c[1] + rng.random::<f32>() * 0.1,
                ]);
            }
        }
        set
    }

    #[test]
    fn separates_well_separated_blobs() {
        let data = blobs(50, &[[0.0, 0.0], [10.0, 10.0], [-10.0, 5.0]], 1);
        // k-means++ seeding makes separation of well-spread blobs reliable;
        // random-sample init can land two seeds in one blob and stall in a
        // local optimum (which is expected Lloyd behaviour, not a bug).
        let cfg = KMeansConfig::new(3)
            .max_iters(20)
            .init(KMeansInit::PlusPlus);
        let model = KMeans::train(&data, &cfg).unwrap();
        // Every blob maps to a single distinct cluster.
        let a = model.assign_one(&[0.05, 0.05]);
        let b = model.assign_one(&[10.0, 10.0]);
        let c = model.assign_one(&[-10.0, 5.0]);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        assert!(model.quantization_error(&data) < 0.1);
    }

    #[test]
    fn plus_plus_init_also_converges() {
        let data = blobs(50, &[[0.0, 0.0], [10.0, 10.0]], 2);
        let cfg = KMeansConfig::new(2)
            .init(KMeansInit::PlusPlus)
            .max_iters(20);
        let model = KMeans::train(&data, &cfg).unwrap();
        assert!(model.quantization_error(&data) < 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(30, &[[0.0, 0.0], [5.0, 5.0]], 3);
        let m1 = KMeans::train(&data, &KMeansConfig::new(2).seed(7)).unwrap();
        let m2 = KMeans::train(&data, &KMeansConfig::new(2).seed(7)).unwrap();
        assert_eq!(m1.centroids().as_flat(), m2.centroids().as_flat());
    }

    #[test]
    fn error_decreases_with_more_clusters() {
        let data = blobs(40, &[[0.0, 0.0], [4.0, 0.0], [8.0, 0.0], [12.0, 0.0]], 4);
        let e2 = KMeans::train(&data, &KMeansConfig::new(2).max_iters(15))
            .unwrap()
            .quantization_error(&data);
        let e4 = KMeans::train(&data, &KMeansConfig::new(4).max_iters(15))
            .unwrap()
            .quantization_error(&data);
        assert!(e4 < e2, "e4={e4} should be < e2={e2}");
    }

    #[test]
    fn too_few_points_is_an_error() {
        let data = blobs(1, &[[0.0, 0.0]], 4);
        let err = KMeans::train(&data, &KMeansConfig::new(5)).unwrap_err();
        assert!(matches!(
            err,
            AnnError::InsufficientTrainingData { required: 5, .. }
        ));
    }

    #[test]
    fn k_zero_is_invalid_config() {
        let data = blobs(5, &[[0.0, 0.0]], 5);
        assert!(matches!(
            KMeans::train(&data, &KMeansConfig::new(0)),
            Err(AnnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn assign_matches_assign_one() {
        let data = blobs(20, &[[0.0, 0.0], [8.0, 8.0]], 6);
        let model = KMeans::train(&data, &KMeansConfig::new(2)).unwrap();
        let bulk = model.assign(&data);
        for (i, v) in data.iter().enumerate() {
            assert_eq!(bulk[i], model.assign_one(v));
        }
    }

    #[test]
    fn single_thread_equals_multi_thread() {
        let data = blobs(64, &[[0.0, 0.0], [9.0, 1.0]], 8);
        let m1 = KMeans::train(&data, &KMeansConfig::new(2).threads(1)).unwrap();
        let m8 = KMeans::train(&data, &KMeansConfig::new(2).threads(8)).unwrap();
        // Same seed, same init, same deterministic assignment → identical model.
        assert_eq!(m1.centroids().as_flat(), m8.centroids().as_flat());
    }
}
