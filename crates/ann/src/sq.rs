//! Scalar quantization (`f32 → u8`).
//!
//! The paper mentions scalar quantization (SQ) as the simple alternative to
//! PQ: each element is independently mapped to an 8-bit integer over a
//! per-dimension [min, max] range. It offers 4× compression (vs PQ's
//! typically 32–64×) but trivial encode/decode cost.

use crate::{AnnError, Result, VecSet};

/// A trained per-dimension scalar quantizer.
///
/// # Examples
///
/// ```
/// use vlite_ann::{ScalarQuantizer, VecSet};
///
/// let data = VecSet::from_fn(100, 4, |i, j| (i + j) as f32);
/// let sq = ScalarQuantizer::train(&data)?;
/// let codes = sq.encode(data.get(50));
/// let rec = sq.decode(&codes);
/// for (orig, r) in data.get(50).iter().zip(&rec) {
///     assert!((orig - r).abs() <= sq.step_size() / 2.0 + 1e-3);
/// }
/// # Ok::<(), vlite_ann::AnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarQuantizer {
    mins: Vec<f32>,
    scales: Vec<f32>,
}

impl ScalarQuantizer {
    /// Learns per-dimension ranges from `data`.
    ///
    /// # Errors
    ///
    /// Returns [`AnnError::InsufficientTrainingData`] if `data` is empty.
    pub fn train(data: &VecSet) -> Result<ScalarQuantizer> {
        if data.is_empty() {
            return Err(AnnError::InsufficientTrainingData {
                required: 1,
                supplied: 0,
            });
        }
        let dim = data.dim();
        let mut mins = vec![f32::INFINITY; dim];
        let mut maxs = vec![f32::NEG_INFINITY; dim];
        for v in data.iter() {
            for j in 0..dim {
                mins[j] = mins[j].min(v[j]);
                maxs[j] = maxs[j].max(v[j]);
            }
        }
        let scales = mins
            .iter()
            .zip(&maxs)
            .map(|(&lo, &hi)| {
                let range = hi - lo;
                if range > 0.0 {
                    range / 255.0
                } else {
                    1.0 // constant dimension: any scale round-trips to lo
                }
            })
            .collect();
        Ok(ScalarQuantizer { mins, scales })
    }

    /// Reconstructs a quantizer from serialized per-dimension parameters —
    /// the deserialization path of persisted SQ8 payloads.
    ///
    /// # Panics
    ///
    /// Panics if the parameter vectors differ in length, are empty, or any
    /// parameter is non-finite (a scale must additionally be positive).
    pub fn from_params(mins: Vec<f32>, scales: Vec<f32>) -> ScalarQuantizer {
        assert_eq!(mins.len(), scales.len(), "mins/scales length mismatch");
        assert!(!mins.is_empty(), "quantizer must cover at least one dim");
        assert!(
            mins.iter().all(|m| m.is_finite()),
            "quantizer mins must be finite"
        );
        assert!(
            scales.iter().all(|s| s.is_finite() && *s > 0.0),
            "quantizer scales must be finite and positive"
        );
        ScalarQuantizer { mins, scales }
    }

    /// Per-dimension minimums (the decode offsets).
    pub fn mins(&self) -> &[f32] {
        &self.mins
    }

    /// Per-dimension step sizes (the decode scales).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dimensionality this quantizer encodes.
    pub fn dim(&self) -> usize {
        self.mins.len()
    }

    /// The largest per-dimension quantization step.
    pub fn step_size(&self) -> f32 {
        self.scales.iter().copied().fold(0.0, f32::max)
    }

    /// Encodes one vector to `dim` bytes, clamping out-of-range values.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != dim`.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim(), "encode: wrong dimensionality");
        v.iter()
            .enumerate()
            .map(|(j, &x)| {
                let q = (x - self.mins[j]) / self.scales[j];
                q.round().clamp(0.0, 255.0) as u8
            })
            .collect()
    }

    /// Decodes `codes` back to approximate floats.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != dim`.
    pub fn decode(&self, codes: &[u8]) -> Vec<f32> {
        assert_eq!(codes.len(), self.dim(), "decode: wrong code length");
        codes
            .iter()
            .enumerate()
            .map(|(j, &c)| self.mins[j] + f32::from(c) * self.scales[j])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn round_trip_error_bounded_by_half_step() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = VecSet::from_fn(500, 8, |_, _| rng.random::<f32>() * 10.0 - 5.0);
        let sq = ScalarQuantizer::train(&data).unwrap();
        for v in data.iter() {
            let rec = sq.decode(&sq.encode(v));
            for (x, r) in v.iter().zip(&rec) {
                assert!((x - r).abs() <= sq.step_size() / 2.0 + 1e-4);
            }
        }
    }

    #[test]
    fn constant_dimension_round_trips_exactly() {
        let data = VecSet::from_fn(10, 2, |i, j| if j == 0 { 7.5 } else { i as f32 });
        let sq = ScalarQuantizer::train(&data).unwrap();
        let rec = sq.decode(&sq.encode(&[7.5, 3.0]));
        assert_eq!(rec[0], 7.5);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let data = VecSet::from_fn(10, 1, |i, _| i as f32); // range [0, 9]
        let sq = ScalarQuantizer::train(&data).unwrap();
        assert_eq!(sq.encode(&[-100.0])[0], 0);
        assert_eq!(sq.encode(&[100.0])[0], 255);
    }

    #[test]
    fn empty_training_set_rejected() {
        let data = VecSet::new(4);
        assert!(matches!(
            ScalarQuantizer::train(&data),
            Err(AnnError::InsufficientTrainingData { .. })
        ));
    }
}
