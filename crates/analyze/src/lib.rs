//! **vlite-lint** — the VectorLiteRAG workspace's project-invariant
//! static analyzer.
//!
//! The runtime's correctness leans on hand-rolled concurrency (lock-free
//! counters, generation-counted snapshot swaps, one audited `unsafe`
//! mmap shim) and on the `Clock` determinism discipline that keeps the
//! VirtualClock TTFT tests exact. Those invariants used to be reviewer
//! folklore; this crate makes them machine-checked. It is std-only — the
//! same no-new-deps discipline as the HTTP parser and the mmap shim — and
//! fast enough (single-digit milliseconds for the whole workspace) that
//! CI runs it on every push.
//!
//! # Pieces
//!
//! - [`lexer`]: classifies every byte of a source file as code, comment,
//!   or quoted text, so rule patterns inside strings, raw strings and
//!   comments never fire.
//! - [`rules`]: the invariant catalogue — clock-discipline, unsafe-audit,
//!   atomics-ordering, lock-hygiene, bounded-queues, panic-paths,
//!   stdout-discipline — as data.
//! - [`engine`]: file discovery, fragment-chain pattern matching,
//!   suppression resolution, and `--json` rendering.
//!
//! # Suppressions
//!
//! A finding is waived inline with a comment that *starts with*
//! `vlite-allow(<rule>): <reason>` — on the finding's line, or alone on
//! the line above it. The reason is mandatory, the rule id must exist,
//! and a suppression that no longer suppresses anything is itself an
//! error, so waivers cannot outlive the code they excused.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{analyze_source, analyze_workspace, Diagnostic, Report, SUPPRESSION_RULE};
pub use rules::{rules, Rule};
