//! The project-invariant rule set.
//!
//! Every rule here encodes a discipline the runtime's correctness already
//! leans on but nothing previously enforced: VirtualClock determinism,
//! the audited `unsafe` surface, justified relaxed atomics, poisoned-lock
//! recovery, bounded admission, and panic-free hot paths. Rules are data
//! (patterns + scopes + allowlists); the matching itself lives in
//! [`crate::engine`].
//!
//! # Adding a rule
//!
//! 1. Add a [`Rule`] entry to [`rules`] with a unique kebab-case id.
//! 2. Pick a [`Check`]: `Forbid` (pattern is always a finding),
//!    `ForbidUnlessMarker` (finding unless a justification comment with
//!    the marker appears within `window` lines above), or `UnsafeAudit`
//!    (allowlisted files may contain `unsafe`, but every site needs a
//!    `SAFETY:` comment; everywhere else `unsafe` is an error).
//! 3. Add a fixture under `crates/analyze/tests/fixtures/` exercising a
//!    real violation *and* the same text inside a string/comment.
//! 4. Document the rule in the README's "Correctness tooling" table.

/// A textual pattern: `frags` must appear in order in the code view, with
/// at most 64 bytes of "gap" (no `;`, `{`, `}`, `(`, `)`) between
/// consecutive fragments, so chained calls split across lines still match
/// while matches never leak across statements.
#[derive(Debug)]
pub struct Pattern {
    /// Ordered literal fragments.
    pub frags: &'static [&'static str],
    /// Require identifier-boundaries around the first fragment.
    pub word: bool,
}

/// How pattern matches turn into diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// Every match is a finding (unless suppressed).
    Forbid,
    /// A match is a finding unless a comment containing `marker`
    /// (case-insensitive) appears on the same line or within `window`
    /// lines above.
    ForbidUnlessMarker {
        /// Case-insensitive justification marker, e.g. `relaxed:`.
        marker: &'static str,
        /// Lines above the match searched for the marker.
        window: usize,
    },
    /// `unsafe` audit: outside allowlisted files any match is a finding;
    /// inside them a match still needs a `SAFETY` comment within
    /// `window` lines above.
    UnsafeAudit {
        /// Lines above the match searched for a `SAFETY` comment.
        window: usize,
    },
}

/// One project invariant, as data.
#[derive(Debug)]
pub struct Rule {
    /// Stable kebab-case id, used in diagnostics and suppressions.
    pub id: &'static str,
    /// One-line description for `--list-rules` and the README.
    pub summary: &'static str,
    /// Whether the rule also applies inside `#[cfg(test)]` regions and
    /// `tests/` directories.
    pub include_tests: bool,
    /// Path prefixes the rule applies to; empty means the whole tree.
    pub scope: &'static [&'static str],
    /// `(path prefix, reason)` pairs exempt from the rule. For
    /// [`Check::UnsafeAudit`] the allowlist instead names where `unsafe`
    /// is *permitted* (still requiring SAFETY comments).
    pub allow: &'static [(&'static str, &'static str)],
    /// The patterns that trigger the rule.
    pub patterns: &'static [Pattern],
    /// What a match means.
    pub check: Check,
    /// Diagnostic message.
    pub message: &'static str,
}

const fn pat(frags: &'static [&'static str]) -> Pattern {
    Pattern { frags, word: false }
}

const fn word(frags: &'static [&'static str]) -> Pattern {
    Pattern { frags, word: true }
}

/// The rule set, in reporting order.
pub fn rules() -> &'static [Rule] {
    const RULES: &[Rule] = &[
        Rule {
            id: "clock-discipline",
            summary: "all timestamps and waits go through the Clock trait",
            include_tests: true,
            scope: &[],
            allow: &[
                (
                    "crates/serve/src/clock.rs",
                    "the Clock abstraction's own wall-clock implementation",
                ),
                (
                    "crates/bench/",
                    "offline benchmark harness: measuring wall-clock time is its purpose",
                ),
                (
                    "crates/analyze/",
                    "the analyzer times its own scan for the CI <5s budget and never runs under VirtualClock",
                ),
            ],
            patterns: &[
                pat(&["Instant::now("]),
                pat(&["SystemTime::now("]),
                pat(&["thread::sleep("]),
                pat(&["sleep_ms("]),
            ],
            check: Check::Forbid,
            message: "raw wall-clock call outside the Clock abstraction; thread a `Clock` through \
                      (VirtualClock tests stay deterministic only if every timestamp and wait does)",
        },
        Rule {
            id: "unsafe-audit",
            summary: "`unsafe` only in audited scopes (mmap shim, SIMD kernels), every site SAFETY-commented",
            include_tests: true,
            scope: &[],
            allow: &[
                (
                    "crates/store/src/mmap.rs",
                    "the workspace's audited unsafe surface: raw mmap/munmap syscalls behind a safe facade",
                ),
                (
                    "crates/ann/src/kernel/",
                    "the CPUID-gated std::arch SIMD kernels; every intrinsic block argues \
                     alignment/length/feature-gate in its SAFETY comment",
                ),
                (
                    "crates/metrics/src/cputime.rs",
                    "the profiler's audited unsafe surface: raw clock_gettime/gettid syscalls \
                     behind a safe facade, mirroring the mmap shim",
                ),
            ],
            patterns: &[word(&["unsafe"])],
            check: Check::UnsafeAudit { window: 8 },
            message: "`unsafe` outside the audited allowlist",
        },
        Rule {
            id: "kernel-dispatch",
            summary: "CPU feature detection only in the kernel dispatcher, never per call or in loops",
            include_tests: true,
            scope: &[],
            allow: &[(
                "crates/ann/src/kernel/mod.rs",
                "the dispatcher's one-time OnceLock'd detection — the single place allowed to \
                 ask the CPU what it supports",
            )],
            patterns: &[
                pat(&["is_x86_feature_detected!"]),
                pat(&["is_aarch64_feature_detected!"]),
            ],
            check: Check::Forbid,
            message: "CPU feature detection outside the kernel dispatcher; the macro re-reads \
                      CPUID state and must never sit in a scan loop body — route through \
                      vlite_ann::kernel (detected()/kernels()), which detects once per process",
        },
        Rule {
            id: "atomics-ordering",
            summary: "every `Ordering::Relaxed` carries a `relaxed:` justification comment",
            include_tests: false,
            scope: &[],
            allow: &[],
            patterns: &[pat(&["Ordering::Relaxed"])],
            check: Check::ForbidUnlessMarker {
                marker: "relaxed:",
                window: 6,
            },
            message: "`Ordering::Relaxed` without a `// relaxed: <why no ordering is needed>` \
                      justification within 6 lines",
        },
        Rule {
            id: "lock-hygiene",
            summary: "no poisoning panics on lock acquisition in non-test code",
            include_tests: false,
            scope: &[],
            allow: &[],
            patterns: &[
                pat(&[".lock()", ".unwrap()"]),
                pat(&[".lock()", ".expect("]),
                pat(&[".read()", ".unwrap()"]),
                pat(&[".read()", ".expect("]),
                pat(&[".write()", ".unwrap()"]),
                pat(&[".write()", ".expect("]),
                pat(&[".wait(", ").unwrap()"]),
                pat(&[".wait(", ").expect("]),
            ],
            check: Check::Forbid,
            message: "poisoning panic on lock acquisition; route through the poisoned-lock \
                      recovery helpers so one panicking worker cannot cascade into every path \
                      that shares the lock",
        },
        Rule {
            id: "bounded-queues",
            summary: "no unbounded channels in the serve path without a boundedness argument",
            include_tests: false,
            scope: &["crates/serve/src/"],
            allow: &[],
            patterns: &[pat(&["channel::unbounded"]), pat(&["mpsc::channel("])],
            check: Check::Forbid,
            message: "unbounded channel in the serve path; make it bounded or state the \
                      boundedness argument in a `vlite-allow` suppression",
        },
        Rule {
            id: "panic-paths",
            summary: "no unwrap/expect/panic in the dispatcher, HTTP parser/JSON, or store scan paths",
            include_tests: false,
            scope: &[
                "crates/serve/src/dispatch.rs",
                "crates/serve/src/http/parser.rs",
                "crates/serve/src/http/json.rs",
                "crates/store/src/tiered.rs",
                "crates/store/src/segment.rs",
            ],
            allow: &[],
            patterns: &[
                pat(&[".unwrap()"]),
                pat(&[".expect("]),
                pat(&["panic!("]),
                pat(&["todo!("]),
                pat(&["unimplemented!("]),
            ],
            check: Check::Forbid,
            message: "panic in a hot request path; degrade gracefully or return an error \
                      (a panicking request must never take the process down)",
        },
        Rule {
            id: "stdout-discipline",
            summary: "library code never prints; output flows through the obs plane",
            include_tests: false,
            scope: &["crates/"],
            allow: &[
                (
                    "crates/bench/",
                    "benchmark binaries report results on stdout by design",
                ),
                (
                    "crates/analyze/",
                    "the analyzer CLI reports diagnostics on stdout by design",
                ),
            ],
            patterns: &[
                pat(&["println!("]),
                pat(&["eprintln!("]),
                pat(&["print!("]),
                pat(&["eprint!("]),
                pat(&["dbg!("]),
            ],
            check: Check::Forbid,
            message: "library code must not print; record through the obs plane or return data \
                      to the caller",
        },
    ];
    RULES
}

/// Looks up a rule by id (for suppression validation).
pub fn rule_exists(id: &str) -> bool {
    rules().iter().any(|r| r.id == id)
}
