//! The `vlite-analyze` CLI: scan the workspace, report, gate.
//!
//! ```text
//! vlite-analyze [--root <dir>] [--check] [--json] [--max-millis <n>] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` diagnostics found or time budget exceeded,
//! `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
// vlite-lint itself is allowlisted for clock-discipline: it times its own
// scan against the CI budget and never runs under VirtualClock.
use std::time::Instant;

use vlite_analyze::{analyze_workspace, rules};

struct Options {
    root: PathBuf,
    json: bool,
    max_millis: Option<u128>,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        json: false,
        max_millis: None,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(v);
            }
            // --check is the default behaviour; accepted for CI clarity.
            "--check" => {}
            "--json" => opts.json = true,
            "--max-millis" => {
                let v = args.next().ok_or("--max-millis needs a number")?;
                opts.max_millis = Some(v.parse::<u128>().map_err(|e| e.to_string())?);
            }
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => {
                return Err(String::from(
                    "usage: vlite-analyze [--root <dir>] [--check] [--json] \
                     [--max-millis <n>] [--list-rules]",
                ))
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        for rule in rules() {
            println!("{:<18} {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }
    let started = Instant::now();
    let mut report = match analyze_workspace(&opts.root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("vlite-analyze: scan failed: {err}");
            return ExitCode::from(2);
        }
    };
    report.elapsed_ms = started.elapsed().as_millis();

    if opts.json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        println!(
            "vlite-lint: {} diagnostic{} across {} files in {} ms",
            report.diagnostics.len(),
            if report.diagnostics.len() == 1 {
                ""
            } else {
                "s"
            },
            report.files_scanned,
            report.elapsed_ms
        );
    }

    let mut failed = !report.diagnostics.is_empty();
    if let Some(budget) = opts.max_millis {
        if report.elapsed_ms > budget {
            eprintln!(
                "vlite-analyze: scan took {} ms, over the {} ms budget — keep the gate cheap",
                report.elapsed_ms, budget
            );
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
