//! Rule engine: file discovery, pattern matching, suppressions, output.
//!
//! The engine walks the workspace tree, lexes every `.rs` file into code
//! and comment views ([`crate::lexer`]), runs each in-scope rule's
//! patterns over the code view, and resolves findings against inline
//! suppressions and justification comments. Suppression hygiene is itself
//! checked: a suppression must name a real rule, carry a reason, and
//! actually suppress something — anything else is a diagnostic, so the
//! gate cannot rot into a pile of stale waivers.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, FileView};
use crate::rules::{rule_exists, rules, Check, Pattern, Rule};

/// Maximum gap (bytes) between a pattern's consecutive fragments.
const MAX_FRAG_GAP: usize = 64;

/// The pseudo-rule id for suppression-hygiene findings.
pub const SUPPRESSION_RULE: &str = "suppression-hygiene";

/// One finding, pointing at a file and 1-indexed line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-indexed line of the finding.
    pub line: usize,
    /// The rule id (or [`SUPPRESSION_RULE`]).
    pub rule: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The result of one workspace scan.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Wall-clock scan duration in milliseconds (set by the caller; the
    /// library itself does not read the clock).
    pub elapsed_ms: u128,
}

impl Report {
    /// Renders the report as deterministic JSON. `elapsed_ms` is emitted
    /// last so golden tests can compare everything before it.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_str(&d.file),
                d.line,
                json_str(&d.rule),
                json_str(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"elapsed_ms\": {}\n}}\n",
            self.files_scanned, self.elapsed_ms
        ));
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An inline `vlite-allow` suppression parsed from a comment.
#[derive(Debug)]
struct Suppression {
    /// Line the comment sits on (1-indexed).
    decl_line: usize,
    /// Line whose findings it suppresses.
    target_line: usize,
    rule: String,
    reason_ok: bool,
    used: bool,
}

/// Scans one file's source and appends diagnostics. `relpath` must use
/// `/` separators; scoping, allowlists and test detection key off it.
pub fn analyze_source(relpath: &str, source: &str, diagnostics: &mut Vec<Diagnostic>) {
    let view = lex(source);
    let file_is_test = relpath.starts_with("tests/") || relpath.contains("/tests/");
    let mut suppressions = parse_suppressions(&view);

    for rule in rules() {
        if !in_scope(rule, relpath) {
            continue;
        }
        let allow = rule
            .allow
            .iter()
            .find(|(prefix, _)| relpath.starts_with(prefix));
        if allow.is_some() && !matches!(rule.check, Check::UnsafeAudit { .. }) {
            continue;
        }
        if !rule.include_tests && file_is_test {
            continue;
        }
        let mut lines_hit: Vec<usize> = Vec::new();
        for pattern in rule.patterns {
            for pos in pattern_matches(&view.code_text, pattern) {
                lines_hit.push(view.line_of(pos));
            }
        }
        lines_hit.sort_unstable();
        lines_hit.dedup();
        for line in lines_hit {
            let idx = line - 1;
            if !rule.include_tests && view.lines[idx].in_test {
                continue;
            }
            if suppressed(&mut suppressions, rule.id, line) {
                continue;
            }
            let message = match rule.check {
                Check::Forbid => rule.message.to_string(),
                Check::ForbidUnlessMarker { marker, window } => {
                    if has_marker(&view, idx, marker, window) {
                        continue;
                    }
                    rule.message.to_string()
                }
                Check::UnsafeAudit { window } => match allow {
                    None => rule.message.to_string(),
                    Some(_) => {
                        if has_marker(&view, idx, "safety", window) {
                            continue;
                        }
                        "`unsafe` without a `// SAFETY:` (or `# Safety`) comment within 8 lines"
                            .to_string()
                    }
                },
            };
            diagnostics.push(Diagnostic {
                file: relpath.to_string(),
                line,
                rule: rule.id.to_string(),
                message,
            });
        }
    }

    for s in &suppressions {
        let problem = if !rule_exists(&s.rule) {
            Some(format!("suppression names unknown rule `{}`", s.rule))
        } else if !s.reason_ok {
            Some(format!(
                "suppression of `{}` has no reason; write `: <why this is sound>`",
                s.rule
            ))
        } else if !s.used {
            Some(format!(
                "unused suppression of `{}`: nothing fires on line {}",
                s.rule, s.target_line
            ))
        } else {
            None
        };
        if let Some(message) = problem {
            diagnostics.push(Diagnostic {
                file: relpath.to_string(),
                line: s.decl_line,
                rule: SUPPRESSION_RULE.to_string(),
                message,
            });
        }
    }
}

fn in_scope(rule: &Rule, relpath: &str) -> bool {
    rule.scope.is_empty() || rule.scope.iter().any(|p| relpath.starts_with(p))
}

fn suppressed(supps: &mut [Suppression], rule: &str, line: usize) -> bool {
    for s in supps.iter_mut() {
        if s.target_line == line && s.rule == rule {
            s.used = true;
            return true;
        }
    }
    false
}

/// Whether a comment containing `marker` (case-insensitive) appears on
/// the match's line or within `window` lines above it.
fn has_marker(view: &FileView, idx: usize, marker: &str, window: usize) -> bool {
    let lo = idx.saturating_sub(window);
    view.lines[lo..=idx]
        .iter()
        .any(|l| l.comment.to_ascii_lowercase().contains(marker))
}

/// A suppression is a comment whose text *starts with*
/// `vlite-allow(<rule>)` — anchoring at the comment start keeps prose
/// that merely mentions the syntax from parsing as one. A comment-only
/// line suppresses the next code line; a trailing comment its own.
fn parse_suppressions(view: &FileView) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (i, line) in view.lines.iter().enumerate() {
        let text = line.comment.trim();
        let Some(rest) = text.strip_prefix("vlite-allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = &rest[..close];
        if rule.is_empty()
            || !rule
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            continue; // prose, e.g. `vlite-allow(<rule>)` in docs
        }
        let after = rest[close + 1..].trim_start();
        let reason_ok = after
            .strip_prefix(':')
            .map(str::trim)
            .is_some_and(|r| r.len() >= 3);
        let target_line = if line.code.trim().is_empty() {
            // Comment-only line: cover the next line carrying code.
            let mut target = i + 1;
            for (j, next) in view.lines.iter().enumerate().skip(i + 1).take(3) {
                if !next.code.trim().is_empty() {
                    target = j;
                    break;
                }
            }
            target + 1
        } else {
            i + 1
        };
        out.push(Suppression {
            decl_line: i + 1,
            target_line,
            rule: rule.to_string(),
            reason_ok,
            used: false,
        });
    }
    out
}

/// All match positions of `pattern` in `code` (byte offsets of the first
/// fragment).
fn pattern_matches(code: &str, pattern: &Pattern) -> Vec<usize> {
    let bytes = code.as_bytes();
    let first = pattern.frags[0];
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find(first) {
        let start = from + rel;
        from = start + 1;
        if pattern.word {
            let before_ok = start == 0 || !is_word_byte(bytes[start - 1]);
            let after = start + first.len();
            let after_ok = after >= bytes.len() || !is_word_byte(bytes[after]);
            if !before_ok || !after_ok {
                continue;
            }
        }
        let mut pos = start + first.len();
        let mut ok = true;
        'frags: for frag in &pattern.frags[1..] {
            let limit = (pos + MAX_FRAG_GAP).min(bytes.len());
            let mut j = pos;
            loop {
                if code[j..].starts_with(frag) {
                    pos = j + frag.len();
                    continue 'frags;
                }
                if j >= limit || matches!(bytes.get(j), Some(b';' | b'{' | b'}' | b'(' | b')')) {
                    ok = false;
                    break 'frags;
                }
                j += 1;
            }
        }
        if ok {
            out.push(start);
        }
    }
    out
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Directories never scanned, as workspace-relative prefixes.
const SKIP_PREFIXES: &[&str] = &[
    "target/",
    ".git/",
    // Vendored stand-ins for registry crates: they mirror external APIs
    // (real time, channel internals) and are not project code.
    "crates/shims/",
    // Deliberate rule violations used by the analyzer's own tests.
    "crates/analyze/tests/fixtures/",
];

/// Scans every `.rs` file under `root` (skipping [`SKIP_PREFIXES`]) and
/// returns the sorted diagnostics. `elapsed_ms` is left at zero — the
/// caller stamps it, keeping the library clock-free.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut diagnostics = Vec::new();
    for path in &files {
        let rel = relpath(root, path);
        let source = std::fs::read_to_string(path)?;
        analyze_source(&rel, &source, &mut diagnostics);
    }
    diagnostics.sort_by(|a, b| {
        (&a.file, a.line, &a.rule)
            .partial_cmp(&(&b.file, b.line, &b.rule))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(Report {
        diagnostics,
        files_scanned: files.len(),
        elapsed_ms: 0,
    })
}

fn relpath(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = relpath(root, &path);
        if SKIP_PREFIXES
            .iter()
            .any(|p| rel.starts_with(p) || format!("{rel}/").starts_with(p))
        {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if ty.is_file() && rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Pattern;

    #[test]
    fn fragments_chain_across_whitespace_but_not_statements() {
        let pat = Pattern {
            frags: &[".lock()", ".expect("],
            word: false,
        };
        assert_eq!(pattern_matches("m.lock().expect(s)", &pat).len(), 1);
        assert_eq!(pattern_matches("m.lock()\n    .expect(s)", &pat).len(), 1);
        assert_eq!(pattern_matches("m.lock(); x.expect(s)", &pat).len(), 0);
        assert_eq!(pattern_matches("m.lock().map(f).expect(s)", &pat).len(), 0);
    }

    #[test]
    fn word_boundaries_respected() {
        let pat = Pattern {
            frags: &["unsafe"],
            word: true,
        };
        assert_eq!(pattern_matches("#[allow(unsafe_code)]", &pat).len(), 0);
        assert_eq!(pattern_matches("unsafe { f() }", &pat).len(), 1);
    }

    #[test]
    fn wait_expect_matches_through_the_guard_argument() {
        let pat = Pattern {
            frags: &[".wait(", ").expect("],
            word: false,
        };
        assert_eq!(pattern_matches("cv.wait(guard).expect(m)", &pat).len(), 1);
        assert_eq!(pattern_matches("cv.wait(g(x)).expect(m)", &pat).len(), 0);
    }
}
