//! A small comment/string/char-literal-aware Rust lexer.
//!
//! The analyzer's rules are textual, so the one thing the lexer must get
//! right is *where code stops and prose begins*: a rule pattern inside a
//! string literal, a raw string, a block comment, or a `//` comment must
//! never fire, while the same bytes in code position must. Rather than
//! produce a token stream, [`lex`] classifies every byte of the source and
//! returns a per-line *code view* (non-code bytes blanked to spaces, so
//! byte offsets and line lengths are preserved) plus a per-line *comment
//! view* (the text of any comments on that line) — rules match on the
//! former and read suppressions/justifications from the latter.
//!
//! Handled: nested `/* */` block comments, `//` line comments (including
//! doc comments), `"…"` strings with escapes, raw strings `r"…"` /
//! `r#"…"#` with any hash count, byte and raw-byte strings, char and byte
//! literals, and the `'lifetime` ambiguity (a `'` followed by an
//! identifier with no closing quote is a lifetime, not a char literal).

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line with comments, strings and char literals blanked to
    /// spaces. Same byte length as the original line.
    pub code: String,
    /// The concatenated text of comments on this line (without `//`
    /// markers), empty when the line has none.
    pub comment: String,
    /// Whether the line is inside a `#[cfg(test)]` item's braces.
    pub in_test: bool,
}

/// A lexed file: per-line code/comment views plus test-region marks.
#[derive(Debug)]
pub struct FileView {
    /// The classified lines, in order.
    pub lines: Vec<Line>,
    /// All code lines joined with `\n` — what patterns match against.
    pub code_text: String,
}

impl FileView {
    /// Maps a byte offset in [`FileView::code_text`] to a 1-indexed line.
    pub fn line_of(&self, offset: usize) -> usize {
        let mut consumed = 0usize;
        for (i, line) in self.lines.iter().enumerate() {
            let end = consumed + line.code.len();
            if offset <= end {
                return i + 1;
            }
            consumed = end + 1; // the joining '\n'
        }
        self.lines.len().max(1)
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Class {
    Code,
    Comment,
    Quoted,
}

/// Classifies `source` into per-line code and comment views.
pub fn lex(source: &str) -> FileView {
    let bytes = source.as_bytes();
    let mut class = vec![Class::Code; bytes.len()];
    let mut i = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = line_end(bytes, i);
                mark(&mut class, i, end, Class::Comment);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let end = block_comment_end(bytes, i);
                mark(&mut class, i, end, Class::Comment);
                i = end;
            }
            b'"' => {
                let end = string_end(bytes, i + 1);
                mark(&mut class, i, end, Class::Quoted);
                i = end;
            }
            b'r' if is_raw_string_start(bytes, i) => {
                let end = raw_string_end(bytes, i + 1);
                mark(&mut class, i, end, Class::Quoted);
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                let end = string_end(bytes, i + 2);
                mark(&mut class, i, end, Class::Quoted);
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'r') && is_raw_string_start(bytes, i + 1) => {
                let end = raw_string_end(bytes, i + 2);
                mark(&mut class, i, end, Class::Quoted);
                i = end;
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                let end = char_literal_end(bytes, i + 2).unwrap_or(i + 2);
                mark(&mut class, i, end, Class::Quoted);
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime. `'\…'` and `'x'` are literals;
                // `'ident` with no closing quote within a couple of chars
                // is a lifetime and stays code.
                if let Some(end) = char_literal_end(bytes, i + 1) {
                    mark(&mut class, i, end, Class::Quoted);
                    i = end;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    let mut lines = Vec::new();
    for (start, end) in line_spans(bytes) {
        let mut code = String::with_capacity(end - start);
        let mut comment = String::new();
        for j in start..end {
            let ch = bytes[j];
            match class[j] {
                Class::Code => code.push(if ch.is_ascii() { ch as char } else { ' ' }),
                Class::Comment => {
                    code.push(' ');
                    if ch.is_ascii() && ch != b'/' && ch != b'*' {
                        comment.push(ch as char);
                    } else if !ch.is_ascii() {
                        comment.push(' ');
                    }
                }
                Class::Quoted => code.push(' '),
            }
        }
        lines.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    let code_text = lines
        .iter()
        .map(|l| l.code.as_str())
        .collect::<Vec<_>>()
        .join("\n");
    FileView { lines, code_text }
}

fn mark(class: &mut [Class], from: usize, to: usize, c: Class) {
    for slot in class.iter_mut().take(to).skip(from) {
        *slot = c;
    }
}

fn line_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

fn line_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            spans.push((start, i));
            start = i + 1;
        }
    }
    spans.push((start, bytes.len()));
    spans
}

/// End (exclusive) of a nested block comment starting at `/*`.
fn block_comment_end(bytes: &[u8], start: usize) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    bytes.len()
}

/// End (exclusive) of a `"…"` string whose contents start at `i`.
fn string_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// Whether `r` at `i` begins a raw (byte) string: `r"` or `r#…#"`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// End (exclusive) of a raw string; `i` points just past the leading `r`.
fn raw_string_end(bytes: &[u8], mut i: usize) -> usize {
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// End (exclusive) of a char literal whose contents start at `i`, or
/// `None` when the quote at `i - 1` is a lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i) {
        Some(b'\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = i + 1;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    b'\n' => return None,
                    _ => j += 1,
                }
            }
            None
        }
        Some(_) => {
            // `'x'` (possibly multibyte): a closing quote within the next
            // 1–4 bytes makes it a literal; otherwise it is a lifetime.
            let end = (i + 5).min(bytes.len());
            for (j, &b) in bytes.iter().enumerate().take(end).skip(i + 1) {
                if b == b'\'' {
                    return Some(j + 1);
                }
                if !is_ident_byte(b) && b < 0x80 {
                    return None;
                }
            }
            None
        }
        None => None,
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Marks lines inside `#[cfg(test)]` items by tracking brace depth in the
/// code view from each attribute to its item's closing brace.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0usize;
    while i < lines.len() {
        if lines[i].code.contains("#[cfg(test)]") {
            // Find the opening brace of the annotated item.
            let mut depth = 0i32;
            let mut opened = false;
            let mut j = i;
            'outer: while j < lines.len() {
                for ch in lines[j].code.chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                    if opened && depth == 0 {
                        break 'outer;
                    }
                }
                j += 1;
            }
            let end = j.min(lines.len() - 1);
            for line in lines.iter_mut().take(end + 1).skip(i) {
                line.in_test = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let v = lex("let a = \"Instant::now()\"; // Instant::now()\nlet b = 1;");
        assert!(!v.lines[0].code.contains("Instant"));
        assert!(v.lines[0].comment.contains("Instant::now()"));
        assert!(v.lines[0].code.contains("let a ="));
        assert_eq!(v.lines[1].code, "let b = 1;");
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let v = lex("let s = r#\"a \" quote .unwrap() \"#; x.unwrap();");
        let code = &v.lines[0].code;
        assert_eq!(code.matches(".unwrap()").count(), 1, "{code:?}");
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let v = lex("/* a /* b */ still comment */ code()");
        assert!(v.lines[0].code.contains("code()"));
        assert!(!v.lines[0].code.contains("still"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let v = lex("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let s = \"'\";");
        let code = &v.lines[0].code;
        assert!(code.contains("fn f<'a>"), "{code:?}");
        assert!(!code.contains("'x'"), "char literal blanked: {code:?}");
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}";
        let v = lex(src);
        assert!(!v.lines[0].in_test);
        assert!(v.lines[1].in_test && v.lines[2].in_test && v.lines[3].in_test);
        assert!(v.lines[4].in_test);
        assert!(!v.lines[5].in_test);
    }

    #[test]
    fn line_of_maps_offsets() {
        let v = lex("a\nbb\nccc");
        let pos = v.code_text.find("ccc").unwrap();
        assert_eq!(v.line_of(pos), 3);
    }
}
