//! Fixture: rule-pattern text inside strings, raw strings and comments
//! must never fire; the two real violations at the bottom must.
//!
//! Scanned by `tests/analyzer.rs` under a pretend `crates/serve/src/`
//! relpath; the workspace scanner skips this directory entirely.

pub fn quoted_patterns_do_not_fire() -> (usize, usize, String) {
    let a = "Instant::now() inside a plain string";
    let b = r#"raw string with .lock().unwrap() and "escaped quotes" inside"#;
    let c = format!("SystemTime::now() mentioned next to code: {}", a.len());
    let bytes = b"thread::sleep(Duration::from_secs(1)) in a byte string";
    (a.len() + bytes.len(), b.len(), c)
}

/* block comment: thread::sleep(Duration::from_secs(1)) must not fire
   /* nested block comment: Instant::now() still inside the outer one */
   still comment: .lock().unwrap() */
// line comment: mpsc::channel( and Ordering::Relaxed must not fire

pub fn lifetimes_are_not_char_literals<'a>(x: &'a str) -> &'a str {
    // 'a above must not open a character literal and swallow the rest of
    // the file as quoted text; the violations below must still be seen.
    x
}

pub fn real_sleep_violation() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn real_lock_violation(m: &std::sync::Mutex<u32>) -> u32 {
    *m.lock()
        .unwrap()
}

pub fn chains_do_not_cross_statements(m: &std::sync::Mutex<u32>) -> u32 {
    let g = m.lock();
    drop(g);
    Option::<u32>::Some(3).unwrap()
}
