//! Fixture: suppression parsing and hygiene.
//!
//! Scanned by `tests/analyzer.rs` under a pretend `crates/serve/src/`
//! relpath; the workspace scanner skips this directory entirely.

pub fn justified_waiver() {
    // vlite-allow(clock-discipline): fixture exercising a valid waiver.
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn trailing_waiver() {
    std::thread::sleep(std::time::Duration::from_millis(1)); // vlite-allow(clock-discipline): trailing waiver covers its own line.
}

pub fn waiver_missing_reason() {
    // vlite-allow(clock-discipline)
    std::thread::sleep(std::time::Duration::from_millis(2));
}

pub fn waiver_names_unknown_rule() {
    // vlite-allow(not-a-rule): no rule has this id.
    std::thread::sleep(std::time::Duration::from_millis(3));
}

pub fn waiver_suppresses_nothing() {
    // vlite-allow(lock-hygiene): nothing on the next line locks.
    let _ = 1 + 1;
}

pub fn prose_mentioning_the_syntax_is_not_a_waiver() {
    // vlite-allow(<rule>): angle brackets mean this is prose, not a waiver.
    let _ = 2 + 2;
}
