//! Fixture: the `kernel-dispatch` rule must fire on real CPU-feature
//! detection outside the dispatcher — including the classic sin, the
//! macro inside a scan loop body — and never on quoted/commented copies.
//! Also one `unsafe` without a SAFETY comment, for `unsafe-audit`.
//!
//! Scanned by `tests/analyzer.rs` under a pretend `crates/store/src/`
//! relpath; the workspace scanner skips this directory entirely.

pub fn quoted_detection_does_not_fire() -> usize {
    let a = "is_x86_feature_detected!(\"avx2\") in a plain string";
    // comment copy: is_x86_feature_detected!("avx2") must not fire
    /* nor in a block comment: is_aarch64_feature_detected!("neon") */
    a.len()
}

pub fn detection_in_a_loop_body(chunks: &[&[f32]]) -> usize {
    let mut simd_chunks = 0;
    for chunk in chunks {
        // The per-iteration CPUID re-check the rule exists to kill.
        if std::arch::is_x86_feature_detected!("avx2") && chunk.len() >= 8 {
            simd_chunks += 1;
        }
    }
    simd_chunks
}

pub fn detection_at_top_level_still_fires() -> bool {
    std::arch::is_x86_feature_detected!("fma")
}

pub fn unsafe_outside_the_audit_scope(p: *const f32) -> f32 {
    unsafe { *p }
}
