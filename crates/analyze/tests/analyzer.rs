//! End-to-end tests for `vlite-lint`: tricky lexing over fixtures, the
//! suppression lifecycle, one golden `--json` rendering, and the
//! self-check that the live workspace scans clean inside the CI budget.

use std::path::Path;

use vlite_analyze::{analyze_source, analyze_workspace, Diagnostic, Report};

fn scan(relpath: &str, source: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    analyze_source(relpath, source, &mut diags);
    diags
}

#[test]
fn patterns_in_strings_and_comments_do_not_fire() {
    let source = include_str!("fixtures/tricky_lexing.rs");
    let diags = scan("crates/serve/src/fixture_tricky.rs", source);
    let found: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule.as_str(), d.line)).collect();
    // Exactly the two real violations: the sleep and the poisoning lock —
    // nothing from the quoted/commented copies of the same text, and no
    // chain match across the statement boundary in the last function.
    assert_eq!(
        found,
        vec![("clock-discipline", 27), ("lock-hygiene", 31)],
        "diagnostics: {diags:#?}"
    );
}

#[test]
fn kernel_dispatch_fires_outside_the_dispatcher_only() {
    let source = include_str!("fixtures/kernel_dispatch.rs");
    let mut diags = scan("crates/store/src/fixture_kernel_dispatch.rs", source);
    diags.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    let found: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule.as_str(), d.line)).collect();
    assert_eq!(
        found,
        vec![
            // Detection in a loop body and at top level both fire; the
            // quoted/commented copies above them never do.
            ("kernel-dispatch", 20),
            ("kernel-dispatch", 28),
            // `unsafe` outside the audited kernel/mmap scopes.
            ("unsafe-audit", 32),
        ],
        "diagnostics: {diags:#?}"
    );

    // The same detection text under the dispatcher's own path is allowed…
    let allowed = scan("crates/ann/src/kernel/mod.rs", source);
    assert!(
        allowed.iter().all(|d| d.rule != "kernel-dispatch"),
        "the dispatcher itself may detect features: {allowed:#?}"
    );
    // …and a SAFETY-commented `unsafe` inside the kernel scope is too.
    let kernel_unsafe = "// SAFETY: CPUID-gated by dispatch; loads stay in bounds.\n\
                         pub fn f(p: *const f32) -> f32 { unsafe { *p } }\n";
    assert!(
        scan("crates/ann/src/kernel/x86.rs", kernel_unsafe).is_empty(),
        "SAFETY-commented kernel unsafe must pass the audit"
    );
}

#[test]
fn suppression_lifecycle_is_enforced() {
    let source = include_str!("fixtures/suppressions.rs");
    let mut diags = scan("crates/serve/src/fixture_suppressions.rs", source);
    diags.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    let found: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule.as_str(), d.line)).collect();
    assert_eq!(
        found,
        vec![
            // A waiver with no reason is itself an error (the finding it
            // covers stays suppressed so the fix is to add the reason).
            ("suppression-hygiene", 16),
            // A waiver naming an unknown rule suppresses nothing...
            ("suppression-hygiene", 21),
            // ...so the finding it meant to cover still fires.
            ("clock-discipline", 22),
            // A waiver that covers nothing is stale and must go.
            ("suppression-hygiene", 26),
        ],
        "diagnostics: {diags:#?}"
    );
    assert!(
        diags.iter().all(|d| d.line != 8 && d.line != 12),
        "valid leading and trailing waivers must suppress cleanly: {diags:#?}"
    );
}

#[test]
fn json_report_matches_golden() {
    let source = include_str!("fixtures/suppressions.rs");
    let mut diagnostics = scan("crates/serve/src/fixture_suppressions.rs", source);
    diagnostics.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    let report = Report {
        diagnostics,
        files_scanned: 1,
        elapsed_ms: 0,
    };
    assert_eq!(
        report.to_json(),
        include_str!("fixtures/golden_suppressions.json"),
        "JSON rendering drifted from the golden file"
    );
}

/// The gate's own gate: the live workspace must scan clean, and the scan
/// must stay far under the 5-second CI budget — the analyzer is only
/// viable as an every-push check while it stays effectively free.
#[test]
fn live_workspace_is_clean_and_fast() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let started = std::time::Instant::now();
    let report = analyze_workspace(&root).expect("workspace scan succeeds");
    let elapsed = started.elapsed();
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "scan took {elapsed:?}, over the 5 s CI budget"
    );
}
