//! Minimal API-compatible subset of `crossbeam` (the [`channel`] module),
//! built on `std::sync` primitives.
//!
//! The workspace builds offline (no crates.io access), so this shim provides
//! the MPMC channel surface the serving runtime needs: [`channel::unbounded`],
//! [`channel::bounded`], cloneable senders *and* receivers, blocking/timed
//! receives, and crossbeam's disconnect semantics (a receive fails only once
//! the queue is empty **and** every sender is gone).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer, multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when all receivers disconnected; carries the message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error for [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// All receivers disconnected.
        Disconnected(T),
    }

    /// Error returned when the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Error for [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Creates a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued (or every receiver is gone).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if let Some(cap) = self.shared.capacity {
                while queue.len() >= cap {
                    if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(msg));
                    }
                    queue = self.shared.not_full.wait(queue).expect("channel poisoned");
                }
            }
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Enqueues without blocking; fails if full or disconnected.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.shared.capacity {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.not_empty.wait(queue).expect("channel poisoned");
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .shared
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .expect("channel poisoned");
                queue = guard;
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_fails_only_after_drain_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, _rx) = channel::bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(
            tx.try_send(3),
            Err(channel::TrySendError::Full(3))
        ));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = channel::unbounded::<u32>();
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        ));
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn mpmc_across_threads_delivers_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        let n_senders = 4;
        let per = 250;
        let mut handles = Vec::new();
        for s in 0..n_senders {
            let tx = tx.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..per {
                    tx.send(s * per + i).unwrap();
                }
            }));
        }
        drop(tx);
        let rx2 = rx.clone();
        let collector = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        got.extend(collector.join().unwrap());
        got.sort_unstable();
        assert_eq!(got, (0..n_senders * per).collect::<Vec<_>>());
    }
}
