//! Minimal, API-compatible subset of the `rand` crate (0.9 surface).
//!
//! This workspace builds in an offline environment with no crates.io
//! access, so the external dependencies are vendored as small local shims.
//! Only the API actually used by the workspace is provided:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`).
//! - [`Rng::random`] / [`Rng::random_range`] — uniform draws for the
//!   primitive types and integer/float ranges the workspace samples.
//! - [`seq::index::sample`] — sampling without replacement (partial
//!   Fisher–Yates), as used by k-means initialization and IVF training.
//!
//! The streams are *not* bit-compatible with upstream `rand`; everything in
//! the workspace treats seeds as opaque determinism handles, so only
//! self-consistency matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 64-bit words. Object-safe base trait.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// A seedable generator.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from their "standard" domain
/// (`[0, 1)` for floats, the full range for integers, fair coin for bool).
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits => uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits => uniform on [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (small, unbiased
/// enough for simulation workloads).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence-related sampling.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{Rng, RngCore};

        /// A set of sampled indices (subset of the upstream `IndexVec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// Consumes into a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterates over the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly,
        /// via partial Fisher–Yates.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length` (mirrors upstream `rand`).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from a population of {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn unit_float_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn range_draws_cover_the_support() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let picks = sample(&mut rng, 100, 40);
        let mut v = picks.into_vec();
        assert_eq!(v.len(), 40);
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 40, "duplicates in sample");
        assert!(v.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = sample(&mut rng, 3, 4);
    }
}
