//! Minimal API-compatible subset of `criterion`.
//!
//! The workspace builds offline (no crates.io access). This shim keeps the
//! `criterion_group!`/`criterion_main!`/`bench_function` surface so the
//! benches compile and produce honest wall-clock numbers (median of N
//! timed samples after warmup) — without upstream criterion's statistics,
//! plotting, or baseline comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility; the shim
/// treats all variants identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        bencher.report(name);
        self
    }
}

/// Times closures for one benchmark; each `iter*` call contributes one
/// sample.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(out);
    }

    /// Times `routine` on a freshly set-up input, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.samples.push(start.elapsed());
        drop(out);
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().expect("non-empty");
        println!(
            "{name:<40} median {:>12?}   min {:>12?}   max {:>12?}   ({} samples)",
            median,
            min,
            max,
            self.samples.len()
        );
        self.samples.clear();
    }
}

/// Declares a benchmark group: either `criterion_group!(name, target, ...)`
/// or the long form with an explicit `config = ...` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export matching upstream's `criterion::black_box` path.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_sample_size_times() {
        let mut count = 0usize;
        Criterion::default()
            .sample_size(7)
            .bench_function("counter", |b| {
                b.iter(|| {
                    count += 1;
                })
            });
        assert_eq!(count, 7);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut setups = 0usize;
        let mut runs = 0usize;
        Criterion::default()
            .sample_size(3)
            .bench_function("batched", |b| {
                b.iter_batched(
                    || {
                        setups += 1;
                        vec![1u8; 16]
                    },
                    |v| {
                        runs += 1;
                        v.len()
                    },
                    BatchSize::SmallInput,
                )
            });
        assert_eq!(setups, 3);
        assert_eq!(runs, 3);
    }
}
