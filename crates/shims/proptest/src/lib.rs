//! Minimal API-compatible subset of `proptest`.
//!
//! The workspace builds offline (no crates.io access). This shim keeps the
//! `proptest!` macro, the `prop_assert*`/`prop_assume!` family, range and
//! collection strategies, and `ProptestConfig::with_cases` so the property
//! suites compile and run as deterministic randomized tests. It does *not*
//! implement shrinking: a failing case fails with the plain assertion
//! message (the RNG is seeded from the test name and case index, so every
//! failure is reproducible).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator for one (test, case) pair: the stream is a
    /// pure function of the test's path and the case index.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Namespace mirror of `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing vectors with lengths drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// `Vec<S::Value>` with a length uniform in `len` (half-open).
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of randomized cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Asserts a condition inside a property (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skips the current case when its inputs are out of scope.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let mut __one = |__rng: &mut $crate::TestRng| {
                        $( let $arg = $crate::Strategy::sample(&($strat), __rng); )+
                        $body
                    };
                    __one(&mut __rng);
                }
            }
        )*
    };
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Any, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -2.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_the_range(v in prop::collection::vec(0.0f32..1.0, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn tuples_and_any_compose(pair in (1u64..10, any::<bool>())) {
            let (n, _flag) = pair;
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_per_test_and_index() {
        let mut a = super::TestRng::for_case("t", 3);
        let mut b = super::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = super::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
