//! No-op stand-in for `serde`'s derive macros.
//!
//! The workspace builds offline (no crates.io access). Nothing in the tree
//! actually serializes — the `#[derive(Serialize, Deserialize)]` attributes
//! only mark types as wire-ready for a future HTTP frontend — so the derives
//! expand to nothing. Swapping this shim for real `serde` is a one-line
//! change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
