//! Blocked-scan equivalence: a cluster-major batched scan through
//! [`TieredStore`] must return, for every query, exactly what the
//! query-at-a-time path returns — same ids, bit-identical distances —
//! whatever mix of hot arenas and cold SQ8 extents the probe lists hit.
//! The counters must also account a blocked pass correctly: every query
//! counts as a probe, the shared cluster's payload bytes count once.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vlite_ann::{scan_lists_store, scan_lists_store_batch, BatchQuery, Metric, VecSet};
use vlite_store::TieredStore;

fn sample_clusters(
    n_clusters: usize,
    per: usize,
    dim: usize,
    seed: u64,
) -> Vec<(Vec<u64>, VecSet)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_clusters)
        .map(|c| {
            let ids: Vec<u64> = (0..per as u64).map(|i| ((c as u64) << 20) | i).collect();
            let vectors = VecSet::from_fn(per, dim, |_, _| {
                (c as f32) * 2.0 + rng.random::<f32>() * 3.0 - 1.5
            });
            (ids, vectors)
        })
        .collect()
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vlite-blocked-{}-{tag}.seg", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random tiers, batches, and (overlapping) probe lists, the
    /// blocked batch scan ≡ the query-at-a-time scan, per query, bit for
    /// bit. Holds because both paths score through the same kernels and
    /// per-query LUT construction, and `TopK`'s `(distance, id)` total
    /// order makes the winner set independent of push order.
    #[test]
    fn blocked_batch_equals_query_at_a_time(
        seed in 0u64..1_000_000,
        n_clusters in 2usize..7,
        per in 4usize..32,
        dim in 2usize..24,
        n_queries in 2usize..6,
        k in 1usize..8,
    ) {
        let clusters = sample_clusters(n_clusters, per, dim, seed);
        let path = temp_path(&format!("prop-{seed}-{n_clusters}-{per}-{dim}-{n_queries}-{k}"));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb10c);
        let hot: Vec<bool> = (0..n_clusters).map(|_| rng.random::<bool>()).collect();
        let mut store = TieredStore::create(&path, dim, Metric::L2, &clusters, &hot)
            .expect("creates");
        store.set_ephemeral(true);

        // Random per-query probe lists, deliberately overlapping (every
        // query probes cluster 0) so blocked passes actually block.
        let queries: Vec<Vec<f32>> = (0..n_queries)
            .map(|_| (0..dim).map(|_| rng.random::<f32>() * 8.0).collect())
            .collect();
        let lists: Vec<Vec<u32>> = (0..n_queries)
            .map(|_| {
                let mut l: Vec<u32> = vec![0];
                for c in 1..n_clusters as u32 {
                    if rng.random::<bool>() {
                        l.push(c);
                    }
                }
                l
            })
            .collect();

        let snap = store.snapshot();
        let batch: Vec<BatchQuery<'_>> = (0..n_queries)
            .map(|qi| BatchQuery { query: &queries[qi], lists: &lists[qi] })
            .collect();
        let blocked = scan_lists_store_batch(&snap, &batch, k);
        for qi in 0..n_queries {
            let solo = scan_lists_store(&snap, &queries[qi], &lists[qi], k);
            prop_assert_eq!(blocked[qi].len(), solo.len(), "query {}", qi);
            for (b, s) in blocked[qi].iter().zip(&solo) {
                prop_assert_eq!(b.id, s.id, "query {}", qi);
                prop_assert_eq!(
                    b.distance.to_bits(), s.distance.to_bits(),
                    "query {}: {} vs {}", qi, b.distance, s.distance
                );
            }
        }
        drop(snap);
        let _ = std::fs::remove_file(store.path());
    }
}

/// Counter semantics of a blocked pass: with every query probing every
/// cluster, each cluster is streamed once per batch (bytes counted once)
/// while every query still counts as a probe, and each multi-query pass
/// ticks `blocked_scans`.
#[test]
fn blocked_pass_counts_bytes_once_and_probes_per_query() {
    let n_clusters = 3;
    let clusters = sample_clusters(n_clusters, 10, 4, 77);
    let path = temp_path("counters");
    let mut store = TieredStore::create(&path, 4, Metric::L2, &clusters, &[true, false, false])
        .expect("creates");
    store.set_ephemeral(true);

    let queries: Vec<Vec<f32>> = (0..4).map(|q| vec![q as f32; 4]).collect();
    let all: Vec<u32> = (0..n_clusters as u32).collect();
    let batch: Vec<BatchQuery<'_>> = queries
        .iter()
        .map(|q| BatchQuery {
            query: q,
            lists: &all,
        })
        .collect();
    let snap = store.snapshot();
    let _ = scan_lists_store_batch(&snap, &batch, 3);
    let stats = store.stats();
    // 4 queries × 1 hot cluster, 4 × 2 cold clusters.
    assert_eq!(stats.hot_probes, 4);
    assert_eq!(stats.cold_probes, 8);
    // Every pass covered all 4 queries → one blocked tick per cluster.
    assert_eq!(stats.blocked_scans, n_clusters as u64);
    // Bytes: each cluster streamed exactly once. A query-at-a-time rerun
    // of the same probe lists must cost 4× the bytes.
    let hot_once = stats.hot_bytes_scanned;
    let cold_once = stats.cold_bytes_scanned;
    for q in &queries {
        let _ = scan_lists_store(&snap, q, &all, 3);
    }
    let after = store.stats();
    assert_eq!(after.hot_bytes_scanned - hot_once, 4 * hot_once);
    assert_eq!(after.cold_bytes_scanned - cold_once, 4 * cold_once);
    assert_eq!(
        after.blocked_scans, stats.blocked_scans,
        "solo scans never block"
    );
}
