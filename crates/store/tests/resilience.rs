//! Adversarial tests for the on-disk segment format: every corruption —
//! truncation, bit flips anywhere, stale/partial files, wrong shapes —
//! must surface as a clean [`StoreError`], never a panic or skewed
//! results. Plus the tier-equivalence property: an mmap'd cold scan
//! returns exactly what scanning the same clusters hot at full precision
//! would, modulo the SQ8 quantization bound.

use std::path::PathBuf;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vlite_ann::{l2_sq, scan_lists_store, Metric, VecSet};
use vlite_store::{write_segment, Segment, StoreError, TieredStore};

fn sample_clusters(
    n_clusters: usize,
    per: usize,
    dim: usize,
    seed: u64,
) -> Vec<(Vec<u64>, VecSet)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_clusters)
        .map(|c| {
            let ids: Vec<u64> = (0..per as u64).map(|i| (c as u64) << 20 | i).collect();
            let vectors = VecSet::from_fn(per, dim, |_, _| {
                (c as f32) * 3.0 + rng.random::<f32>() * 2.0 - 1.0
            });
            (ids, vectors)
        })
        .collect()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vlite-resilience-{}-{tag}.seg", std::process::id()))
}

/// Writes a small reference segment and returns its bytes and path.
fn reference_segment(tag: &str) -> (PathBuf, Vec<u8>) {
    let clusters = sample_clusters(5, 24, 8, 0xfeed);
    let path = temp_path(tag);
    write_segment(&path, 8, Metric::L2, &clusters).expect("writes");
    let bytes = std::fs::read(&path).expect("readable");
    (path, bytes)
}

fn expect_corrupt(path: &std::path::Path, what: &str) {
    match Segment::open(path) {
        Err(StoreError::Corrupt(_)) => {}
        Err(other) => panic!("{what}: want Corrupt, got {other}"),
        Ok(_) => panic!("{what}: corrupted segment opened cleanly"),
    }
}

#[test]
fn truncated_files_fail_cleanly_at_every_length() {
    let (path, bytes) = reference_segment("truncate");
    // A sweep of truncation points: inside the magic, the header, the
    // table, and each extent region. Every one must be a clean error.
    let cuts = [
        0usize,
        4,
        7,
        16,
        31,
        bytes.len() / 4,
        bytes.len() / 2,
        bytes.len() - 1,
    ];
    for &cut in &cuts {
        std::fs::write(&path, &bytes[..cut]).expect("write truncated");
        expect_corrupt(&path, &format!("truncated to {cut} bytes"));
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn bad_magic_and_version_fail_cleanly() {
    let (path, bytes) = reference_segment("magic");
    let mut bad = bytes.clone();
    bad[0] = b'X';
    std::fs::write(&path, &bad).expect("write");
    expect_corrupt(&path, "bad magic");

    let mut bad = bytes.clone();
    bad[8] = 0xFF; // version
    std::fs::write(&path, &bad).expect("write");
    expect_corrupt(&path, "bad version");
    let _ = std::fs::remove_file(path);
}

#[test]
fn header_field_tampering_is_caught_by_the_header_checksum() {
    let (path, bytes) = reference_segment("header");
    // Flip one byte in each interesting header field: dim, n_clusters,
    // total_vectors, an SQ scale, a table offset, a table count.
    for &off in &[12usize, 16, 24, 36, 80, 120] {
        let mut bad = bytes.clone();
        bad[off] ^= 0x01;
        std::fs::write(&path, &bad).expect("write");
        expect_corrupt(&path, &format!("header byte {off} flipped"));
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn payload_bit_flips_are_caught_by_extent_checksums() {
    let (path, bytes) = reference_segment("payload");
    // Flip a single bit at several payload positions (past the header).
    let header_guess = bytes.len() / 3; // payload dominates this file
    for frac in [0.4, 0.6, 0.8, 0.99] {
        let off = ((bytes.len() as f64) * frac) as usize;
        assert!(off > header_guess);
        let mut bad = bytes.clone();
        bad[off] ^= 0x40;
        std::fs::write(&path, &bad).expect("write");
        expect_corrupt(&path, &format!("payload byte {off} flipped"));
    }
    let _ = std::fs::remove_file(path);
}

#[test]
fn garbage_and_empty_files_fail_cleanly() {
    let path = temp_path("garbage");
    std::fs::write(&path, b"").expect("write");
    expect_corrupt(&path, "empty file");
    std::fs::write(&path, vec![0xA5u8; 4096]).expect("write");
    expect_corrupt(&path, "garbage file");
    // A file that *starts* like a segment but lies about its size.
    let mut liar = Vec::new();
    liar.extend_from_slice(b"VLSTSEG1");
    liar.extend_from_slice(&1u32.to_le_bytes());
    liar.extend_from_slice(&8u32.to_le_bytes());
    liar.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd cluster count
    liar.extend_from_slice(&0u32.to_le_bytes());
    liar.extend_from_slice(&0u64.to_le_bytes());
    std::fs::write(&path, &liar).expect("write");
    expect_corrupt(&path, "absurd cluster count");
    let _ = std::fs::remove_file(path);
}

#[test]
fn tiered_store_surfaces_corruption_as_errors_not_panics() {
    let (path, bytes) = reference_segment("store");
    let mut bad = bytes.clone();
    let off = bytes.len() - 10;
    bad[off] ^= 0x02;
    std::fs::write(&path, &bad).expect("write");
    let err = TieredStore::open(&path, Metric::L2, &[false; 5]).expect_err("corrupt");
    assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
    // Mismatched hot-set length on a *clean* file is a Mismatch, not a
    // panic.
    std::fs::write(&path, &bytes).expect("restore");
    let err = TieredStore::open(&path, Metric::L2, &[false; 3]).expect_err("wrong hot len");
    assert!(matches!(err, StoreError::Mismatch(_)), "{err}");
    let _ = std::fs::remove_file(path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tier-equivalence property: for random clusters and queries, a
    /// cold (mmap'd SQ8) scan of a cluster set returns results identical
    /// to scanning the same clusters hot at full precision, modulo the
    /// per-element SQ8 quantization bound — concretely, every cold
    /// distance equals the full-precision distance to the *decoded*
    /// vector (within float-sum tolerance), which itself sits within the
    /// quantizer's half-step bound of the original.
    #[test]
    fn cold_scan_equals_hot_scan_modulo_sq8(
        seed in 0u64..1_000_000,
        n_clusters in 2usize..6,
        per in 4usize..40,
        dim in 2usize..24,
    ) {
        let clusters = sample_clusters(n_clusters, per, dim, seed);
        let path = temp_path(&format!("prop-{seed}-{n_clusters}-{per}-{dim}"));
        let mut hot_store = TieredStore::create(
            &path, dim, Metric::L2, &clusters, &vec![true; n_clusters],
        ).expect("creates");
        hot_store.set_ephemeral(true);
        let lists: Vec<u32> = (0..n_clusters as u32).collect();

        let mut rng = StdRng::seed_from_u64(seed ^ 0x51a5);
        let query: Vec<f32> = (0..dim).map(|_| rng.random::<f32>() * 6.0).collect();

        let hot_snapshot = hot_store.snapshot();
        let hot = scan_lists_store(&hot_snapshot, &query, &lists, 5);

        // Demote everything live, then scan cold through the mmap.
        hot_store.apply_placement(&vec![false; n_clusters]);
        let cold_snapshot = hot_store.snapshot();
        let cold = scan_lists_store(&cold_snapshot, &query, &lists, 5);

        prop_assert_eq!(hot.len(), cold.len());
        let sq = hot_store.sq().clone();
        let step = sq.step_size();
        // Locate each cold hit's original vector by id.
        for n in &cold {
            let (c, i) = (((n.id >> 20) as usize), (n.id & 0xFFFFF) as usize);
            let original = clusters[c].1.get(i);
            let decoded = sq.decode(&sq.encode(original));
            // 1) The cold distance is the full-precision distance to the
            //    decoded vector (the LUT introduces only fp-sum error).
            let reference = l2_sq(&query, &decoded);
            prop_assert!(
                (n.distance - reference).abs() <= 1e-3 * (1.0 + reference.abs()),
                "cold {} vs decoded reference {}", n.distance, reference
            );
            // 2) The decoded vector sits within the quantization bound of
            //    the original, elementwise.
            for (o, d) in original.iter().zip(&decoded) {
                prop_assert!((o - d).abs() <= step / 2.0 + 1e-4);
            }
        }
        // 3) Both tiers agree on the top hit whenever quantization can't
        //    flip it: if the hot margin between rank-0 and rank-1 exceeds
        //    the worst-case distance perturbation, the winner must match.
        if hot.len() > 1 {
            let margin = hot[1].distance - hot[0].distance;
            let worst: f32 = (0..dim)
                .map(|j| {
                    let e = sq.scales()[j] / 2.0;
                    let q_term = (query[j].abs() + 8.0) * e; // |q - x| is bounded by data range
                    2.0 * q_term + e * e
                })
                .sum();
            if margin > 2.0 * worst {
                prop_assert_eq!(hot[0].id, cold[0].id);
            }
        }
    }
}
