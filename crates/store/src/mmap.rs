//! Minimal memmap-style shim: read-only file mappings without `libc`.
//!
//! The offline workspace has no crates.io access, so the usual `memmap2`
//! crate is unavailable. On Linux x86_64/aarch64 this module issues the raw
//! `mmap(2)`/`munmap(2)` syscalls directly (the only `unsafe` in the
//! crate); every other target — and any mapping failure — falls back to
//! reading the file into a heap buffer behind the same API, so callers are
//! portable and infallible-by-construction once the file is readable.
//!
//! Mappings are private and read-only. Segment files are immutable once
//! written (the writer creates them under a temp name and renames), so the
//! usual mmap truncation hazard does not arise for files this crate owns.

use std::fs::File;
use std::io::Read;
use std::ops::Deref;

/// A read-only view of an entire file: a real memory mapping where
/// supported, a heap copy elsewhere.
#[derive(Debug)]
pub struct Mmap {
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE over a file this crate
// treats as immutable; shared immutable byte access is sound.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
unsafe impl Send for Mmap {}
// SAFETY: as for Send above — the mapped bytes are read-only for the
// mapping's whole lifetime, so concurrent shared access cannot race.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only. Falls back to a heap copy if mapping is
    /// unsupported on this target or the syscall fails.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file's length cannot be
    /// read, or the fallback read fails.
    pub fn map(file: &File) -> std::io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| std::io::Error::other("file too large to map on this target"))?;
        if len == 0 {
            return Ok(Mmap {
                backing: Backing::Heap(Vec::new()),
            });
        }
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Some(ptr) = sys::map_readonly(file, len) {
            return Ok(Mmap {
                backing: Backing::Mapped { ptr, len },
            });
        }
        let mut buf = Vec::with_capacity(len);
        let mut reader = file;
        reader.read_to_end(&mut buf)?;
        Ok(Mmap {
            backing: Backing::Heap(buf),
        })
    }

    /// Whether the bytes are served by a real memory mapping (as opposed to
    /// the heap-copy fallback).
    pub fn is_mapped(&self) -> bool {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            matches!(self.backing, Backing::Mapped { .. })
        }
        #[cfg(not(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )))]
        {
            false
        }
    }

    /// The mapped bytes.
    #[allow(unsafe_code)]
    pub fn as_slice(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backing::Mapped { ptr, len } => {
                // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len`
                // bytes, unmapped only in Drop; u8 has no alignment or
                // validity requirements.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Heap(buf) => buf,
        }
    }

    /// Number of mapped bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    #[allow(unsafe_code)]
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: exactly the region returned by mmap, unmapped once.
            unsafe { sys::unmap(ptr, len) };
        }
    }
}

/// Raw Linux syscalls — the crate's entire unsafe surface.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
#[allow(unsafe_code)]
mod sys {
    use std::fs::File;
    use std::os::fd::AsRawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    /// Maps `len` bytes of `file` read-only/private. `None` on any syscall
    /// failure (caller falls back to a heap copy).
    pub fn map_readonly(file: &File, len: usize) -> Option<*const u8> {
        let fd = file.as_raw_fd();
        if fd < 0 {
            return None;
        }
        // SAFETY: arguments follow the mmap(2) ABI (NULL hint, read-only,
        // private, offset 0); the returned region is only ever read.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        let signed = ret as isize;
        // The kernel reports errors as -errno in [-4095, -1].
        if (-4095..0).contains(&signed) {
            None
        } else {
            Some(ret as *const u8)
        }
    }

    /// Unmaps a region previously returned by [`map_readonly`].
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must be exactly one live mapping from [`map_readonly`],
    /// and no reference into it may outlive this call.
    pub unsafe fn unmap(ptr: *const u8, len: usize) {
        // SAFETY: delegated to the caller's contract above.
        let _ = unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }

    /// One six-argument Linux syscall.
    ///
    /// # Safety
    ///
    /// The caller must pass a valid syscall number and arguments satisfying
    /// that syscall's contract.
    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> usize {
        let ret;
        // SAFETY: the x86_64 Linux syscall ABI — number in rax, args in
        // rdi/rsi/rdx/r10/r8/r9, rcx/r11 clobbered, result in rax.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// One six-argument Linux syscall.
    ///
    /// # Safety
    ///
    /// The caller must pass a valid syscall number and arguments satisfying
    /// that syscall's contract.
    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> usize {
        let ret;
        // SAFETY: the aarch64 Linux syscall ABI — number in x8, args in
        // x0..x5, result in x0.
        unsafe {
            std::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(contents: &[u8]) -> (std::path::PathBuf, File) {
        let path = std::env::temp_dir().join(format!(
            "vlite-mmap-test-{}-{contents:p}.bin",
            std::process::id()
        ));
        let mut f = File::create(&path).expect("create temp file");
        f.write_all(contents).expect("write");
        f.sync_all().expect("sync");
        drop(f);
        let f = File::open(&path).expect("reopen");
        (path, f)
    }

    #[test]
    fn maps_whole_file_contents() {
        let payload: Vec<u8> = (0..=255).cycle().take(10_000).collect();
        let (path, file) = temp_file(&payload);
        let map = Mmap::map(&file).expect("maps");
        assert_eq!(&map[..], &payload[..]);
        assert_eq!(map.len(), payload.len());
        drop(map);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_file_maps_empty() {
        let (path, file) = temp_file(&[]);
        let map = Mmap::map(&file).expect("maps");
        assert!(map.is_empty());
        let _ = std::fs::remove_file(path);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn linux_uses_a_real_mapping() {
        let (path, file) = temp_file(&[7u8; 4096]);
        let map = Mmap::map(&file).expect("maps");
        assert!(map.is_mapped(), "expected a real mmap on linux");
        assert!(map.iter().all(|&b| b == 7));
        let _ = std::fs::remove_file(path);
    }
}
