//! `vlite-store` — the tiered vector storage engine of the VectorLiteRAG
//! reproduction.
//!
//! The partitioner's `PartitionDecision` used to steer *routing only*:
//! every cluster lived in one in-memory, full-precision `VecSet`, so
//! "placement" changed nothing about where bytes live or how fast they
//! scan. This crate makes Algorithm 1's output physical:
//!
//! - **Hot clusters** (the fast tier) are resident full-precision arenas —
//!   `ids + n × dim × f32` in memory, scanned exactly like an IVF-Flat
//!   list.
//! - **Cold clusters** (the slow tier) persist in an on-disk segment file
//!   (checksummed header, per-cluster extents; see [`Segment`]) accessed
//!   through a read-only `mmap` and scanned as SQ8 codes against a
//!   per-query lookup table — genuinely cheaper in bytes and slower in
//!   recall-per-probe, the paper's asymmetric tiers.
//!
//! [`TieredStore`] implements `vlite-ann`'s `ClusterStore` trait through
//! generation-counted [`StoreSnapshot`]s, so the IVF scan path reads
//! through it without knowing which tier a cluster is on, and a live
//! migration ([`TieredStore::apply_placement`]) never blocks readers: all
//! promotion I/O happens outside the lock, the swap is one pointer store,
//! and in-flight scans keep their snapshot's arenas alive by `Arc`.
//!
//! The segment file doubles as the persisted-index artifact: a cold
//! cluster can be promoted by materializing its full-precision extent, and
//! a whole deployment can save → load → serve with bit-identical search
//! results ([`TieredStore::create_or_open`] verifies a reopened segment's
//! content checksums against the freshly built index).
//!
//! # Examples
//!
//! ```
//! use vlite_ann::{scan_lists_store, Metric, VecSet};
//! use vlite_store::TieredStore;
//!
//! let clusters: Vec<(Vec<u64>, VecSet)> = (0..4)
//!     .map(|c| {
//!         let ids = (c * 100..c * 100 + 8).collect();
//!         (ids, VecSet::from_fn(8, 4, |i, j| (c * 8 + i as u64 + j as u64) as f32))
//!     })
//!     .collect();
//! let path = std::env::temp_dir().join(format!("vlite-doc-{}.seg", std::process::id()));
//! let mut store = TieredStore::create(&path, 4, Metric::L2, &clusters, &[true, true, false, false])?;
//! store.set_ephemeral(true); // clean the temp segment up on drop
//!
//! let snapshot = store.snapshot();
//! let hits = scan_lists_store(&snapshot, &[0.0; 4], &[0, 1, 2, 3], 3);
//! assert_eq!(hits[0].id, 0);
//!
//! // Live migration: promote the cold clusters, demote the hot ones.
//! let shift = store.apply_placement(&[false, false, true, true]);
//! assert_eq!(shift.promoted, 2);
//! // The held snapshot still scans the old tiers — readers never stall.
//! assert!(snapshot.is_hot(0));
//! # Ok::<(), vlite_store::StoreError>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod checksum;
mod mmap;
mod segment;
mod sync;
mod tiered;

pub use checksum::{crc32, Crc32};
pub use mmap::Mmap;
pub use segment::{
    supports_metric, write_segment, Segment, StoreError, SEGMENT_MAGIC, SEGMENT_VERSION,
};
pub use tiered::{Residency, StoreSnapshot, StoreStats, TierShift, TieredStore};

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;
