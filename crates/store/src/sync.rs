//! Poisoned-lock recovery for the tier map (same idiom as `vlite-serve`).
//!
//! The tier map's write-side critical section is a single pointer swap,
//! so a panicking writer cannot leave the map half-updated: the guard a
//! recovering reader obtains always points at a complete, valid
//! `TierMap`. Panicking every subsequent scan because an
//! unrelated thread died would turn one fault into a store-wide outage;
//! recovering the guard keeps the scan path serving. The `lock-hygiene`
//! rule in `vlite-lint` enforces that acquisitions go through these
//! helpers instead of `.expect(…)` poisoning panics.

use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks `rwlock`, recovering the guard from poisoning.
pub(crate) fn read_recover<T>(rwlock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rwlock
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-locks `rwlock`, recovering the guard from poisoning.
pub(crate) fn write_recover<T>(rwlock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rwlock
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
