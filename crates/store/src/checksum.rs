//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`), table-driven.
//!
//! Every header and extent of the on-disk segment format carries one of
//! these so corruption (truncation, bit flips, stale partial writes) fails
//! loudly at open time instead of silently skewing distances.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 hasher.
///
/// # Examples
///
/// ```
/// use vlite_store::Crc32;
///
/// let mut h = Crc32::new();
/// h.update(b"123456789");
/// assert_eq!(h.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// CRC-32 of one contiguous buffer.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data: Vec<u8> = (0..=255).collect();
        let mut h = Crc32::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let mut data = vec![0u8; 1024];
        let clean = crc32(&data);
        data[513] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
