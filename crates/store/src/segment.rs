//! The on-disk cold-tier segment format.
//!
//! One segment file holds every cluster of one IVF index, each cluster as
//! three extents:
//!
//! - **ids** — `n × u64` vector ids (little-endian);
//! - **f32** — `n × dim × f32` full-precision vectors, the durable source
//!   of truth a *promotion* materializes into a resident arena;
//! - **sq8** — `n × dim × u8` scalar-quantized codes, what a *cold scan*
//!   actually reads, 4× fewer bytes than full precision.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset 0    magic               8 B   "VLSTSEG1"
//!        8    version             4 B   u32 = 1
//!        12   dim                 4 B   u32
//!        16   n_clusters          4 B   u32
//!        20   metric              4 B   u32 (0 = L2, 1 = inner product)
//!        24   total_vectors       8 B   u64
//!        32   sq mins             dim × f32
//!             sq scales           dim × f32
//!             cluster table       n_clusters × 48 B
//!                                 { n u64, ids_off u64, f32_off u64,
//!                                   sq8_off u64, ids_crc u32, f32_crc u32,
//!                                   sq8_crc u32, pad u32 }
//!             header crc          4 B   CRC-32 of every header byte above
//!             extents…                  (offsets are absolute)
//! ```
//!
//! Every extent carries its own CRC-32 and the header carries one over
//! itself; [`Segment::open`] verifies all of them plus every bound before
//! returning, so a truncated, bit-flipped, or stale file is a clean
//! [`StoreError`] — never a panic, never silently skewed distances. Files
//! are written under a temporary name and atomically renamed into place.

use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use vlite_ann::{Metric, ScalarQuantizer, VecSet};

use crate::checksum::{crc32, Crc32};
use crate::mmap::Mmap;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"VLSTSEG1";
/// On-disk format version written and accepted by this build.
pub const SEGMENT_VERSION: u32 = 1;

const FIXED_HEADER: usize = 8 + 4 + 4 + 4 + 4 + 8;
const TABLE_ENTRY: usize = 48;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file's contents are not a valid segment (bad magic/version,
    /// out-of-bounds extents, checksum mismatch, truncation, …).
    Corrupt(String),
    /// The file is a valid segment but does not describe the expected
    /// index (wrong dimensionality, cluster count, metric, or contents).
    Mismatch(String),
    /// The requested configuration is outside what the store supports.
    Unsupported(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(detail) => write!(f, "corrupt segment: {detail}"),
            StoreError::Mismatch(detail) => write!(f, "segment mismatch: {detail}"),
            StoreError::Unsupported(detail) => write!(f, "unsupported: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Whether the segment format can score payloads under `metric` (cosine
/// does not decompose over SQ8 lookup tables). Callers that *move* data
/// into a store should check this **before** detaching anything.
pub fn supports_metric(metric: Metric) -> bool {
    metric_code(metric).is_ok()
}

fn metric_code(metric: Metric) -> Result<u32> {
    match metric {
        Metric::L2 => Ok(0),
        Metric::InnerProduct => Ok(1),
        Metric::Cosine => Err(StoreError::Unsupported(
            "cosine does not decompose over SQ8 lookup tables; use L2 or inner product".into(),
        )),
    }
}

fn metric_from_code(code: u32) -> Result<Metric> {
    match code {
        0 => Ok(Metric::L2),
        1 => Ok(Metric::InnerProduct),
        other => Err(StoreError::Corrupt(format!("unknown metric code {other}"))),
    }
}

/// One cluster's parsed extent table entry (absolute offsets, validated).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClusterExtent {
    pub n: usize,
    pub ids_off: usize,
    pub f32_off: usize,
    pub sq8_off: usize,
    pub ids_crc: u32,
    pub f32_crc: u32,
}

/// Trains per-dimension SQ8 parameters over every vector of `clusters`.
fn train_sq(dim: usize, clusters: &[(Vec<u64>, VecSet)]) -> ScalarQuantizer {
    let mut mins = vec![f32::INFINITY; dim];
    let mut maxs = vec![f32::NEG_INFINITY; dim];
    for (_, vectors) in clusters {
        for v in vectors.iter() {
            for j in 0..dim {
                mins[j] = mins[j].min(v[j]);
                maxs[j] = maxs[j].max(v[j]);
            }
        }
    }
    let (mins, scales): (Vec<f32>, Vec<f32>) = mins
        .into_iter()
        .zip(maxs)
        .map(|(lo, hi)| {
            if lo.is_finite() && hi.is_finite() && hi > lo {
                (lo, (hi - lo) / 255.0)
            } else if lo.is_finite() {
                (lo, 1.0) // constant dimension: any scale round-trips to lo
            } else {
                (0.0, 1.0) // no vectors at all
            }
        })
        .unzip();
    ScalarQuantizer::from_params(mins, scales)
}

/// Serializes `clusters` into a segment file at `path` (written to a
/// temporary sibling, then atomically renamed).
///
/// # Errors
///
/// [`StoreError::Unsupported`] for the cosine metric or a cluster whose
/// dimensionality disagrees with `dim`; [`StoreError::Io`] on filesystem
/// failures.
pub fn write_segment(
    path: &Path,
    dim: usize,
    metric: Metric,
    clusters: &[(Vec<u64>, VecSet)],
) -> Result<()> {
    let metric_code = metric_code(metric)?;
    if dim == 0 || dim > u32::MAX as usize {
        return Err(StoreError::Unsupported(format!("bad dimensionality {dim}")));
    }
    if clusters.is_empty() {
        return Err(StoreError::Unsupported("need at least one cluster".into()));
    }
    let mut total_vectors = 0u64;
    for (c, (ids, vectors)) in clusters.iter().enumerate() {
        if vectors.dim() != dim {
            return Err(StoreError::Mismatch(format!(
                "cluster {c} has dim {} (segment dim {dim})",
                vectors.dim()
            )));
        }
        if ids.len() != vectors.len() {
            return Err(StoreError::Mismatch(format!(
                "cluster {c}: {} ids for {} vectors",
                ids.len(),
                vectors.len()
            )));
        }
        total_vectors += ids.len() as u64;
    }
    let sq = train_sq(dim, clusters);

    let n_clusters = clusters.len();
    let header_len = FIXED_HEADER + 8 * dim + TABLE_ENTRY * n_clusters + 4;

    // Stream the extents straight to the temp file (never buffering the
    // payload — at server start the detached lists already hold one copy
    // of the corpus): write a placeholder header, stream each cluster's
    // ids/f32/sq8 extents with incremental CRCs, then seek back and write
    // the real header over the placeholder.
    let tmp = path.with_extension("seg.tmp");
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::io::BufWriter::new(File::create(&tmp)?);
    file.write_all(&vec![0u8; header_len])?;

    let mut table: Vec<u8> = Vec::with_capacity(TABLE_ENTRY * n_clusters);
    let mut offset = header_len;
    for (ids, vectors) in clusters {
        let n = ids.len();
        let ids_off = offset;
        let mut crc = Crc32::new();
        for &id in ids {
            let bytes = id.to_le_bytes();
            crc.update(&bytes);
            file.write_all(&bytes)?;
        }
        let ids_crc = crc.finish();
        offset += n * 8;

        let f32_off = offset;
        let mut crc = Crc32::new();
        for v in vectors.iter() {
            for &x in v {
                let bytes = x.to_le_bytes();
                crc.update(&bytes);
                file.write_all(&bytes)?;
            }
        }
        let f32_crc = crc.finish();
        offset += n * dim * 4;

        let sq8_off = offset;
        let mut crc = Crc32::new();
        for v in vectors.iter() {
            let codes = sq.encode(v);
            crc.update(&codes);
            file.write_all(&codes)?;
        }
        let sq8_crc = crc.finish();
        offset += n * dim;

        table.extend_from_slice(&(n as u64).to_le_bytes());
        table.extend_from_slice(&(ids_off as u64).to_le_bytes());
        table.extend_from_slice(&(f32_off as u64).to_le_bytes());
        table.extend_from_slice(&(sq8_off as u64).to_le_bytes());
        table.extend_from_slice(&ids_crc.to_le_bytes());
        table.extend_from_slice(&f32_crc.to_le_bytes());
        table.extend_from_slice(&sq8_crc.to_le_bytes());
        table.extend_from_slice(&0u32.to_le_bytes());
    }

    let mut header: Vec<u8> = Vec::with_capacity(header_len);
    header.extend_from_slice(&SEGMENT_MAGIC);
    header.extend_from_slice(&SEGMENT_VERSION.to_le_bytes());
    header.extend_from_slice(&(dim as u32).to_le_bytes());
    header.extend_from_slice(&(n_clusters as u32).to_le_bytes());
    header.extend_from_slice(&metric_code.to_le_bytes());
    header.extend_from_slice(&total_vectors.to_le_bytes());
    for &m in sq.mins() {
        header.extend_from_slice(&m.to_le_bytes());
    }
    for &s in sq.scales() {
        header.extend_from_slice(&s.to_le_bytes());
    }
    header.extend_from_slice(&table);
    let header_crc = crc32(&header);
    header.extend_from_slice(&header_crc.to_le_bytes());
    debug_assert_eq!(header.len(), header_len);

    // Seek back over the placeholder; rename only after a full sync so
    // readers never observe a partial segment.
    let mut file = file.into_inner().map_err(|e| StoreError::Io(e.into()))?;
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&header)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// A validated, memory-mapped segment.
#[derive(Debug)]
pub struct Segment {
    map: Mmap,
    dim: usize,
    metric: Metric,
    sq: ScalarQuantizer,
    clusters: Vec<ClusterExtent>,
    total_vectors: u64,
    path: PathBuf,
}

fn bytes_at<'a>(map: &'a [u8], off: usize, len: usize, what: &str) -> Result<&'a [u8]> {
    off.checked_add(len)
        .and_then(|end| map.get(off..end))
        .ok_or_else(|| {
            StoreError::Corrupt(format!(
                "{what}: extent [{off}, {off}+{len}) exceeds file length {}",
                map.len()
            ))
        })
}

fn u32_at(map: &[u8], off: usize, what: &str) -> Result<u32> {
    let b = bytes_at(map, off, 4, what)?;
    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn u64_at(map: &[u8], off: usize, what: &str) -> Result<u64> {
    let b = bytes_at(map, off, 8, what)?;
    Ok(u64::from_le_bytes([
        b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
    ]))
}

fn f32_at(map: &[u8], off: usize, what: &str) -> Result<f32> {
    Ok(f32::from_bits(u32_at(map, off, what)?))
}

impl Segment {
    /// Opens and fully validates the segment at `path`: magic, version,
    /// header checksum, every extent's bounds, and every extent's CRC-32.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the file cannot be read,
    /// [`StoreError::Corrupt`] for any validation failure.
    pub fn open(path: &Path) -> Result<Segment> {
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        let bytes: &[u8] = &map;

        let magic = bytes_at(bytes, 0, 8, "magic")?;
        if magic != SEGMENT_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "bad magic {magic:02x?} (want {SEGMENT_MAGIC:02x?})"
            )));
        }
        let version = u32_at(bytes, 8, "version")?;
        if version != SEGMENT_VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported segment version {version} (want {SEGMENT_VERSION})"
            )));
        }
        let dim = u32_at(bytes, 12, "dim")? as usize;
        if dim == 0 {
            return Err(StoreError::Corrupt("zero dimensionality".into()));
        }
        let n_clusters = u32_at(bytes, 16, "n_clusters")? as usize;
        if n_clusters == 0 {
            return Err(StoreError::Corrupt("zero clusters".into()));
        }
        let metric = metric_from_code(u32_at(bytes, 20, "metric")?)?;
        let total_vectors = u64_at(bytes, 24, "total_vectors")?;

        let header_len = FIXED_HEADER
            .checked_add(8usize.checked_mul(dim).ok_or_else(huge)?)
            .and_then(|v| v.checked_add(TABLE_ENTRY.checked_mul(n_clusters)?))
            .and_then(|v| v.checked_add(4))
            .ok_or_else(huge)?;
        let stored_crc = u32_at(bytes, header_len - 4, "header crc")?;
        let actual_crc = crc32(bytes_at(bytes, 0, header_len - 4, "header")?);
        if stored_crc != actual_crc {
            return Err(StoreError::Corrupt(format!(
                "header checksum mismatch (stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )));
        }

        let mut mins = Vec::with_capacity(dim);
        let mut scales = Vec::with_capacity(dim);
        let sq_base = FIXED_HEADER;
        for j in 0..dim {
            mins.push(f32_at(bytes, sq_base + 4 * j, "sq mins")?);
            scales.push(f32_at(bytes, sq_base + 4 * (dim + j), "sq scales")?);
        }
        if mins.iter().any(|m| !m.is_finite()) || scales.iter().any(|s| !s.is_finite() || *s <= 0.0)
        {
            return Err(StoreError::Corrupt(
                "non-finite or non-positive SQ8 parameters".into(),
            ));
        }
        let sq = ScalarQuantizer::from_params(mins, scales);

        let table_base = FIXED_HEADER + 8 * dim;
        let mut clusters = Vec::with_capacity(n_clusters);
        let mut seen_vectors = 0u64;
        for c in 0..n_clusters {
            let e = table_base + TABLE_ENTRY * c;
            let n64 = u64_at(bytes, e, "cluster n")?;
            let n = usize::try_from(n64).map_err(|_| huge())?;
            let to_usize = |v: u64| usize::try_from(v).map_err(|_| huge());
            let ids_off = to_usize(u64_at(bytes, e + 8, "ids_off")?)?;
            let f32_off = to_usize(u64_at(bytes, e + 16, "f32_off")?)?;
            let sq8_off = to_usize(u64_at(bytes, e + 24, "sq8_off")?)?;
            let ids_crc = u32_at(bytes, e + 32, "ids_crc")?;
            let f32_crc = u32_at(bytes, e + 36, "f32_crc")?;
            let sq8_crc = u32_at(bytes, e + 40, "sq8_crc")?;

            let ids_len = n.checked_mul(8).ok_or_else(huge)?;
            let f32_len = n
                .checked_mul(dim)
                .and_then(|v| v.checked_mul(4))
                .ok_or_else(huge)?;
            let sq8_len = n.checked_mul(dim).ok_or_else(huge)?;
            let ids = bytes_at(bytes, ids_off, ids_len, "ids extent")?;
            let f32s = bytes_at(bytes, f32_off, f32_len, "f32 extent")?;
            let sq8s = bytes_at(bytes, sq8_off, sq8_len, "sq8 extent")?;
            if ids_off < header_len || f32_off < header_len || sq8_off < header_len {
                return Err(StoreError::Corrupt(format!(
                    "cluster {c}: extent overlaps the header"
                )));
            }
            for (name, extent, stored) in [
                ("ids", ids, ids_crc),
                ("f32", f32s, f32_crc),
                ("sq8", sq8s, sq8_crc),
            ] {
                let actual = crc32(extent);
                if actual != stored {
                    return Err(StoreError::Corrupt(format!(
                        "cluster {c} {name} extent checksum mismatch \
                         (stored {stored:#010x}, computed {actual:#010x})"
                    )));
                }
            }
            seen_vectors += n64;
            clusters.push(ClusterExtent {
                n,
                ids_off,
                f32_off,
                sq8_off,
                ids_crc,
                f32_crc,
            });
        }
        if seen_vectors != total_vectors {
            return Err(StoreError::Corrupt(format!(
                "cluster table sums to {seen_vectors} vectors, header claims {total_vectors}"
            )));
        }

        Ok(Segment {
            map,
            dim,
            metric,
            sq,
            clusters,
            total_vectors,
            path: path.to_path_buf(),
        })
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The metric the segment's payloads are scored under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total vectors across all clusters.
    pub fn total_vectors(&self) -> u64 {
        self.total_vectors
    }

    /// The segment file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The per-dimension SQ8 quantizer shared by every cluster.
    pub fn sq(&self) -> &ScalarQuantizer {
        &self.sq
    }

    /// Whether the bytes are served by a real memory mapping (as opposed
    /// to the heap-copy fallback on unsupported targets).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Number of vectors in cluster `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cluster_len(&self, c: u32) -> usize {
        self.clusters[c as usize].n
    }

    /// Bytes a cold scan of cluster `c` touches (ids + SQ8 codes).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cold_bytes(&self, c: u32) -> u64 {
        let n = self.clusters[c as usize].n as u64;
        n * (8 + self.dim as u64)
    }

    /// Bytes cluster `c` occupies when promoted to a resident hot arena
    /// (ids + full-precision vectors).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn hot_bytes(&self, c: u32) -> u64 {
        let n = self.clusters[c as usize].n as u64;
        n * (8 + 4 * self.dim as u64)
    }

    /// The `i`-th vector id of cluster `c`, decoded from the mapped ids
    /// extent.
    ///
    /// # Panics
    ///
    /// Panics if `c` or `i` is out of range.
    pub fn id_at(&self, c: u32, i: usize) -> u64 {
        let e = &self.clusters[c as usize];
        assert!(i < e.n, "id index {i} out of range (cluster holds {})", e.n);
        let off = e.ids_off + 8 * i;
        let b = &self.map[off..off + 8];
        u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
    }

    /// Cluster `c`'s SQ8 codes, row-major `n × dim`, straight from the
    /// mapping (no copy).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn sq8_codes(&self, c: u32) -> &[u8] {
        let e = &self.clusters[c as usize];
        &self.map[e.sq8_off..e.sq8_off + e.n * self.dim]
    }

    /// Materializes cluster `c`'s ids and full-precision vectors from the
    /// f32 extent — the promotion path.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn load_cluster_f32(&self, c: u32) -> (Vec<u64>, VecSet) {
        let e = &self.clusters[c as usize];
        let ids: Vec<u64> = (0..e.n).map(|i| self.id_at(c, i)).collect();
        let floats = &self.map[e.f32_off..e.f32_off + e.n * self.dim * 4];
        let mut flat = Vec::with_capacity(e.n * self.dim);
        for chunk in floats.chunks_exact(4) {
            flat.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        (ids, VecSet::from_flat(self.dim.max(1), flat))
    }

    /// The stored `(ids, f32)` extent CRCs of cluster `c`, for verifying a
    /// reopened segment against in-memory data.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn cluster_crcs(&self, c: u32) -> (u32, u32) {
        let e = &self.clusters[c as usize];
        (e.ids_crc, e.f32_crc)
    }
}

fn huge() -> StoreError {
    StoreError::Corrupt("extent arithmetic overflow".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub(crate) fn sample_clusters(
        n_clusters: usize,
        per: usize,
        dim: usize,
        seed: u64,
    ) -> Vec<(Vec<u64>, VecSet)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_clusters)
            .map(|c| {
                let ids: Vec<u64> = (0..per as u64).map(|i| (c as u64) * 1_000 + i).collect();
                let vectors =
                    VecSet::from_fn(per, dim, |_, _| (c as f32) * 2.0 + rng.random::<f32>());
                (ids, vectors)
            })
            .collect()
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "vlite-segment-test-{}-{tag}.seg",
            std::process::id()
        ))
    }

    #[test]
    fn round_trips_ids_vectors_and_codes() {
        let clusters = sample_clusters(6, 40, 8, 1);
        let path = temp_path("roundtrip");
        write_segment(&path, 8, Metric::L2, &clusters).expect("writes");
        let seg = Segment::open(&path).expect("opens");
        assert_eq!(seg.dim(), 8);
        assert_eq!(seg.n_clusters(), 6);
        assert_eq!(seg.total_vectors(), 240);
        for (c, (ids, vectors)) in clusters.iter().enumerate() {
            let c = c as u32;
            assert_eq!(seg.cluster_len(c), ids.len());
            let (got_ids, got_vecs) = seg.load_cluster_f32(c);
            assert_eq!(&got_ids, ids, "ids round-trip");
            assert_eq!(&got_vecs, vectors, "f32 vectors bit-identical");
            // SQ8 codes match a fresh encode under the stored params.
            let codes = seg.sq8_codes(c);
            for (i, v) in vectors.iter().enumerate() {
                assert_eq!(&codes[i * 8..(i + 1) * 8], seg.sq().encode(v).as_slice());
            }
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn empty_clusters_are_representable() {
        let mut clusters = sample_clusters(3, 10, 4, 2);
        clusters[1] = (Vec::new(), VecSet::new(4));
        let path = temp_path("empty");
        write_segment(&path, 4, Metric::L2, &clusters).expect("writes");
        let seg = Segment::open(&path).expect("opens");
        assert_eq!(seg.cluster_len(1), 0);
        assert_eq!(seg.total_vectors(), 20);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn cosine_metric_rejected() {
        let clusters = sample_clusters(2, 4, 4, 3);
        let path = temp_path("cosine");
        assert!(matches!(
            write_segment(&path, 4, Metric::Cosine, &clusters),
            Err(StoreError::Unsupported(_))
        ));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Segment::open(Path::new("/nonexistent/vlite.seg")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }
}
