//! The tiered storage engine: resident hot arenas + mmap'd SQ8 cold
//! extents behind one [`ClusterStore`], with live non-blocking tier
//! migration.
//!
//! Readers never block on a migration: a scan takes a [`StoreSnapshot`]
//! (an `Arc` of the generation-counted tier map, cloned under a read lock
//! held for nanoseconds — the same hot-swap discipline the serving
//! runtime's `Router` uses) and scans against that snapshot for the whole
//! batch. The migrator prepares new arenas entirely outside the lock,
//! then swaps the map pointer and bumps the generation; in-flight scans
//! keep their old snapshot alive via the `Arc` until they finish.
//!
//! Tier asymmetry is physical, exactly the paper's fast/slow split:
//!
//! - **Hot** clusters are full-precision arenas in memory
//!   (`ids + n × dim × f32`), scanned exactly as an in-memory IVF-Flat
//!   list would be.
//! - **Cold** clusters stay on disk in the segment's SQ8 extents
//!   (`ids + n × dim × u8`, 4× fewer payload bytes), scanned through a
//!   per-query lookup table built over the segment's quantizer — cheaper
//!   in bytes, pricier in recall-per-probe.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use vlite_ann::kernel::{self, Kernels};
use vlite_ann::{BatchQuery, ClusterStore, Metric, ScalarQuantizer, TopK, VecSet};

use crate::checksum::Crc32;
use crate::segment::{write_segment, Segment, StoreError};

/// Result alias re-used from the segment layer.
pub type Result<T> = std::result::Result<T, StoreError>;

/// One resident full-precision cluster.
#[derive(Debug)]
struct HotCluster {
    ids: Vec<u64>,
    vectors: VecSet,
}

/// Where one cluster currently lives.
#[derive(Debug, Clone)]
enum TierEntry {
    /// Resident full-precision arena (fast tier).
    Hot(Arc<HotCluster>),
    /// On-disk SQ8 extent, scanned through the segment mapping (slow
    /// tier).
    Cold,
}

/// The generation-counted tier map readers snapshot.
#[derive(Debug)]
struct TierMap {
    entries: Vec<TierEntry>,
    generation: u64,
}

/// Monotonic scan/migration counters shared by the store and every
/// snapshot taken from it.
#[derive(Debug, Default)]
struct Counters {
    hot_probes: AtomicU64,
    cold_probes: AtomicU64,
    hot_bytes_scanned: AtomicU64,
    cold_bytes_scanned: AtomicU64,
    bytes_promoted: AtomicU64,
    bytes_demoted: AtomicU64,
    clusters_promoted: AtomicU64,
    clusters_demoted: AtomicU64,
    snapshot_waits: AtomicU64,
    blocked_scans: AtomicU64,
}

/// A point-in-time copy of the store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Probes scanned against hot (resident full-precision) clusters.
    pub hot_probes: u64,
    /// Probes scanned against cold (mmap'd SQ8) clusters.
    pub cold_probes: u64,
    /// Payload bytes touched by hot scans.
    pub hot_bytes_scanned: u64,
    /// Payload bytes touched by cold scans.
    pub cold_bytes_scanned: u64,
    /// Bytes materialized into resident arenas by promotions.
    pub bytes_promoted: u64,
    /// Resident bytes released by demotions.
    pub bytes_demoted: u64,
    /// Clusters promoted cold → hot.
    pub clusters_promoted: u64,
    /// Clusters demoted hot → cold.
    pub clusters_demoted: u64,
    /// Times a reader found the tier map write-locked and had to wait —
    /// 0 in healthy runs: the migrator only holds the write lock for one
    /// pointer swap.
    pub snapshot_waits: u64,
    /// Blocked (cluster-major) passes that scored ≥ 2 *distinct* queries
    /// of a batch in one sweep over a cluster's bytes (one query probing
    /// the same cluster twice is not a batching win and does not count).
    /// Each such pass counts every query in `hot_probes`/`cold_probes`
    /// but the payload bytes only once in `*_bytes_scanned` — the
    /// bytes-per-probe saving *is* the blocking win.
    pub blocked_scans: u64,
}

/// Fast-tier residency of the store at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Residency {
    /// Clusters currently hot.
    pub hot_clusters: usize,
    /// Total clusters in the store.
    pub total_clusters: usize,
    /// Bytes resident in hot arenas.
    pub hot_bytes: u64,
    /// Bytes the cold tier would touch scanning every cold cluster once.
    pub cold_bytes: u64,
}

impl Residency {
    /// Hot fraction of total stored bytes (`0.0` when the store is
    /// empty).
    pub fn byte_fraction(&self) -> f64 {
        let total = self.hot_bytes + self.cold_bytes;
        if total == 0 {
            0.0
        } else {
            self.hot_bytes as f64 / total as f64
        }
    }
}

/// Outcome of one [`TieredStore::apply_placement`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierShift {
    /// Clusters promoted cold → hot by this call.
    pub promoted: usize,
    /// Clusters demoted hot → cold by this call.
    pub demoted: usize,
    /// Bytes materialized into resident arenas.
    pub bytes_promoted: u64,
    /// Resident bytes released.
    pub bytes_demoted: u64,
    /// The store generation after the swap.
    pub generation: u64,
}

/// The tiered vector storage engine over one segment file.
#[derive(Debug)]
pub struct TieredStore {
    segment: Arc<Segment>,
    map: RwLock<Arc<TierMap>>,
    counters: Arc<Counters>,
    opened_existing: bool,
    ephemeral: bool,
}

impl TieredStore {
    /// Writes a fresh segment at `path` from `clusters` and opens it with
    /// the given hot set resident.
    ///
    /// # Errors
    ///
    /// Propagates segment write/validation errors; rejects a `hot` slice
    /// whose length differs from the cluster count.
    pub fn create(
        path: &Path,
        dim: usize,
        metric: Metric,
        clusters: &[(Vec<u64>, VecSet)],
        hot: &[bool],
    ) -> Result<TieredStore> {
        write_segment(path, dim, metric, clusters)?;
        let mut store = Self::open(path, metric, hot)?;
        store.opened_existing = false;
        Ok(store)
    }

    /// Opens an existing segment at `path`, loading the `hot` clusters
    /// into resident arenas.
    ///
    /// # Errors
    ///
    /// Propagates segment validation errors; [`StoreError::Mismatch`] if
    /// the segment's metric differs from `metric` or `hot` has the wrong
    /// length.
    pub fn open(path: &Path, metric: Metric, hot: &[bool]) -> Result<TieredStore> {
        let segment = Arc::new(Segment::open(path)?);
        if segment.metric() != metric {
            return Err(StoreError::Mismatch(format!(
                "segment scores under {:?}, deployment wants {metric:?}",
                segment.metric()
            )));
        }
        if hot.len() != segment.n_clusters() {
            return Err(StoreError::Mismatch(format!(
                "hot set covers {} clusters, segment holds {}",
                hot.len(),
                segment.n_clusters()
            )));
        }
        let entries: Vec<TierEntry> = hot
            .iter()
            .enumerate()
            .map(|(c, &is_hot)| {
                if is_hot {
                    let (ids, vectors) = segment.load_cluster_f32(c as u32);
                    TierEntry::Hot(Arc::new(HotCluster { ids, vectors }))
                } else {
                    TierEntry::Cold
                }
            })
            .collect();
        Ok(TieredStore {
            segment,
            map: RwLock::new(Arc::new(TierMap {
                entries,
                generation: 0,
            })),
            counters: Arc::new(Counters::default()),
            opened_existing: true,
            ephemeral: false,
        })
    }

    /// Opens the segment at `path` if one exists (verifying it describes
    /// exactly `clusters`), otherwise creates it — the save → load →
    /// serve entry point. [`TieredStore::opened_existing`] reports which
    /// path was taken.
    ///
    /// # Errors
    ///
    /// Propagates create/open errors; [`StoreError::Mismatch`] if an
    /// existing file's shape or per-cluster content checksums disagree
    /// with `clusters`.
    pub fn create_or_open(
        path: &Path,
        dim: usize,
        metric: Metric,
        clusters: &[(Vec<u64>, VecSet)],
        hot: &[bool],
    ) -> Result<TieredStore> {
        if !path.exists() {
            return Self::create(path, dim, metric, clusters, hot);
        }
        let store = Self::open(path, metric, hot)?;
        let segment = &store.segment;
        if segment.dim() != dim || segment.n_clusters() != clusters.len() {
            return Err(StoreError::Mismatch(format!(
                "existing segment is {} clusters × dim {}, deployment built {} × {dim}",
                segment.n_clusters(),
                segment.dim(),
                clusters.len()
            )));
        }
        for (c, (ids, vectors)) in clusters.iter().enumerate() {
            let (ids_crc, f32_crc) = segment.cluster_crcs(c as u32);
            let mut h = Crc32::new();
            for &id in ids {
                h.update(&id.to_le_bytes());
            }
            if h.finish() != ids_crc {
                return Err(StoreError::Mismatch(format!(
                    "cluster {c}: existing segment holds different vector ids"
                )));
            }
            let mut h = Crc32::new();
            for v in vectors.iter() {
                for &x in v {
                    h.update(&x.to_le_bytes());
                }
            }
            if h.finish() != f32_crc {
                return Err(StoreError::Mismatch(format!(
                    "cluster {c}: existing segment holds different vectors"
                )));
            }
        }
        Ok(store)
    }

    /// Whether this store reopened an existing segment file rather than
    /// writing a fresh one.
    pub fn opened_existing(&self) -> bool {
        self.opened_existing
    }

    /// Marks the segment file (and its parent directory, if then empty)
    /// for removal when the store drops — used for auto-created temp
    /// segments so default serving runs leave nothing behind.
    pub fn set_ephemeral(&mut self, ephemeral: bool) {
        self.ephemeral = ephemeral;
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.segment.dim()
    }

    /// Number of clusters.
    pub fn n_clusters(&self) -> usize {
        self.segment.n_clusters()
    }

    /// The metric payloads are scored under.
    pub fn metric(&self) -> Metric {
        self.segment.metric()
    }

    /// The segment file backing the cold tier.
    pub fn path(&self) -> &Path {
        self.segment.path()
    }

    /// The SQ8 quantizer cold extents are encoded under.
    pub fn sq(&self) -> &ScalarQuantizer {
        self.segment.sq()
    }

    /// Whether cold extents are served by a real memory mapping.
    pub fn is_mapped(&self) -> bool {
        self.segment.is_mapped()
    }

    /// The store generation: bumped by every applied tier shift.
    pub fn generation(&self) -> u64 {
        crate::sync::read_recover(&self.map).generation
    }

    /// The current hot flags, indexed by cluster id.
    pub fn hot_flags(&self) -> Vec<bool> {
        let map = crate::sync::read_recover(&self.map);
        map.entries
            .iter()
            .map(|e| matches!(e, TierEntry::Hot(_)))
            .collect()
    }

    /// Fast-tier residency right now.
    pub fn residency(&self) -> Residency {
        let map = crate::sync::read_recover(&self.map);
        let mut r = Residency {
            hot_clusters: 0,
            total_clusters: map.entries.len(),
            hot_bytes: 0,
            cold_bytes: 0,
        };
        for (c, entry) in map.entries.iter().enumerate() {
            match entry {
                TierEntry::Hot(_) => {
                    r.hot_clusters += 1;
                    r.hot_bytes += self.segment.hot_bytes(c as u32);
                }
                TierEntry::Cold => {
                    r.cold_bytes += self.segment.cold_bytes(c as u32);
                }
            }
        }
        r
    }

    /// A point-in-time copy of the scan/migration counters.
    pub fn stats(&self) -> StoreStats {
        let c = &self.counters;
        StoreStats {
            // relaxed: independent monotone stat counters; a snapshot may
            // tear across fields but every value is a real observed count.
            hot_probes: c.hot_probes.load(Ordering::Relaxed),
            cold_probes: c.cold_probes.load(Ordering::Relaxed),
            hot_bytes_scanned: c.hot_bytes_scanned.load(Ordering::Relaxed),
            cold_bytes_scanned: c.cold_bytes_scanned.load(Ordering::Relaxed),
            // relaxed: same independent stat counters, continued.
            bytes_promoted: c.bytes_promoted.load(Ordering::Relaxed),
            bytes_demoted: c.bytes_demoted.load(Ordering::Relaxed),
            clusters_promoted: c.clusters_promoted.load(Ordering::Relaxed),
            clusters_demoted: c.clusters_demoted.load(Ordering::Relaxed),
            snapshot_waits: c.snapshot_waits.load(Ordering::Relaxed),
            blocked_scans: c.blocked_scans.load(Ordering::Relaxed),
        }
    }

    /// Takes a read snapshot of the tier map for scanning. Never blocks in
    /// healthy operation: the writer only holds the write lock for a
    /// pointer swap, and the rare collision is counted in
    /// [`StoreStats::snapshot_waits`].
    pub fn snapshot(&self) -> StoreSnapshot {
        let map = match self.map.try_read() {
            Ok(guard) => guard.clone(),
            Err(std::sync::TryLockError::WouldBlock) => {
                // relaxed: contention tally only; ordered by the read lock
                // acquired on the next line.
                self.counters.snapshot_waits.fetch_add(1, Ordering::Relaxed);
                crate::sync::read_recover(&self.map).clone()
            }
            // A panicking writer cannot leave a torn map (the write-side
            // critical section is one pointer swap), so recover the guard.
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner().clone(),
        };
        StoreSnapshot {
            segment: self.segment.clone(),
            map,
            counters: self.counters.clone(),
        }
    }

    /// Moves the store to a new hot set: promotions materialize f32
    /// extents from the segment into resident arenas, demotions release
    /// arenas back to the cold tier. All I/O and arena construction happen
    /// *before* the write lock is taken; the lock is held only to swap the
    /// map pointer, so concurrent readers are never stalled behind disk
    /// reads. Clusters already in the requested tier are untouched (their
    /// arenas are shared with the previous map by `Arc`).
    ///
    /// # Panics
    ///
    /// Panics if `hot.len()` differs from the cluster count.
    pub fn apply_placement(&self, hot: &[bool]) -> TierShift {
        assert_eq!(
            hot.len(),
            self.n_clusters(),
            "hot set must cover every cluster"
        );
        let old = crate::sync::read_recover(&self.map).clone();
        let mut shift = TierShift::default();
        let entries: Vec<TierEntry> = old
            .entries
            .iter()
            .enumerate()
            .map(|(c, entry)| match (entry, hot[c]) {
                (TierEntry::Hot(arena), true) => TierEntry::Hot(arena.clone()),
                (TierEntry::Cold, false) => TierEntry::Cold,
                (TierEntry::Cold, true) => {
                    let (ids, vectors) = self.segment.load_cluster_f32(c as u32);
                    shift.promoted += 1;
                    shift.bytes_promoted += self.segment.hot_bytes(c as u32);
                    TierEntry::Hot(Arc::new(HotCluster { ids, vectors }))
                }
                (TierEntry::Hot(_), false) => {
                    shift.demoted += 1;
                    shift.bytes_demoted += self.segment.hot_bytes(c as u32);
                    TierEntry::Cold
                }
            })
            .collect();
        let next = Arc::new(TierMap {
            entries,
            generation: old.generation + 1,
        });
        {
            // The only write-side critical section: one pointer swap.
            let mut guard = crate::sync::write_recover(&self.map);
            *guard = next;
            shift.generation = guard.generation;
        }
        let c = &self.counters;
        // relaxed: migration accounting read only via stats(); the shift
        // itself is published by the write lock's release above.
        c.bytes_promoted
            .fetch_add(shift.bytes_promoted, Ordering::Relaxed);
        c.bytes_demoted
            .fetch_add(shift.bytes_demoted, Ordering::Relaxed);
        // relaxed: same migration accounting, continued.
        c.clusters_promoted
            .fetch_add(shift.promoted as u64, Ordering::Relaxed);
        c.clusters_demoted
            .fetch_add(shift.demoted as u64, Ordering::Relaxed);
        shift
    }
}

impl Drop for TieredStore {
    fn drop(&mut self) {
        if self.ephemeral {
            let path = self.segment.path().to_path_buf();
            let _ = std::fs::remove_file(&path);
            if let Some(parent) = path.parent() {
                let _ = std::fs::remove_dir(parent); // only if empty
            }
        }
    }
}

/// Per-query SQ8 asymmetric-distance lookup table: `dim × 256` partial
/// scores, so a cold scan is `dim` table lookups and adds per vector.
struct SqLut {
    dim: usize,
    table: Vec<f32>,
}

impl SqLut {
    fn new(sq: &ScalarQuantizer, metric: Metric, query: &[f32]) -> SqLut {
        let dim = sq.dim();
        debug_assert_eq!(query.len(), dim);
        let mut table = Vec::with_capacity(dim * 256);
        for (j, &q) in query.iter().enumerate() {
            let (min, scale) = (sq.mins()[j], sq.scales()[j]);
            for code in 0..256u32 {
                let decoded = min + (code as f32) * scale;
                table.push(match metric {
                    Metric::L2 => {
                        let d = q - decoded;
                        d * d
                    }
                    Metric::InnerProduct => -(q * decoded),
                    Metric::Cosine => unreachable!("cosine rejected at segment write"),
                });
            }
        }
        SqLut { dim, table }
    }

    /// Scores one stored vector's codes through `kern`'s SQ8 kernel
    /// (AVX2 gather on supporting CPUs, scalar otherwise).
    #[inline]
    fn distance(&self, kern: &Kernels, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.dim);
        (kern.sq8_lut_sum)(&self.table, code)
    }
}

/// A consistent view of the tier map for one scan batch.
///
/// Holding a snapshot pins the arenas it references: a migration that
/// demotes a cluster mid-batch does not invalidate scans already running
/// against the old map.
#[derive(Debug)]
pub struct StoreSnapshot {
    segment: Arc<Segment>,
    map: Arc<TierMap>,
    counters: Arc<Counters>,
}

impl StoreSnapshot {
    /// The generation of the tier map this snapshot pinned.
    pub fn generation(&self) -> u64 {
        self.map.generation
    }

    /// Whether `cluster` is hot in this snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn is_hot(&self, cluster: u32) -> bool {
        matches!(self.map.entries[cluster as usize], TierEntry::Hot(_))
    }

    /// Scores `query` against one hot vector via the resolved kernel
    /// table — metric branch outside the caller's vector loop would be
    /// better still, but the fn-pointer call is branch-predictable and
    /// the arms stay in one place.
    #[inline]
    fn score_hot(kern: &Kernels, metric: Metric, query: &[f32], v: &[f32]) -> f32 {
        match metric {
            Metric::L2 => (kern.l2_sq)(query, v),
            Metric::InnerProduct => -(kern.dot)(query, v),
            // Cosine never reaches a tiered scan (rejected at segment
            // write); score it portably if it somehow does.
            Metric::Cosine => metric.score(query, v),
        }
    }

    fn scan_hot(
        &self,
        cluster: u32,
        arena: &HotCluster,
        query: &[f32],
        top: &mut TopK,
        kern: &Kernels,
    ) {
        // relaxed: hot-path probe tally; only read by stats(), never used
        // to order memory.
        self.counters.hot_probes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .hot_bytes_scanned
            .fetch_add(self.segment.hot_bytes(cluster), Ordering::Relaxed);
        let metric = self.segment.metric();
        for (i, v) in arena.vectors.iter().enumerate() {
            top.push(arena.ids[i], Self::score_hot(kern, metric, query, v));
        }
    }

    fn scan_cold(&self, cluster: u32, lut: &SqLut, top: &mut TopK, kern: &Kernels) {
        // relaxed: cold-path probe tally; only read by stats(), never used
        // to order memory.
        self.counters.cold_probes.fetch_add(1, Ordering::Relaxed);
        self.counters
            .cold_bytes_scanned
            .fetch_add(self.segment.cold_bytes(cluster), Ordering::Relaxed);
        let dim = self.segment.dim();
        let codes = self.segment.sq8_codes(cluster);
        for (i, code) in codes.chunks_exact(dim).enumerate() {
            top.push(self.segment.id_at(cluster, i), lut.distance(kern, code));
        }
    }

    /// Whether a blocked pass's query list names ≥ 2 *distinct* queries
    /// — the `blocked_scans` counter's documented semantics. A query
    /// whose probe list repeats a cluster id occurs in `qis` once per
    /// occurrence (kept that way so blocked scoring stays exactly
    /// equivalent to the per-query path, which also re-scores the
    /// duplicate), but such repeats are not a batching win and must not
    /// tick the counter. `qis` is nondecreasing by construction (the
    /// inversion walks queries in index order), so distinctness is one
    /// adjacent-pair sweep.
    fn is_multi_query(qis: &[usize]) -> bool {
        qis.windows(2).any(|w| w[0] != w[1])
    }

    /// One blocked pass over a hot cluster: every vector is streamed
    /// once and scored against all `qis` queries (batch-major loop).
    fn scan_hot_blocked(
        &self,
        cluster: u32,
        arena: &HotCluster,
        queries: &[BatchQuery<'_>],
        qis: &[usize],
        tops: &mut [TopK],
        kern: &Kernels,
    ) {
        // relaxed: probe tally; only read by stats(). Each query of the
        // pass counts as a probe.
        self.counters
            .hot_probes
            .fetch_add(qis.len() as u64, Ordering::Relaxed);
        // relaxed: byte tally; only read by stats(). The payload bytes
        // count once per blocked pass — that saving is the point.
        self.counters
            .hot_bytes_scanned
            .fetch_add(self.segment.hot_bytes(cluster), Ordering::Relaxed);
        if Self::is_multi_query(qis) {
            // relaxed: same stats-only tally as the probe counters above.
            self.counters.blocked_scans.fetch_add(1, Ordering::Relaxed);
        }
        let metric = self.segment.metric();
        for (i, v) in arena.vectors.iter().enumerate() {
            let id = arena.ids[i];
            for &qi in qis {
                tops[qi].push(id, Self::score_hot(kern, metric, queries[qi].query, v));
            }
        }
    }

    /// One blocked pass over a cold cluster: the cluster's code bytes are
    /// streamed from the segment once (the first query's walk) and every
    /// further probing query re-reads them from cache, query-major so
    /// each query's LUT stays hot in L1/L2 through its walk. (The
    /// code-major orientation loses badly here: it switches between the
    /// per-query 64 KiB LUTs on every vector, and the SIMD gather path
    /// amplifies those misses.) Missing LUTs are built here, on the
    /// query's first cold probe of the batch.
    fn scan_cold_blocked(
        &self,
        cluster: u32,
        queries: &[BatchQuery<'_>],
        qis: &[usize],
        luts: &mut [Option<SqLut>],
        tops: &mut [TopK],
        kern: &Kernels,
    ) {
        // relaxed: probe tally; only read by stats(). Each query of the
        // pass counts as a probe.
        self.counters
            .cold_probes
            .fetch_add(qis.len() as u64, Ordering::Relaxed);
        // relaxed: byte tally; only read by stats(). The payload bytes
        // count once per blocked pass — that saving is the point.
        self.counters
            .cold_bytes_scanned
            .fetch_add(self.segment.cold_bytes(cluster), Ordering::Relaxed);
        if Self::is_multi_query(qis) {
            // relaxed: same stats-only tally as the probe counters above.
            self.counters.blocked_scans.fetch_add(1, Ordering::Relaxed);
        }
        for &qi in qis {
            if luts[qi].is_none() {
                luts[qi] = Some(SqLut::new(
                    self.segment.sq(),
                    self.segment.metric(),
                    queries[qi].query,
                ));
            }
        }
        let dim = self.segment.dim();
        let codes = self.segment.sq8_codes(cluster);
        for &qi in qis {
            if let Some(lut) = luts[qi].as_ref() {
                for (i, code) in codes.chunks_exact(dim).enumerate() {
                    tops[qi].push(self.segment.id_at(cluster, i), lut.distance(kern, code));
                }
            }
        }
    }
}

impl ClusterStore for StoreSnapshot {
    fn dim(&self) -> usize {
        self.segment.dim()
    }

    fn n_clusters(&self) -> usize {
        self.segment.n_clusters()
    }

    fn metric(&self) -> Metric {
        self.segment.metric()
    }

    fn cluster_len(&self, cluster: u32) -> usize {
        self.segment.cluster_len(cluster)
    }

    fn scan_cluster(&self, cluster: u32, query: &[f32], top: &mut TopK) {
        assert_eq!(query.len(), self.segment.dim(), "query dimensionality");
        // Kernel dispatch resolves once per pass; the scan loops below
        // run over plain function pointers.
        let kern = kernel::kernels();
        match &self.map.entries[cluster as usize] {
            TierEntry::Hot(arena) => self.scan_hot(cluster, arena, query, top, &kern),
            TierEntry::Cold => {
                let lut = SqLut::new(self.segment.sq(), self.segment.metric(), query);
                self.scan_cold(cluster, &lut, top, &kern);
            }
        }
    }

    /// The LUT depends only on the query and the segment's quantizer, so
    /// one table serves every cold probe of the scan — built lazily on
    /// the first cold cluster (an all-hot probe set never pays for it).
    fn scan_clusters(&self, clusters: &[u32], query: &[f32], top: &mut TopK) {
        assert_eq!(query.len(), self.segment.dim(), "query dimensionality");
        // Kernel dispatch resolves once per pass; the scan loops below
        // run over plain function pointers.
        let kern = kernel::kernels();
        let mut lut: Option<SqLut> = None;
        for &cluster in clusters {
            match &self.map.entries[cluster as usize] {
                TierEntry::Hot(arena) => self.scan_hot(cluster, arena, query, top, &kern),
                TierEntry::Cold => {
                    let lut = lut.get_or_insert_with(|| {
                        SqLut::new(self.segment.sq(), self.segment.metric(), query)
                    });
                    self.scan_cold(cluster, lut, top, &kern);
                }
            }
        }
    }

    /// Blocked (cluster-major) batch scan: the per-query probe lists are
    /// inverted into cluster → probing-queries, then each cluster's bytes
    /// are streamed exactly once, scoring every query that probes it.
    /// Results are identical to the query-at-a-time default for every
    /// query — [`TopK`]'s `(score, id)` total order makes the outcome
    /// independent of push order — only the traversal (and therefore the
    /// bytes touched) changes.
    fn scan_batch(&self, queries: &[BatchQuery<'_>], tops: &mut [TopK]) {
        assert_eq!(queries.len(), tops.len(), "one TopK per batched query");
        for q in queries {
            assert_eq!(q.query.len(), self.segment.dim(), "query dimensionality");
        }
        // Kernel dispatch resolves once for the whole batch.
        let kern = kernel::kernels();
        // BTreeMap: clusters are visited in ascending id order, so the
        // traversal (and every counter) is deterministic for a batch.
        let mut by_cluster: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (qi, q) in queries.iter().enumerate() {
            for &c in q.lists {
                by_cluster.entry(c).or_default().push(qi);
            }
        }
        // Per-query SQ8 LUTs, built lazily on the query's first cold
        // probe and shared across all its cold clusters of the batch.
        let mut luts: Vec<Option<SqLut>> = queries.iter().map(|_| None).collect();
        for (&cluster, qis) in &by_cluster {
            match &self.map.entries[cluster as usize] {
                TierEntry::Hot(arena) => {
                    self.scan_hot_blocked(cluster, arena, queries, qis, tops, &kern);
                }
                TierEntry::Cold => {
                    self.scan_cold_blocked(cluster, queries, qis, &mut luts, tops, &kern);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_ann::scan_lists_store;

    fn sample_clusters(
        n_clusters: usize,
        per: usize,
        dim: usize,
        seed: u64,
    ) -> Vec<(Vec<u64>, VecSet)> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n_clusters)
            .map(|c| {
                let ids: Vec<u64> = (0..per as u64).map(|i| (c as u64) * 1_000 + i).collect();
                let vectors =
                    VecSet::from_fn(per, dim, |_, _| (c as f32) * 2.0 + rng.random::<f32>());
                (ids, vectors)
            })
            .collect()
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "vlite-tiered-test-{}-{tag}.seg",
            std::process::id()
        ))
    }

    #[test]
    fn hot_scan_matches_source_vectors_exactly() {
        let clusters = sample_clusters(4, 30, 8, 10);
        let path = temp_path("hot");
        let store =
            TieredStore::create(&path, 8, Metric::L2, &clusters, &[true; 4]).expect("creates");
        let snap = store.snapshot();
        let query: Vec<f32> = clusters[2].1.get(5).to_vec();
        let hits = scan_lists_store(&snap, &query, &[0, 1, 2, 3], 1);
        assert_eq!(hits[0].id, 2_005, "a vector is its own nearest neighbor");
        assert_eq!(hits[0].distance, 0.0);
        assert!(store.stats().hot_probes == 4 && store.stats().cold_probes == 0);
        drop(snap);
        drop(store);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn cold_scan_equals_scanning_the_decoded_vectors() {
        let clusters = sample_clusters(3, 25, 6, 11);
        let path = temp_path("cold");
        let store =
            TieredStore::create(&path, 6, Metric::L2, &clusters, &[false; 3]).expect("creates");
        let snap = store.snapshot();
        let query: Vec<f32> = clusters[1].1.get(3).to_vec();
        let hits = scan_lists_store(&snap, &query, &[0, 1, 2], 5);

        // Reference: decode every vector's SQ8 code at full precision with
        // the segment's own quantizer and scan flat.
        let sq = store.sq().clone();
        let mut top = TopK::new(5);
        for (ids, vectors) in &clusters {
            for (i, v) in vectors.iter().enumerate() {
                let decoded = sq.decode(&sq.encode(v));
                let mut d = 0.0f32;
                for (q, x) in query.iter().zip(&decoded) {
                    d += (q - x) * (q - x);
                }
                top.push(ids[i], d);
            }
        }
        let want = top.into_sorted();
        assert_eq!(
            hits.iter().map(|n| n.id).collect::<Vec<_>>(),
            want.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        for (a, b) in hits.iter().zip(&want) {
            assert!((a.distance - b.distance).abs() < 1e-3, "{a:?} vs {b:?}");
        }
        assert!(store.stats().cold_probes == 3 && store.stats().hot_probes == 0);
        drop(snap);
        drop(store);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn migration_is_invisible_to_held_snapshots() {
        let clusters = sample_clusters(4, 20, 4, 12);
        let path = temp_path("migrate");
        let store =
            TieredStore::create(&path, 4, Metric::L2, &clusters, &[true, true, false, false])
                .expect("creates");
        let before = store.snapshot();
        assert!(before.is_hot(0) && !before.is_hot(2));

        let shift = store.apply_placement(&[false, false, true, true]);
        assert_eq!(shift.promoted, 2);
        assert_eq!(shift.demoted, 2);
        assert!(shift.bytes_promoted > 0 && shift.bytes_demoted > 0);
        assert_eq!(shift.generation, 1);
        assert_eq!(store.generation(), 1);

        // The old snapshot still sees — and can scan — the old tiers.
        assert!(before.is_hot(0));
        let query: Vec<f32> = clusters[0].1.get(0).to_vec();
        let old_hits = scan_lists_store(&before, &query, &[0, 1, 2, 3], 3);
        let after = store.snapshot();
        assert!(!after.is_hot(0) && after.is_hot(2));
        let new_hits = scan_lists_store(&after, &query, &[0, 1, 2, 3], 3);
        assert_eq!(
            old_hits[0].id, new_hits[0].id,
            "identity results survive the tier move"
        );
        assert_eq!(store.hot_flags(), vec![false, false, true, true]);
        drop((before, after, store));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn noop_placement_still_bumps_the_generation_only() {
        let clusters = sample_clusters(2, 5, 4, 13);
        let path = temp_path("noop");
        let store =
            TieredStore::create(&path, 4, Metric::L2, &clusters, &[true, false]).expect("creates");
        let shift = store.apply_placement(&[true, false]);
        assert_eq!(shift.promoted + shift.demoted, 0);
        assert_eq!(shift.bytes_promoted + shift.bytes_demoted, 0);
        assert_eq!(store.generation(), 1);
        drop(store);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn create_or_open_reuses_and_verifies_an_existing_segment() {
        let clusters = sample_clusters(3, 12, 4, 14);
        let path = temp_path("reuse");
        let first = TieredStore::create(&path, 4, Metric::L2, &clusters, &[true, false, false])
            .expect("creates");
        assert!(!first.opened_existing());
        drop(first);

        let second =
            TieredStore::create_or_open(&path, 4, Metric::L2, &clusters, &[false, true, false])
                .expect("reopens");
        assert!(second.opened_existing());
        assert_eq!(second.hot_flags(), vec![false, true, false]);
        drop(second);

        // Same shape, different contents: must be rejected, not served.
        let other = sample_clusters(3, 12, 4, 999);
        let err = TieredStore::create_or_open(&path, 4, Metric::L2, &other, &[false; 3])
            .expect_err("mismatched contents");
        assert!(matches!(err, StoreError::Mismatch(_)), "{err}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ephemeral_store_removes_its_file_on_drop() {
        let clusters = sample_clusters(2, 5, 4, 15);
        let path = temp_path("ephemeral");
        let mut store =
            TieredStore::create(&path, 4, Metric::L2, &clusters, &[false, false]).expect("creates");
        store.set_ephemeral(true);
        assert!(path.exists());
        drop(store);
        assert!(!path.exists(), "ephemeral segment must be cleaned up");
    }

    #[test]
    fn residency_accounts_hot_and_cold_bytes() {
        let clusters = sample_clusters(4, 10, 8, 16);
        let path = temp_path("residency");
        let store =
            TieredStore::create(&path, 8, Metric::L2, &clusters, &[true, true, false, false])
                .expect("creates");
        let r = store.residency();
        assert_eq!(r.hot_clusters, 2);
        assert_eq!(r.total_clusters, 4);
        // Hot arenas: 10 × (8 + 32) per cluster; cold extents: 10 × (8 + 8).
        assert_eq!(r.hot_bytes, 2 * 10 * 40);
        assert_eq!(r.cold_bytes, 2 * 10 * 16);
        assert!(r.byte_fraction() > 0.5, "full precision dominates bytes");
        drop(store);
        let _ = std::fs::remove_file(path);
    }
}
