//! The long-lived serving runtime: admission → batcher → shard workers +
//! CPU scan worker → dispatcher → control loop.
//!
//! This generalizes the one-shot dispatcher prototype (`dispatch.rs`,
//! formerly `vlite-core`'s `real.rs`) into persistent threads coordinated
//! through channels. One batch is in flight at a time — the paper's
//! on-demand batching: the batcher launches the moment the engine goes
//! idle, absorbing everything queued (§VI-B) — while admission, response
//! delivery and the control loop all run concurrently with the scan.
//!
//! Admission is multi-tenant: each tenant owns a bounded queue
//! ([`TenantSpec::queue_capacity`](crate::TenantSpec)) and the batcher
//! drains tenants by smooth weighted round-robin, so one tenant's overload
//! fills (and sheds from) its own queue while other tenants keep their
//! weighted share of every batch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use crossbeam::channel::{self, Receiver, Sender};

use vlite_ann::{merge_sorted, BatchQuery, IvfIndex, Neighbor};
use vlite_core::{PartitionDecision, PartitionInput, RealDeployment, RoutedQuery, Router};
use vlite_metrics::{LatencyRecorder, SloTracker};
use vlite_sim::SimTime;
use vlite_store::{StoreError, StoreSnapshot, TieredStore};
use vlite_workload::SyntheticCorpus;

use crate::clock::{Clock, RealClock};
use crate::config::{DeadlinePolicy, GenerationConfig, ServeConfig, SloSignal, TenantSpec};
use crate::control::{ControlLoop, Observation, RepartitionEvent};
use crate::generation::{generation_worker, GenWork};
use crate::migrate::{migrator_worker, MigrationEvent, MigrationOrder};
use crate::obs::{prom_counter, prom_gauge, prom_label_escape, BoundedRing, ObsPlane, Severity};
use crate::queue::AdmissionQueue;
use crate::report::{ServeReport, StoreReport};
use crate::request::{AdmissionError, Job, RequestTimings, SearchResponse, TenantId, Ticket};
use crate::trace::{
    AlertLevel, BatchCtx, RequestSpanTimes, TraceId, TracePlane, SIG_DEADLINE, SIG_SEARCH,
    STAGE_BATCHER, STAGE_CONTROL, STAGE_CPU_SCAN, STAGE_DISPATCH, STAGE_SHARD_SCAN,
};

/// One batch travelling from the batcher to the workers and dispatcher.
struct BatchWork {
    jobs: Vec<Job>,
    routed: Vec<RoutedQuery>,
    k: usize,
    started: SimTime,
    generation: u64,
    /// The shared batch span every member's trace links to (`None` when
    /// tracing is disabled).
    trace: Option<BatchCtx>,
}

/// Everything the worker threads see through the dispatcher channel.
enum DispatchMsg {
    /// A new batch was launched (always arrives before any completion for
    /// that batch: the batcher enqueues it before handing work out).
    Launch(Arc<BatchWork>),
    /// One shard worker finished its pruned scans for the whole batch.
    ShardDone {
        shard: usize,
        partials: Vec<Vec<Neighbor>>,
    },
    /// The CPU worker finished one query's cold probes (per-query
    /// completion callback).
    CpuDone { qi: usize, partial: Vec<Neighbor> },
}

/// One tenant's slice of the dispatcher's measurements.
#[derive(Debug)]
pub(crate) struct TenantMetrics {
    pub queue_lat: LatencyRecorder,
    pub search_lat: LatencyRecorder,
    pub e2e_lat: LatencyRecorder,
    pub slo: SloTracker,
    /// Admission → first token (empty on retrieval-only servers).
    pub ttft_lat: LatencyRecorder,
    /// TTFT against the global `slo_ttft` target.
    pub ttft_slo: SloTracker,
    /// Requests shed by KV-aware generation admission (each also counted
    /// as a TTFT miss in `ttft_slo`).
    pub gen_sheds: u64,
    pub hit_sum: f64,
    pub completed: u64,
}

impl TenantMetrics {
    fn new(slo_search: f64, slo_ttft: Option<f64>) -> Self {
        Self {
            queue_lat: LatencyRecorder::new(),
            search_lat: LatencyRecorder::new(),
            e2e_lat: LatencyRecorder::new(),
            slo: SloTracker::new(slo_search),
            ttft_lat: LatencyRecorder::new(),
            // Disabled generation never observes TTFT; the placeholder
            // target keeps the tracker inert (attainment 0.0 at count 0).
            ttft_slo: SloTracker::new(slo_ttft.unwrap_or(f64::MAX)),
            gen_sheds: 0,
            hit_sum: 0.0,
            completed: 0,
        }
    }
}

/// Aggregate measurements owned by the dispatcher (and, for co-scheduled
/// servers, the generation worker), snapshotted by [`RagServer::report`].
#[derive(Debug)]
pub(crate) struct ServeMetrics {
    pub queue_lat: LatencyRecorder,
    pub search_lat: LatencyRecorder,
    pub e2e_lat: LatencyRecorder,
    pub slo: SloTracker,
    /// Admission → first token (empty on retrieval-only servers).
    pub ttft_lat: LatencyRecorder,
    /// TTFT against `slo_ttft`.
    pub ttft_slo: SloTracker,
    /// Generation-stage phase recorders (empty on retrieval-only servers).
    pub gen_queue_lat: LatencyRecorder,
    pub prefill_lat: LatencyRecorder,
    pub decode_lat: LatencyRecorder,
    /// Requests shed by KV-aware generation admission.
    pub gen_sheds: u64,
    /// Requests shed on deadline grounds, by stage:
    /// `[admission, queue-expiry, generation]` (see
    /// [`crate::obs::DEADLINE_STAGES`]).
    pub deadline_sheds: [u64; 3],
    /// Requests that probed a truncated (budget-scaled) prefix of their
    /// probe list.
    pub degraded_probes: u64,
    /// Requests whose cold-tier (CPU) probes were skipped because only the
    /// fast tier fit the remaining budget.
    pub cold_skips: u64,
    /// Completed budgeted responses that landed within their deadline.
    pub deadline_met: u64,
    /// Completed budgeted responses that landed past their deadline.
    pub deadline_missed: u64,
    /// Per-stage budget burn of budgeted requests, as fractions of the
    /// request's whole budget (`stage_seconds / budget_seconds`).
    pub burn_queue: LatencyRecorder,
    pub burn_search: LatencyRecorder,
    pub burn_gen: LatencyRecorder,
    pub hit_sum: f64,
    pub completed: u64,
    pub batches: u64,
    pub batched_requests: u64,
    pub max_batch: usize,
    /// Per-tenant slices, indexed by [`TenantId`]. Each tenant's SLO
    /// tracker runs against that tenant's own `slo_search` target.
    pub tenants: Vec<TenantMetrics>,
}

impl ServeMetrics {
    pub(crate) fn new(slo_search: f64, slo_ttft: Option<f64>, tenants: &[TenantSpec]) -> Self {
        Self {
            queue_lat: LatencyRecorder::new(),
            search_lat: LatencyRecorder::new(),
            e2e_lat: LatencyRecorder::new(),
            slo: SloTracker::new(slo_search),
            ttft_lat: LatencyRecorder::new(),
            ttft_slo: SloTracker::new(slo_ttft.unwrap_or(f64::MAX)),
            gen_queue_lat: LatencyRecorder::new(),
            prefill_lat: LatencyRecorder::new(),
            decode_lat: LatencyRecorder::new(),
            gen_sheds: 0,
            deadline_sheds: [0; 3],
            degraded_probes: 0,
            cold_skips: 0,
            deadline_met: 0,
            deadline_missed: 0,
            burn_queue: LatencyRecorder::new(),
            burn_search: LatencyRecorder::new(),
            burn_gen: LatencyRecorder::new(),
            hit_sum: 0.0,
            completed: 0,
            batches: 0,
            batched_requests: 0,
            max_batch: 0,
            tenants: tenants
                .iter()
                .map(|spec| TenantMetrics::new(spec.slo_search, slo_ttft))
                .collect(),
        }
    }
}

/// The installed placement: router plus its generation, swapped together
/// under one lock so a batch can never pair a router snapshot with the
/// wrong generation stamp.
pub(crate) struct PlacementState {
    pub router: Arc<Router>,
    pub generation: u64,
}

/// State shared by every runtime thread.
pub(crate) struct Shared {
    pub(crate) index: IvfIndex,
    pub(crate) placement: RwLock<PlacementState>,
    pub(crate) queue: AdmissionQueue,
    pub(crate) metrics: Mutex<ServeMetrics>,
    /// Worker scans that panicked and were degraded to empty partials
    /// (availability over exactness; surfaced in the report).
    pub(crate) worker_panics: AtomicU64,
    pub(crate) tenants: Vec<TenantSpec>,
    /// Online repartitions, newest-capped: a long-lived server keeps the
    /// most recent [`ObsConfig::repartition_capacity`](crate::ObsConfig)
    /// events instead of growing without bound (evictions counted).
    pub(crate) repartitions: BoundedRing<RepartitionEvent>,
    /// Tier migrations applied by the migrator, in order, same cap
    /// discipline as `repartitions`.
    pub(crate) migrations: BoundedRing<MigrationEvent>,
    /// The always-on telemetry plane (lock-free counters/histograms,
    /// trace rings, event journal).
    pub(crate) obs: Arc<ObsPlane>,
    /// Causal tracing, per-stage CPU profiling and the SLO burn-rate
    /// watchdog (cheap no-ops when disabled by config).
    pub(crate) trace: Arc<TracePlane>,
    /// The tiered storage engine the scan path reads through; `None`
    /// keeps the pre-store behaviour (in-index lists, routing-only
    /// placement) — disabled by config or non-flat list storage.
    pub(crate) store: Option<Arc<TieredStore>>,
    /// Whether shard/CPU workers hand whole batches to the store's
    /// blocked (cluster-major) scan path instead of scanning
    /// query-at-a-time (`!StoreConfig::unblocked`; no effect without a
    /// store).
    pub(crate) blocked_scans: bool,
    pub(crate) nprobe: usize,
    pub(crate) top_k: usize,
    pub(crate) n_shards: usize,
    pub(crate) slo_search: f64,
    /// The clock every runtime timestamp is taken on.
    pub(crate) clock: Arc<dyn Clock>,
    /// Generation-stage config; `None` serves retrieval only.
    pub(crate) generation: Option<GenerationConfig>,
    /// Which latency feeds the control loop's SLO observations.
    pub(crate) slo_signal: SloSignal,
    /// Deadline-budget policy every stage consults.
    pub(crate) deadline: DeadlinePolicy,
}

impl Shared {
    /// Admission feasibility (rung 1 of the degradation ladder): when the
    /// estimated queue wait alone already exceeds the whole budget,
    /// queueing the request would only burn a batch slot on a guaranteed
    /// miss — shed it now so the client can retry elsewhere. Full
    /// accounting (shed counter, obs hook, journal) happens here; callers
    /// just propagate the error. Measure-only policies never shed.
    pub fn shed_if_unmeetable(
        &self,
        tenant: TenantId,
        budget: Option<f64>,
        now: SimTime,
    ) -> Result<(), AdmissionError> {
        if !self.deadline.enforce {
            return Ok(());
        }
        let (Some(budget), Some(wait)) = (budget, self.queue.estimated_wait(tenant)) else {
            return Ok(());
        };
        if wait <= budget {
            return Ok(());
        }
        crate::sync::lock_recover(&self.metrics).deadline_sheds
            [crate::obs::DEADLINE_STAGE_ADMISSION] += 1;
        self.obs
            .on_deadline_shed(crate::obs::DEADLINE_STAGE_ADMISSION);
        self.obs.journal(
            now.as_nanos(),
            Severity::Warn,
            "deadline-shed",
            format!(
                "{tenant} submission shed at admission: budget {:.1} ms < \
                 estimated queue wait {:.1} ms",
                budget * 1e3,
                wait * 1e3
            ),
        );
        self.watch_slo(SIG_DEADLINE, false, now);
        Err(AdmissionError::DeadlineUnmeetable {
            tenant,
            budget,
            estimated_wait: wait,
        })
    }

    /// Feeds one SLO attainment observation into the burn-rate watchdog,
    /// journaling any alert-level transition with the matching severity so
    /// `/v1/events` carries the escalation/recovery timeline.
    pub(crate) fn watch_slo(&self, signal: usize, ok: bool, now: SimTime) {
        if let Some(tr) = self.trace.observe_slo(signal, ok, now) {
            let severity = match tr.to {
                AlertLevel::Critical => Severity::Critical,
                AlertLevel::Warn => Severity::Warn,
                AlertLevel::Ok => Severity::Info,
            };
            self.obs.journal(
                now.as_nanos(),
                severity,
                "slo_burn",
                format!(
                    "{} burn {} -> {} (fast {:.2}x, slow {:.2}x of error budget)",
                    tr.signal,
                    tr.from.as_str(),
                    tr.to.as_str(),
                    tr.fast_burn,
                    tr.slow_burn
                ),
            );
        }
    }

    pub fn record_repartition(&self, event: RepartitionEvent) {
        let now = self.clock.now();
        // The hot swap is one pointer store, so the repartition records as
        // a zero-width span — its value is the links to the batch (and
        // member requests) it raced with.
        self.trace.record_migration("repartition", now, now);
        self.obs.journal(
            now.as_nanos(),
            Severity::Info,
            "repartition",
            format!(
                "generation {} tripped by {} (coverage {:.3} -> {:.3}, hot overlap {:.2}, \
                 queue depth {} at swap)",
                event.generation,
                event.triggered_by,
                event.old_coverage,
                event.new_coverage,
                event.hot_overlap,
                event.queue_depth_at_swap
            ),
        );
        self.repartitions.push(event);
    }

    /// Records one applied tier migration (ring + journal).
    pub fn record_migration(&self, event: MigrationEvent) {
        self.obs.journal(
            self.clock.now().as_nanos(),
            Severity::Info,
            "migration",
            format!(
                "store generation {} for placement {} (promoted {}, demoted {}, \
                 +{} B / -{} B)",
                event.store_generation,
                event.placement_generation,
                event.promoted,
                event.demoted,
                event.bytes_promoted,
                event.bytes_demoted
            ),
        );
        self.migrations.push(event);
    }

    /// Snapshot of the installed placement.
    pub fn placement_snapshot(&self) -> (Arc<Router>, u64) {
        let guard = crate::sync::read_recover(&self.placement);
        (guard.router.clone(), guard.generation)
    }

    /// Installs a new router, advancing the generation atomically with it.
    /// Returns the new generation.
    pub fn install_placement(&self, router: Router) -> u64 {
        let mut guard = crate::sync::write_recover(&self.placement);
        guard.router = Arc::new(router);
        guard.generation += 1;
        guard.generation
    }
}

/// The serving runtime. See the crate docs for the thread topology.
///
/// Dropping the server without calling [`RagServer::shutdown`] tears the
/// threads down the same way (backlog served, then exit).
pub struct RagServer {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    decision: PartitionDecision,
    expected_mean_hit: f64,
}

impl std::fmt::Debug for RagServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RagServer")
            .field("generation", &self.placement_generation())
            .field("queue_depth", &self.shared.queue.depth())
            .finish_non_exhaustive()
    }
}

impl RagServer {
    /// Runs the offline stage on `corpus` (train, profile, Algorithm 1,
    /// split) and starts the runtime on the wall clock.
    ///
    /// # Errors
    ///
    /// Propagates index-training errors.
    pub fn start(corpus: &SyntheticCorpus, config: ServeConfig) -> vlite_ann::Result<RagServer> {
        Self::start_with_clock(corpus, config, Arc::new(RealClock::new()))
    }

    /// [`RagServer::start`] on an explicit [`Clock`] — pass a
    /// [`VirtualClock`](crate::VirtualClock) for deterministic tests.
    ///
    /// # Errors
    ///
    /// Propagates index-training errors.
    pub fn start_with_clock(
        corpus: &SyntheticCorpus,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> vlite_ann::Result<RagServer> {
        let deployment = RealDeployment::build(corpus, config.real.clone())?;
        Ok(Self::from_deployment_with_clock(deployment, config, clock))
    }

    /// Starts the runtime over an already-built offline deployment, on the
    /// wall clock.
    ///
    /// # Panics
    ///
    /// Panics if the deployment and config disagree on shard count zero, or
    /// if the tenant table is invalid (zero weight or capacity).
    pub fn from_deployment(deployment: RealDeployment, config: ServeConfig) -> RagServer {
        Self::from_deployment_with_clock(deployment, config, Arc::new(RealClock::new()))
    }

    /// Starts the runtime over an already-built offline deployment on an
    /// explicit [`Clock`].
    ///
    /// # Panics
    ///
    /// Panics if the deployment and config disagree on shard count zero,
    /// if the tenant table is invalid (zero weight or capacity), if the
    /// generation config cannot fit its worst-case request in KV, or if
    /// the control loop is keyed off TTFT without a generation stage.
    pub fn from_deployment_with_clock(
        mut deployment: RealDeployment,
        config: ServeConfig,
        clock: Arc<dyn Clock>,
    ) -> RagServer {
        // Physical tiering: detach the index's flat lists into a
        // TieredStore whose tiers mirror the placement — hot clusters
        // resident at full precision, cold ones in the segment file's
        // mmap'd SQ8 extents. Non-flat list storage (PQ/fast-scan) keeps
        // the in-index scan path; any other store failure is fatal (a
        // half-built store would silently serve wrong bytes).
        let store = if config.store.disabled {
            None
        } else {
            let (segment_path, ephemeral) = config.store.segment_path();
            match deployment.build_tiered_store(&segment_path) {
                Ok(mut store) => {
                    store.set_ephemeral(ephemeral);
                    Some(Arc::new(store))
                }
                Err(StoreError::Unsupported(_)) => None,
                Err(err) => panic!("tiered store build failed: {err}"),
            }
        };
        let RealDeployment {
            index,
            profile,
            perf,
            decision,
            router,
            ..
        } = deployment;
        let n_shards = router.split().n_shards();
        assert!(n_shards > 0, "need at least one shard worker");
        let tenants = config.effective_tenants();
        if let Some(generation) = &config.generation {
            generation.validate(config.real.top_k);
        }
        config.deadline.validate();
        assert!(
            config.control.slo_signal == SloSignal::Search || config.generation.is_some(),
            "TTFT-keyed control observations require a generation stage"
        );
        let slo_ttft = config.generation.as_ref().map(|g| g.slo_ttft);
        // Expected mean hit rate, measured with the *same statistic* the
        // dispatcher will observe (per-query GPU-probe fraction over the
        // calibration probe sets) — the estimator's modeled mean is
        // access-weighted and systematically biased against it, which would
        // make the drift monitor's divergence trigger fire without drift.
        let expected_mean_hit = empirical_mean_hit(&router, profile.probe_sets());

        // Trace-id derivation is seeded by a constant so a given server
        // replays the same ids for the same request sequence (deterministic
        // virtual-clock tests); uniqueness only matters within one server.
        let trace = Arc::new(TracePlane::new(&config.trace, 0x766c_6974_6531));

        let shared = Arc::new(Shared {
            index,
            placement: RwLock::new(PlacementState {
                router: Arc::new(router),
                generation: 0,
            }),
            queue: AdmissionQueue::new(&tenants),
            metrics: Mutex::new(ServeMetrics::new(
                config.real.slo_search,
                slo_ttft,
                &tenants,
            )),
            worker_panics: AtomicU64::new(0),
            tenants,
            repartitions: BoundedRing::new(config.obs.repartition_capacity),
            migrations: BoundedRing::new(config.obs.migration_capacity),
            obs: Arc::new(ObsPlane::new(&config.obs)),
            trace,
            store,
            blocked_scans: !config.store.unblocked,
            nprobe: config.real.nprobe,
            top_k: config.real.top_k,
            n_shards,
            slo_search: config.real.slo_search,
            clock,
            generation: config.generation.clone(),
            slo_signal: config.control.slo_signal,
            deadline: config.deadline.clone(),
        });

        // Channel topology. Dispatcher ingress is shared by the batcher
        // (Launch) and every worker (completions); per-worker work channels
        // carry Arc'd batches.
        // vlite-allow(bounded-queues): depth is capped by the admission
        // queue's per-tenant lanes — only admitted jobs generate messages.
        let (dispatch_tx, dispatch_rx) = channel::unbounded::<DispatchMsg>();
        // vlite-allow(bounded-queues): carries exactly one unit per
        // dispatcher-batch completion; bounded by in-flight batches.
        let (done_tx, done_rx) = channel::unbounded::<()>();
        // vlite-allow(bounded-queues): one observation per completed
        // request; bounded by the admission queue upstream.
        let (control_tx, control_rx) = channel::unbounded::<Observation>();
        let mut shard_channels = Vec::with_capacity(n_shards);
        let mut threads = Vec::new();

        for shard in 0..n_shards {
            // vlite-allow(bounded-queues): at most one in-flight batch per
            // shard; the dispatcher launches the next only after completion.
            let (tx, rx) = channel::unbounded::<Arc<BatchWork>>();
            shard_channels.push(tx);
            let shared_ = shared.clone();
            let dispatch = dispatch_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("vlite-shard-{shard}"))
                    .spawn(move || shard_worker(&shared_, shard, &rx, &dispatch))
                    .expect("spawn shard worker"),
            );
        }

        // vlite-allow(bounded-queues): same one-in-flight-batch protocol as
        // the shard workers above.
        let (cpu_tx, cpu_rx) = channel::unbounded::<Arc<BatchWork>>();
        {
            let shared_ = shared.clone();
            let dispatch = dispatch_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("vlite-cpu".into())
                    .spawn(move || cpu_worker(&shared_, &cpu_rx, &dispatch))
                    .expect("spawn cpu worker"),
            );
        }

        // Generation stage (optional): the dispatcher forwards merged
        // retrievals to this worker, which runs the LLM engine against the
        // clock and delivers the final (post-decode) responses.
        let gen_tx = config.generation.as_ref().map(|generation| {
            // vlite-allow(bounded-queues): fed only with admitted, merged
            // retrievals; KV-aware admission sheds before this can grow.
            let (gen_tx, gen_rx) = channel::unbounded::<GenWork>();
            let shared_ = shared.clone();
            let generation = generation.clone();
            let gen_control_tx = control_tx.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("vlite-generate".into())
                    .spawn(move || {
                        generation_worker(&shared_, &generation, &gen_rx, &gen_control_tx);
                    })
                    .expect("spawn generation worker"),
            );
            gen_tx
        });

        {
            let shared_ = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("vlite-dispatch".into())
                    .spawn(move || {
                        dispatcher(&shared_, &dispatch_rx, &done_tx, &control_tx, gen_tx)
                    })
                    .expect("spawn dispatcher"),
            );
        }

        {
            let shared_ = shared.clone();
            let max_batch = config.max_batch;
            threads.push(
                std::thread::Builder::new()
                    .name("vlite-batcher".into())
                    .spawn(move || {
                        batcher(
                            &shared_,
                            max_batch,
                            &shard_channels,
                            &cpu_tx,
                            &dispatch_tx,
                            &done_rx,
                        )
                    })
                    .expect("spawn batcher"),
            );
        }

        // Tier migrator: subscribes to the control loop's post-swap
        // orders and moves cluster extents between tiers without ever
        // blocking the scan path (see `migrate.rs`).
        // vlite-allow(bounded-queues): at most one order per repartition,
        // and the control loop's cooldown spaces repartitions out.
        let (migrate_tx, migrate_rx) = channel::unbounded::<MigrationOrder>();
        {
            let shared_ = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("vlite-migrate".into())
                    .spawn(move || migrator_worker(&shared_, &migrate_rx))
                    .expect("spawn migrator"),
            );
        }

        {
            let input = PartitionInput::new(
                config.real.slo_search,
                config.real.mu_llm0,
                config.real.kv_bytes_full,
            );
            let sizes: Vec<u64> = (0..profile.nlist() as u32)
                .map(|c| profile.size(c))
                .collect();
            let bytes: Vec<u64> = (0..profile.nlist() as u32)
                .map(|c| profile.bytes_of(c))
                .collect();
            let control = ControlLoop::new(
                shared.clone(),
                config.control.clone(),
                expected_mean_hit,
                input,
                perf,
                config.real.coverage_override,
                sizes,
                bytes,
                migrate_tx,
            );
            let shared_ = shared.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("vlite-control".into())
                    .spawn(move || {
                        shared_.trace.register_worker(STAGE_CONTROL);
                        control.run(control_rx)
                    })
                    .expect("spawn control loop"),
            );
        }

        // Continuous sampling profiler: reads every registered worker's
        // CPU clock on a period. Real clocks only — a VirtualClock's
        // `sleep_until` *advances* scripted time, so a background sampler
        // would fast-forward deterministic tests; those pump
        // [`TracePlane::sample_now`] explicitly instead.
        if shared.trace.enabled() && !shared.clock.is_virtual() {
            let trace_ = shared.trace.clone();
            let clock_ = shared.clock.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("vlite-profiler".into())
                    .spawn(move || {
                        let interval = trace_.sample_interval();
                        while !trace_.sampler_stopped() {
                            trace_.sample_now();
                            let now = clock_.now();
                            clock_.sleep_until(now + interval);
                        }
                    })
                    .expect("spawn profiler"),
            );
        }

        RagServer {
            shared,
            threads,
            next_id: AtomicU64::new(0),
            decision,
            expected_mean_hit,
        }
    }

    /// Submits one query as tenant 0 (the only tenant in single-tenant
    /// configurations) through admission control.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] under overload,
    /// [`AdmissionError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, query: Vec<f32>) -> Result<Ticket, AdmissionError> {
        self.submit_for(TenantId(0), query)
    }

    /// Submits one query for `tenant` through admission control. Rejection
    /// charges this tenant's quota only.
    ///
    /// The request's deadline budget is the policy default
    /// ([`DeadlinePolicy::default_deadline`]); use
    /// [`RagServer::submit_with_deadline`] for a per-request budget.
    ///
    /// # Errors
    ///
    /// [`AdmissionError::QueueFull`] when this tenant's queue is at
    /// capacity, [`AdmissionError::UnknownTenant`] for an id outside the
    /// tenant table, [`AdmissionError::InvalidQuery`] for a wrong-dimension
    /// or non-finite query, [`AdmissionError::DeadlineUnmeetable`] when an
    /// enforced budget cannot survive the estimated queue wait,
    /// [`AdmissionError::ShuttingDown`] after shutdown began.
    pub fn submit_for(&self, tenant: TenantId, query: Vec<f32>) -> Result<Ticket, AdmissionError> {
        self.submit_with_deadline(tenant, query, None)
    }

    /// Submits one query for `tenant` with an explicit end-to-end deadline
    /// budget (`None` falls back to the policy default). The budget is
    /// stamped as an absolute deadline on the server's clock and acted on
    /// by every stage when [`DeadlinePolicy::enforce`] is set; otherwise
    /// it is only measured (budget burn + deadline attainment).
    ///
    /// # Errors
    ///
    /// As [`RagServer::submit_for`].
    pub fn submit_with_deadline(
        &self,
        tenant: TenantId,
        query: Vec<f32>,
        deadline: Option<std::time::Duration>,
    ) -> Result<Ticket, AdmissionError> {
        self.submit_with_trace(tenant, query, deadline, None)
    }

    /// [`RagServer::submit_with_deadline`] plus an explicit trace id: the
    /// HTTP frontend passes the client's W3C `traceparent` trace id here so
    /// the request's span tree records under the caller's trace. `None`
    /// derives a fresh deterministic id at admission.
    ///
    /// # Errors
    ///
    /// As [`RagServer::submit_for`].
    pub fn submit_with_trace(
        &self,
        tenant: TenantId,
        query: Vec<f32>,
        deadline: Option<std::time::Duration>,
        trace: Option<TraceId>,
    ) -> Result<Ticket, AdmissionError> {
        let n_tenants = self.shared.tenants.len();
        if tenant.index() >= n_tenants {
            return Err(AdmissionError::UnknownTenant { tenant, n_tenants });
        }
        // Malformed queries must never reach a scan: the SIMD kernel
        // wrappers assert on slice lengths (a wrong dimension would panic
        // the shard worker) and NaN poisons the top-k total order.
        let expected_dim = self.shared.index.dim();
        if query.len() != expected_dim {
            return Err(AdmissionError::InvalidQuery {
                expected_dim,
                got_dim: query.len(),
                non_finite: false,
            });
        }
        if query.iter().any(|x| !x.is_finite()) {
            return Err(AdmissionError::InvalidQuery {
                expected_dim,
                got_dim: query.len(),
                non_finite: true,
            });
        }
        let now = self.shared.clock.now();
        let budget = deadline
            .map(|d| d.as_secs_f64())
            .or(self.shared.deadline.default_deadline);
        let abs_deadline = budget.map(|b| now + vlite_sim::SimDuration::from_secs_f64(b.max(0.0)));
        self.shared.shed_if_unmeetable(tenant, budget, now)?;
        // relaxed: a fresh-id counter — uniqueness needs atomicity only,
        // no ordering with any other memory.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let trace = trace.unwrap_or_else(|| self.shared.trace.derive_trace_id(id));
        // vlite-allow(bounded-queues): a per-request reply channel carries
        // exactly one response before it is dropped.
        let (reply, rx) = channel::unbounded();
        let job = Job {
            id,
            tenant,
            query,
            enqueued: now,
            deadline: abs_deadline,
            trace,
            reply,
        };
        match self.shared.queue.try_push(job) {
            Ok(()) => {
                self.shared.obs.on_admit();
                Ok(Ticket {
                    id,
                    tenant,
                    deadline: abs_deadline,
                    trace,
                    rx,
                })
            }
            Err((_, true)) => Err(AdmissionError::ShuttingDown),
            // Capacity comes from the immutable tenant table, not the
            // queue: re-taking the admission lock just to echo a config
            // value would contend with the batcher on the overload path.
            Err((_, false)) => {
                // Mirrors QueueStats exactly: only a QueueFull rejection
                // counts (closed-queue and unknown-tenant refusals don't),
                // so /v1/metrics totals equal the report's.
                self.shared.obs.on_reject();
                Err(AdmissionError::QueueFull {
                    tenant,
                    capacity: self.shared.tenants[tenant.index()].queue_capacity,
                })
            }
        }
    }

    /// The tenant table the server was started with.
    pub fn tenants(&self) -> &[TenantSpec] {
        &self.shared.tenants
    }

    /// The clock the runtime reads and sleeps against — the load
    /// generators pace their arrival schedules on it so virtual-clock
    /// servers run deterministically at full speed.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.shared.clock.clone()
    }

    /// The generation-stage configuration, when co-scheduling is enabled.
    pub fn generation_config(&self) -> Option<&GenerationConfig> {
        self.shared.generation.as_ref()
    }

    /// Requests currently waiting for a batch, summed over all tenants.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// The current placement generation (0 until the first online
    /// repartition).
    pub fn placement_generation(&self) -> u64 {
        self.shared.placement_snapshot().1
    }

    /// The offline partitioning decision the server started from.
    pub fn initial_decision(&self) -> &PartitionDecision {
        &self.decision
    }

    /// Expected mean hit rate at start-up: the calibration probe sets
    /// routed through the initial placement (the drift monitor's baseline).
    pub fn expected_mean_hit(&self) -> f64 {
        self.expected_mean_hit
    }

    /// Cache coverage ρ of the placement currently serving.
    pub fn current_coverage(&self) -> f64 {
        self.shared.placement_snapshot().0.split().coverage()
    }

    /// Global cluster ids resident on each shard under the current
    /// placement (snapshot).
    pub fn current_shard_clusters(&self) -> Vec<Vec<u32>> {
        let (router, _) = self.shared.placement_snapshot();
        (0..router.split().n_shards())
            .map(|s| router.split().shard_clusters(s).to_vec())
            .collect()
    }

    /// The tiered storage engine the scan path reads through, when
    /// physical tiering is enabled. The `Arc` can be cloned to inspect the
    /// store after [`RagServer::shutdown`] (every migration is applied by
    /// then: shutdown joins the migrator).
    pub fn store(&self) -> Option<&Arc<TieredStore>> {
        self.shared.store.as_ref()
    }

    /// The live telemetry plane: lock-free counters/histograms, trace
    /// rings and the event journal, readable at any moment without
    /// touching the exact (mutex-guarded) report metrics.
    pub fn obs(&self) -> &ObsPlane {
        &self.shared.obs
    }

    /// A clone of the telemetry plane's `Arc`, letting callers keep
    /// scraping counters, traces and the journal after
    /// [`RagServer::shutdown`] has consumed the server (by then every
    /// worker has joined, so the values are final).
    pub fn obs_handle(&self) -> Arc<ObsPlane> {
        Arc::clone(&self.shared.obs)
    }

    /// The causal-tracing plane: span trees, per-stage CPU profile rows,
    /// and the SLO burn-rate watchdog behind `/v1/trace/{id}`,
    /// `/v1/profile` and `/v1/alerts`.
    pub fn trace_plane(&self) -> &TracePlane {
        &self.shared.trace
    }

    /// A clone of the trace plane's `Arc`, letting callers keep reading
    /// span trees and profiles after [`RagServer::shutdown`] has consumed
    /// the server.
    pub fn trace_handle(&self) -> Arc<TracePlane> {
        Arc::clone(&self.shared.trace)
    }

    /// Worker scans that panicked and were degraded to empty partials.
    pub fn worker_panics(&self) -> u64 {
        // relaxed: monotonic stat counter read for reporting only.
        self.shared.worker_panics.load(Ordering::Relaxed)
    }

    /// The deadline-budget policy the server runs under.
    pub fn deadline_policy(&self) -> &DeadlinePolicy {
        &self.shared.deadline
    }

    /// Backoff hint in whole seconds for a rejected submission by
    /// `tenant`: the estimated time for that tenant's lane to drain at the
    /// recent drain rate, clamped to `[1, 60]` (never the useless
    /// `Retry-After: 0`).
    pub fn retry_after_hint(&self, tenant: TenantId) -> u64 {
        if tenant.index() >= self.shared.tenants.len() {
            return 1;
        }
        self.shared.queue.retry_after_secs(tenant)
    }

    /// Records a panicked frontend connection thread: counted into
    /// [`RagServer::worker_panics`] and journaled, so a dying connection
    /// handler is never silent.
    pub(crate) fn record_connection_panic(&self) {
        // relaxed: stat counter bump; visibility ordering is irrelevant
        // for a monotonic reporting counter.
        self.shared.worker_panics.fetch_add(1, Ordering::Relaxed);
        self.shared.obs.journal(
            self.shared.clock.now().as_nanos(),
            Severity::Critical,
            "panic",
            "http connection thread panicked".to_string(),
        );
    }

    /// The full Prometheus text exposition served by `GET /v1/metrics`:
    /// the telemetry plane's counters and stage histograms plus
    /// scrape-time gauges (queue depth, placement generation, ring
    /// occupancy, store residency). Every value is read lock-free or
    /// under a short dedicated lock — never the global metrics mutex.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(8 * 1024);
        out.push_str(&format!(
            "# HELP vlite_build_info Build metadata of the serving crate (value is always 1)\n\
             # TYPE vlite_build_info gauge\n\
             vlite_build_info{{version=\"{}\"}} 1\n",
            prom_label_escape(env!("CARGO_PKG_VERSION"))
        ));
        self.shared.obs.prometheus_into(&mut out);
        prom_gauge(
            &mut out,
            "vlite_traces_held",
            "Distinct span traces currently retained by the trace plane",
            self.shared.trace.traces_held() as f64,
        );
        prom_counter(
            &mut out,
            "vlite_trace_evictions_total",
            "Whole traces evicted from the bounded trace store",
            self.shared.trace.traces_evicted(),
        );
        prom_counter(
            &mut out,
            "vlite_worker_panics_total",
            "Worker scans that panicked and were degraded to empty partials",
            // relaxed: monotonic stat counter read for reporting only.
            self.shared.worker_panics.load(Ordering::Relaxed),
        );
        // Lifetime totals = retained ring entries + evictions.
        prom_counter(
            &mut out,
            "vlite_repartitions_total",
            "Online repartitions performed by the control loop",
            self.shared.repartitions.len() as u64 + self.shared.repartitions.evicted(),
        );
        prom_counter(
            &mut out,
            "vlite_migrations_total",
            "Tier migrations applied by the background migrator",
            self.shared.migrations.len() as u64 + self.shared.migrations.evicted(),
        );
        prom_gauge(
            &mut out,
            "vlite_queue_depth",
            "Requests waiting for a batch, summed over tenants",
            self.queue_depth() as f64,
        );
        prom_gauge(
            &mut out,
            "vlite_placement_generation",
            "Current placement generation (0 until the first repartition)",
            self.placement_generation() as f64,
        );
        out.push_str(
            "# HELP vlite_obs_ring_items Entries currently retained per bounded ring\n\
             # TYPE vlite_obs_ring_items gauge\n",
        );
        for (ring, len, _) in self.shared.obs.ring_stats() {
            out.push_str(&format!("vlite_obs_ring_items{{ring=\"{ring}\"}} {len}\n"));
        }
        out.push_str(
            "# HELP vlite_obs_ring_evictions_total Entries evicted per bounded ring\n\
             # TYPE vlite_obs_ring_evictions_total counter\n",
        );
        for (ring, _, evicted) in self.shared.obs.ring_stats() {
            out.push_str(&format!(
                "vlite_obs_ring_evictions_total{{ring=\"{ring}\"}} {evicted}\n"
            ));
        }
        if let Some(store) = &self.shared.store {
            let residency = store.residency();
            let stats = store.stats();
            prom_gauge(
                &mut out,
                "vlite_store_fast_clusters",
                "Clusters resident in the fast tier",
                residency.hot_clusters as f64,
            );
            prom_gauge(
                &mut out,
                "vlite_store_total_clusters",
                "Total clusters in the tiered store",
                residency.total_clusters as f64,
            );
            prom_gauge(
                &mut out,
                "vlite_store_fast_bytes",
                "Bytes resident in fast-tier arenas",
                residency.hot_bytes as f64,
            );
            prom_gauge(
                &mut out,
                "vlite_store_cold_bytes",
                "Bytes covered by the slow tier's mmap'd SQ8 extents",
                residency.cold_bytes as f64,
            );
            prom_gauge(
                &mut out,
                "vlite_store_fast_residency",
                "Fast-tier share of total stored bytes",
                residency.byte_fraction(),
            );
            prom_gauge(
                &mut out,
                "vlite_store_generation",
                "Store generation (bumped by every applied migration)",
                store.generation() as f64,
            );
            prom_counter(
                &mut out,
                "vlite_store_hot_probes_total",
                "Probes scanned against fast-tier clusters",
                stats.hot_probes,
            );
            prom_counter(
                &mut out,
                "vlite_store_cold_probes_total",
                "Probes scanned against slow-tier clusters",
                stats.cold_probes,
            );
            prom_counter(
                &mut out,
                "vlite_store_bytes_promoted_total",
                "Bytes materialized into resident arenas by promotions",
                stats.bytes_promoted,
            );
            prom_counter(
                &mut out,
                "vlite_store_bytes_demoted_total",
                "Resident bytes released back to the cold tier by demotions",
                stats.bytes_demoted,
            );
            prom_counter(
                &mut out,
                "vlite_store_blocked_scans_total",
                "Blocked (cluster-major) passes scoring >= 2 batched queries in one sweep",
                stats.blocked_scans,
            );
        }
        out.push_str(&format!(
            "# HELP vlite_kernel_active Distance-kernel implementation dispatch selects \
             (1 for the active kernel)\n\
             # TYPE vlite_kernel_active gauge\n\
             vlite_kernel_active{{kernel=\"{}\"}} 1\n",
            vlite_ann::kernel::active().name()
        ));
        out
    }

    /// Snapshot of the runtime's measurements so far.
    pub fn report(&self) -> ServeReport {
        let metrics = crate::sync::lock_recover(&self.shared.metrics);
        let queue_stats = self.shared.queue.stats();
        let repartitions = self.shared.repartitions.snapshot();
        let store = self
            .shared
            .store
            .as_ref()
            .map(|store| StoreReport::capture(store, self.shared.migrations.snapshot()));
        ServeReport::assemble(
            &metrics,
            queue_stats,
            &self.shared.tenants,
            repartitions,
            store,
            self.shared.slo_search,
            self.shared.generation.as_ref().map(|g| g.slo_ttft),
            self.shared.placement_snapshot().1,
            // relaxed: monotonic stat counter read for reporting only.
            self.shared.worker_panics.load(Ordering::Relaxed),
            if self.shared.trace.enabled() {
                self.shared.trace.profile()
            } else {
                Vec::new()
            },
        )
    }

    /// Graceful shutdown: stops admitting, serves the backlog, joins every
    /// thread, and returns the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.shared.queue.close();
        self.shared.trace.stop_sampler();
        for handle in self.threads.drain(..) {
            handle.join().expect("runtime thread panicked");
        }
        self.report()
    }
}

impl Drop for RagServer {
    fn drop(&mut self) {
        self.shared.queue.close();
        self.shared.trace.stop_sampler();
        for handle in self.threads.drain(..) {
            // Avoid double-panicking in unwind paths.
            let _ = handle.join();
        }
    }
}

/// Mean per-query hit rate of `probe_sets` under `router` — the runtime's
/// observable statistic, used as the drift monitor's expectation.
pub(crate) fn empirical_mean_hit<'a>(
    router: &Router,
    probe_sets: impl IntoIterator<Item = &'a Vec<u32>>,
) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0usize);
    for probes in probe_sets {
        sum += router.route(probes).hit_rate();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Batcher: drain the per-tenant queues (weighted-fair) when the engine is
/// idle, coarse-quantize and route under the current placement snapshot,
/// launch, wait for the dispatcher's batch-done signal.
fn batcher(
    shared: &Shared,
    max_batch: usize,
    shard_channels: &[Sender<Arc<BatchWork>>],
    cpu_tx: &Sender<Arc<BatchWork>>,
    dispatch_tx: &Sender<DispatchMsg>,
    done_rx: &Receiver<()>,
) {
    shared.trace.register_worker(STAGE_BATCHER);
    while let Some(jobs) = shared.queue.take_batch(max_batch) {
        let (router, generation) = shared.placement_snapshot();
        let started = shared.clock.now();
        let stage = shared.trace.stage_start(STAGE_BATCHER, started);
        shared.queue.record_drain(jobs.len(), started);
        // Rung 2 of the degradation ladder: a job whose deadline passed
        // while it queued is dropped here instead of burning a batch slot
        // on a response nobody will accept (its waiter sees the reply
        // channel disconnect and answers 504).
        let jobs: Vec<Job> = if shared.deadline.enforce {
            jobs.into_iter()
                .filter_map(|job| match job.deadline {
                    Some(deadline) if started >= deadline => {
                        shed_expired(shared, &job, started);
                        None
                    }
                    _ => Some(job),
                })
                .collect()
        } else {
            jobs
        };
        if jobs.is_empty() {
            // The whole drain expired: nothing was launched, so there is
            // no batch-done signal to wait for.
            shared.trace.stage_end(stage, shared.clock.now());
            continue;
        }
        let mut degraded = 0u64;
        let mut cold_skips = 0u64;
        let routed: Vec<RoutedQuery> = jobs
            .iter()
            .map(|job| {
                // Rungs 3 and 4: scale the probe list to the remaining
                // budget (the probe list is closeness-ordered, so a
                // truncated query scans a prefix-quality subset), and keep
                // only fast-tier probes when the remainder cannot absorb a
                // cold-tier scan.
                let (nprobe, fast_only) = probe_budget(shared, job, started);
                let probes: Vec<u32> = shared
                    .index
                    .probe(&job.query, nprobe)
                    .iter()
                    .map(|p| p.list)
                    .collect();
                let mut routed = router.route(&probes);
                if nprobe < shared.nprobe {
                    degraded += 1;
                    shared.obs.on_degraded_probes(
                        started.as_nanos(),
                        job.id,
                        nprobe,
                        shared.nprobe,
                    );
                }
                if fast_only && !routed.cpu_probes.is_empty() {
                    routed.cpu_probes.clear();
                    cold_skips += 1;
                    shared.obs.on_cold_skip();
                }
                routed
            })
            .collect();
        if degraded + cold_skips > 0 {
            let mut metrics = crate::sync::lock_recover(&shared.metrics);
            metrics.degraded_probes += degraded;
            metrics.cold_skips += cold_skips;
        }
        let members: Vec<TraceId> = jobs.iter().map(|j| j.trace).collect();
        let batch = Arc::new(BatchWork {
            jobs,
            routed,
            k: shared.top_k,
            started,
            generation,
            trace: shared.trace.begin_batch(&members),
        });
        shared.trace.stage_end(stage, shared.clock.now());
        if dispatch_tx
            .send(DispatchMsg::Launch(batch.clone()))
            .is_err()
        {
            return; // dispatcher gone: runtime is tearing down
        }
        for tx in shard_channels {
            if tx.send(batch.clone()).is_err() {
                return;
            }
        }
        if cpu_tx.send(batch.clone()).is_err() {
            return;
        }
        drop(batch);
        // Engine busy until the dispatcher reports the batch complete.
        if done_rx.recv().is_err() {
            return;
        }
    }
}

/// Sheds one queue-expired job at batch formation: full accounting
/// (deadline-shed counter, queue-stage budget burn, journal), then the job
/// is dropped — its reply sender goes with it, so the ticket's waiter sees
/// a disconnect instead of hanging.
fn shed_expired(shared: &Shared, job: &Job, now: SimTime) {
    let queue = (now - job.enqueued).as_secs_f64();
    let burn = job.budget_secs().map_or(0.0, |b| queue / b.max(1e-12));
    {
        let mut metrics = crate::sync::lock_recover(&shared.metrics);
        metrics.deadline_sheds[crate::obs::DEADLINE_STAGE_QUEUE] += 1;
        metrics.burn_queue.record(burn);
    }
    shared
        .obs
        .on_deadline_shed(crate::obs::DEADLINE_STAGE_QUEUE);
    shared
        .obs
        .on_budget_burn(crate::obs::BURN_STAGE_QUEUE, burn);
    shared.obs.journal(
        now.as_nanos(),
        Severity::Warn,
        "deadline-shed",
        format!(
            "request {} ({}) expired in queue: {:.1} ms queued of a {:.1} ms budget",
            job.id,
            job.tenant,
            queue * 1e3,
            job.budget_secs().unwrap_or(0.0) * 1e3
        ),
    );
    let end_s = now.as_nanos() as f64 / 1e9;
    shared.trace.record_request(
        job.trace,
        None,
        RequestSpanTimes {
            enqueued_s: job.enqueued.as_nanos() as f64 / 1e9,
            search_start_s: end_s,
            search_end_s: end_s,
            end_s,
        },
        None,
        Some("queue-expired"),
    );
    shared.watch_slo(SIG_DEADLINE, false, now);
}

/// Budget-scaled probe selection for one job at batch formation. Returns
/// the probe count to use and whether the query should keep only its
/// fast-tier probes. Unbudgeted jobs (or a measure-only policy) always
/// probe the full list.
fn probe_budget(shared: &Shared, job: &Job, now: SimTime) -> (usize, bool) {
    let policy = &shared.deadline;
    if !policy.enforce {
        return (shared.nprobe, false);
    }
    let Some(deadline) = job.deadline else {
        return (shared.nprobe, false);
    };
    // Expired jobs were shed before routing, so `deadline > now` here.
    let remaining = deadline.duration_since(now).as_secs_f64();
    let nprobe = if remaining < policy.est_search {
        let frac = (remaining / policy.est_search).max(policy.min_probe_fraction);
        ((shared.nprobe as f64 * frac).ceil() as usize).clamp(1, shared.nprobe)
    } else {
        shared.nprobe
    };
    let fast_only = remaining < policy.est_search + policy.est_cold;
    (nprobe, fast_only)
}

/// Shard ("GPU") worker: scan the batch's pruned probe lists for this
/// shard, publish partials in one completion message.
fn shard_worker(
    shared: &Shared,
    shard: usize,
    rx: &Receiver<Arc<BatchWork>>,
    dispatch: &Sender<DispatchMsg>,
) {
    shared.trace.register_worker(STAGE_SHARD_SCAN);
    while let Ok(batch) = rx.recv() {
        let scan_start = shared.clock.now();
        let stage = shared.trace.stage_start(STAGE_SHARD_SCAN, scan_start);
        // One store snapshot per batch: the whole batch scans a consistent
        // tier map, and a concurrent migration swaps tiers for the *next*
        // batch without stalling this one.
        let snapshot = shared.store.as_ref().map(|store| store.snapshot());
        // Global ids: correctness is placement-independent, so batches
        // routed just before a hot swap still scan the right lists.
        let per_query: Vec<&[u32]> = (0..batch.jobs.len())
            .map(|qi| batch.routed[qi].shard_probes_global[shard].as_slice())
            .collect();
        let partials = scan_batch_or_queries(shared, snapshot.as_ref(), &batch, &per_query);
        let scan_end = shared.clock.now();
        shared.trace.stage_end(stage, scan_end);
        if let Some(ctx) = &batch.trace {
            shared
                .trace
                .record_scan(ctx, format!("scan:shard{shard}"), scan_start, scan_end);
        }
        if dispatch
            .send(DispatchMsg::ShardDone { shard, partials })
            .is_err()
        {
            return;
        }
    }
}

/// Scans one worker's share of a batch — `per_query[qi]` being query
/// `qi`'s probe lists for this worker — through the blocked
/// (cluster-major) store path when enabled, falling back to
/// query-at-a-time [`degraded_scan`]s otherwise.
///
/// Panic containment matches [`degraded_scan`]: a panicking blocked pass
/// degrades the *whole worker share* to empty partials (one
/// [`Shared::worker_panics`] tick) rather than killing the worker thread.
fn scan_batch_or_queries(
    shared: &Shared,
    snapshot: Option<&StoreSnapshot>,
    batch: &BatchWork,
    per_query: &[&[u32]],
) -> Vec<Vec<Neighbor>> {
    let blockable =
        batch.jobs.len() >= 2 && per_query.iter().filter(|l| !l.is_empty()).count() >= 2;
    if let (Some(snapshot), true, true) = (snapshot, shared.blocked_scans, blockable) {
        let queries: Vec<BatchQuery<'_>> = (0..batch.jobs.len())
            .map(|qi| BatchQuery {
                query: &batch.jobs[qi].query,
                lists: per_query[qi],
            })
            .collect();
        let scanned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared
                .index
                .scan_lists_batch_with(snapshot, &queries, batch.k)
        }));
        match scanned {
            Ok(partials) => partials,
            Err(_) => {
                // relaxed: stat counter bump; the degraded partials flow
                // through the dispatch channel, which orders the handoff.
                shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                vec![Vec::new(); batch.jobs.len()]
            }
        }
    } else {
        per_query
            .iter()
            .enumerate()
            .map(|(qi, lists)| {
                if lists.is_empty() {
                    Vec::new()
                } else {
                    degraded_scan(shared, snapshot, &batch.jobs[qi].query, lists, batch.k)
                }
            })
            .collect()
    }
}

/// One scan with panic containment: a panicking scan degrades to an empty
/// partial (counted in [`Shared::worker_panics`]) instead of killing the
/// worker thread — a dead worker would never send its completion message
/// and the batcher would block on the batch-done signal forever.
///
/// With a tiered store the scan reads cluster payloads through the
/// snapshot (resident arenas for hot clusters, mmap'd SQ8 extents for
/// cold ones); without one it scans the index's own lists.
fn degraded_scan(
    shared: &Shared,
    snapshot: Option<&StoreSnapshot>,
    query: &[f32],
    lists: &[u32],
    k: usize,
) -> Vec<Neighbor> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match snapshot {
        Some(snapshot) => shared.index.scan_lists_with(snapshot, query, lists, k),
        None => shared.index.scan_lists(query, lists, k),
    }))
    .unwrap_or_else(|_| {
        // relaxed: stat counter bump; the degraded partial itself flows
        // through the dispatch channel, which orders the handoff.
        shared.worker_panics.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    })
}

/// CPU worker: scan the batch's cold probes and fire the per-query
/// completion callback. With blocked scans the whole batch is scanned in
/// one cluster-major pass first (cheapest total bytes) and the per-query
/// `CpuDone` messages fire as the results are scattered back; unblocked,
/// it scans query-by-query so early finishers leave the batch sooner.
fn cpu_worker(shared: &Shared, rx: &Receiver<Arc<BatchWork>>, dispatch: &Sender<DispatchMsg>) {
    shared.trace.register_worker(STAGE_CPU_SCAN);
    while let Ok(batch) = rx.recv() {
        let scan_start = shared.clock.now();
        let stage = shared.trace.stage_start(STAGE_CPU_SCAN, scan_start);
        let snapshot = shared.store.as_ref().map(|store| store.snapshot());
        if shared.blocked_scans && snapshot.is_some() {
            let per_query: Vec<&[u32]> = batch
                .routed
                .iter()
                .map(|r| r.cpu_probes.as_slice())
                .collect();
            let partials = scan_batch_or_queries(shared, snapshot.as_ref(), &batch, &per_query);
            for (qi, partial) in partials.into_iter().enumerate() {
                if dispatch.send(DispatchMsg::CpuDone { qi, partial }).is_err() {
                    return;
                }
            }
        } else {
            for (qi, routed) in batch.routed.iter().enumerate() {
                let partial = if routed.cpu_probes.is_empty() {
                    Vec::new()
                } else {
                    degraded_scan(
                        shared,
                        snapshot.as_ref(),
                        &batch.jobs[qi].query,
                        &routed.cpu_probes,
                        batch.k,
                    )
                };
                if dispatch.send(DispatchMsg::CpuDone { qi, partial }).is_err() {
                    return;
                }
            }
        }
        let scan_end = shared.clock.now();
        shared.trace.stage_end(stage, scan_end);
        if let Some(ctx) = &batch.trace {
            shared
                .trace
                .record_scan(ctx, "scan:cpu".to_string(), scan_start, scan_end);
        }
    }
}

/// Per-batch dispatcher state.
struct InFlight {
    batch: Arc<BatchWork>,
    shard_partials: Vec<Option<Vec<Vec<Neighbor>>>>,
    shards_ready: usize,
    /// CPU completions that arrived before every shard flag was up.
    pending_cpu: Vec<(usize, Vec<Neighbor>)>,
    /// Exactly-once guard per query: `complete_query` consumes each query's
    /// shard partials by `mem::take`, which is only sound if a query
    /// completes once.
    delivered: Vec<bool>,
    completed: usize,
}

/// Dispatcher: merge shard/CPU partials per query, forward early
/// finishers (to the caller, or to the generation worker on co-scheduled
/// servers), record latencies and stream observations to the control
/// loop.
fn dispatcher(
    shared: &Shared,
    rx: &Receiver<DispatchMsg>,
    done_tx: &Sender<()>,
    control_tx: &Sender<Observation>,
    gen_tx: Option<Sender<GenWork>>,
) {
    shared.trace.register_worker(STAGE_DISPATCH);
    let mut inflight: Option<InFlight> = None;
    while let Ok(msg) = rx.recv() {
        let stage = shared.trace.stage_start(STAGE_DISPATCH, shared.clock.now());
        match msg {
            DispatchMsg::Launch(batch) => {
                // Hard assert, not debug_assert: in release a duplicate
                // Launch would silently drop the in-flight batch, orphaning
                // its tickets with no accounting. A protocol violation is a
                // harness bug (same policy as `LatencyRecorder::record`).
                assert!(inflight.is_none(), "one batch in flight at a time");
                inflight = Some(InFlight {
                    shard_partials: vec![None; shared.n_shards],
                    shards_ready: 0,
                    pending_cpu: Vec::new(),
                    delivered: vec![false; batch.jobs.len()],
                    completed: 0,
                    batch,
                });
            }
            DispatchMsg::ShardDone { shard, partials } => {
                let state = inflight.as_mut().expect("completion without a launch");
                assert!(
                    state.shard_partials[shard].is_none(),
                    "duplicate shard completion"
                );
                state.shard_partials[shard] = Some(partials);
                state.shards_ready += 1;
                if state.shards_ready == shared.n_shards {
                    // All GPU flags up: flush every buffered CPU finisher.
                    for (qi, partial) in std::mem::take(&mut state.pending_cpu) {
                        complete_query(shared, state, qi, partial, control_tx, &gen_tx);
                    }
                }
            }
            DispatchMsg::CpuDone { qi, partial } => {
                let state = inflight.as_mut().expect("completion without a launch");
                if state.shards_ready == shared.n_shards {
                    complete_query(shared, state, qi, partial, control_tx, &gen_tx);
                } else {
                    state.pending_cpu.push((qi, partial));
                }
            }
        }
        if let Some(state) = &inflight {
            if state.completed == state.batch.jobs.len() {
                let batch_size = state.batch.jobs.len();
                let mut metrics = crate::sync::lock_recover(&shared.metrics);
                metrics.batches += 1;
                metrics.batched_requests += batch_size as u64;
                metrics.max_batch = metrics.max_batch.max(batch_size);
                drop(metrics);
                shared.obs.on_batch(batch_size);
                if let Some(ctx) = &state.batch.trace {
                    shared
                        .trace
                        .end_batch(ctx, state.batch.started, shared.clock.now());
                }
                inflight = None;
                if done_tx.send(()).is_err() {
                    return;
                }
            }
        }
        shared.trace.stage_end(stage, shared.clock.now());
    }
}

/// Merge one query's partials, then either deliver the response (retrieval
/// only) or hand it to the generation stage (co-scheduled), recording
/// measurements at whichever point the request's lifecycle actually ends.
fn complete_query(
    shared: &Shared,
    state: &mut InFlight,
    qi: usize,
    cpu_partial: Vec<Neighbor>,
    control_tx: &Sender<Observation>,
    gen_tx: &Option<Sender<GenWork>>,
) {
    assert!(!state.delivered[qi], "query {qi} completed twice");
    state.delivered[qi] = true;
    let batch = Arc::clone(&state.batch);
    let job = &batch.jobs[qi];
    let routed = &batch.routed[qi];
    let mut lists: Vec<Vec<Neighbor>> = vec![cpu_partial];
    for partials in state.shard_partials.iter_mut().flatten() {
        // Each query completes exactly once (asserted above), so its slot
        // in every shard's partials can be moved out instead of cloned —
        // this is the dispatcher's hot path.
        lists.push(std::mem::take(&mut partials[qi]));
    }
    let neighbors = merge_sorted(&lists, batch.k);
    let now = shared.clock.now();
    let queue = (batch.started - job.enqueued).as_secs_f64();
    let search = (now - batch.started).as_secs_f64();
    let hit_rate = routed.hit_rate();
    let met_slo = search <= shared.slo_search;
    state.completed += 1;

    // The query's global probe set (the control loop's re-profiling
    // sample). With search-keyed control the observation leaves here; with
    // TTFT-keyed control it travels with the generation work instead, so
    // the SLO bit reflects the latency users feel.
    let probes = || {
        let mut probes = routed.cpu_probes.clone();
        for globals in &routed.shard_probes_global {
            probes.extend_from_slice(globals);
        }
        probes
    };

    if let Some(gen_tx) = gen_tx {
        let ttft_keyed = shared.slo_signal == SloSignal::Ttft;
        if !ttft_keyed {
            let _ = control_tx.send(Observation {
                tenant: job.tenant,
                hit_rate,
                met_slo,
                probes: probes(),
            });
        }
        // Per-request metrics are recorded by the generation worker when
        // the request actually finishes; the dispatcher only counts
        // batch-level statistics for co-scheduled servers.
        let _ = gen_tx.send(GenWork {
            id: job.id,
            tenant: job.tenant,
            neighbors,
            hit_rate,
            generation: batch.generation,
            enqueued: job.enqueued,
            deadline: job.deadline,
            trace: job.trace,
            batch_trace: batch.trace.as_ref().map(|c| c.trace_id),
            queue,
            search,
            merged_at: now,
            reply: job.reply.clone(),
            probes: ttft_keyed.then(probes),
        });
        return;
    }

    let timings = RequestTimings {
        queue,
        search,
        e2e: (now - job.enqueued).as_secs_f64(),
        generation: None,
    };

    {
        let mut metrics = crate::sync::lock_recover(&shared.metrics);
        metrics.queue_lat.record(timings.queue);
        metrics.search_lat.record(timings.search);
        metrics.e2e_lat.record(timings.e2e);
        metrics.slo.observe(timings.search);
        metrics.hit_sum += hit_rate;
        metrics.completed += 1;
        if let Some(budget) = job.budget_secs() {
            let budget = budget.max(1e-12);
            metrics.burn_queue.record(timings.queue / budget);
            metrics.burn_search.record(timings.search / budget);
            if now <= job.deadline.expect("budget implies deadline") {
                metrics.deadline_met += 1;
            } else {
                metrics.deadline_missed += 1;
            }
        }
        let tenant = &mut metrics.tenants[job.tenant.index()];
        tenant.queue_lat.record(timings.queue);
        tenant.search_lat.record(timings.search);
        tenant.e2e_lat.record(timings.e2e);
        tenant.slo.observe(timings.search);
        tenant.hit_sum += hit_rate;
        tenant.completed += 1;
    }

    if let Some(budget) = job.budget_secs() {
        let budget = budget.max(1e-12);
        shared
            .obs
            .on_budget_burn(crate::obs::BURN_STAGE_QUEUE, timings.queue / budget);
        shared
            .obs
            .on_budget_burn(crate::obs::BURN_STAGE_SEARCH, timings.search / budget);
    }

    shared.obs.on_request(
        job.id,
        job.tenant,
        job.enqueued.as_nanos(),
        &timings,
        met_slo,
        None,
        false,
    );

    shared.trace.record_request(
        job.trace,
        batch.trace.as_ref().map(|c| c.trace_id),
        RequestSpanTimes {
            enqueued_s: job.enqueued.as_nanos() as f64 / 1e9,
            search_start_s: batch.started.as_nanos() as f64 / 1e9,
            search_end_s: now.as_nanos() as f64 / 1e9,
            end_s: now.as_nanos() as f64 / 1e9,
        },
        None,
        None,
    );
    shared.watch_slo(SIG_SEARCH, met_slo, now);
    if let Some(deadline) = job.deadline {
        shared.watch_slo(SIG_DEADLINE, now <= deadline, now);
    }

    let _ = control_tx.send(Observation {
        tenant: job.tenant,
        hit_rate,
        met_slo,
        probes: probes(),
    });

    // The ticket may have been dropped (fire-and-forget submission).
    let _ = job.reply.send(SearchResponse {
        id: job.id,
        tenant: job.tenant,
        neighbors,
        timings,
        hit_rate,
        generation: batch.generation,
        trace: job.trace,
    });
}
