//! The runtime's notion of time, abstracted so the same threads run on the
//! wall clock in production and on deterministic stepped time in tests.
//!
//! Every timestamp the runtime takes — admission, batch launch, merge,
//! generation iterations, load-generator arrivals — is a [`Clock::now`]
//! read, and every wait for a future instant is a [`Clock::sleep_until`].
//! Under [`RealClock`] those map to `Instant`/`thread::sleep`; under
//! [`VirtualClock`] `now` reads a shared atomic tick and `sleep_until`
//! *advances* it, so a whole co-scheduled run (retrieval → prefill →
//! decode) executes in microseconds of wall time while its recorded
//! latencies are exact, replayable functions of the cost models.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use vlite_sim::{SimDuration, SimTime};

/// A monotonic clock the serving runtime reads and sleeps against.
///
/// Implementations must be monotonic: `now()` never decreases, and after
/// `sleep_until(t)` returns, `now() >= t`.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time since the clock's epoch (server start).
    fn now(&self) -> SimTime;

    /// Returns once the clock has reached `deadline`: blocks on the wall
    /// clock, or advances virtual time immediately.
    fn sleep_until(&self, deadline: SimTime);

    /// Whether `sleep_until` advances time instead of blocking. Periodic
    /// background work that paces itself by sleeping (the sampling
    /// profiler) must not run on a virtual clock — its sleeps would fast-
    /// forward the scripted timeline out from under the test.
    fn is_virtual(&self) -> bool {
        false
    }
}

/// Wall-clock [`Clock`]: `now` is the time since construction, and
/// `sleep_until` blocks the calling thread.
#[derive(Debug)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn now(&self) -> SimTime {
        let nanos = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SimTime::from_nanos(nanos)
    }

    fn sleep_until(&self, deadline: SimTime) {
        let now = self.now();
        if deadline > now {
            std::thread::sleep((deadline - now).to_std());
        }
    }
}

/// Deterministic stepped-time [`Clock`] for tests.
///
/// `now` reads an atomic nanosecond counter; `sleep_until` advances it to
/// the deadline without blocking, so threads that pace themselves against
/// the clock (the load generators' Poisson schedules, the generation
/// worker's iteration waits) run at full speed while the timestamps they
/// record follow virtual time exactly. Tests script the timeline with
/// [`VirtualClock::advance`].
///
/// # Examples
///
/// ```
/// use vlite_serve::{Clock, VirtualClock};
/// use vlite_sim::SimDuration;
///
/// let clock = VirtualClock::new();
/// clock.advance(SimDuration::from_millis(5.0));
/// assert_eq!(clock.now().as_nanos(), 5_000_000);
/// clock.sleep_until(clock.now() + SimDuration::from_millis(1.0)); // no blocking
/// assert_eq!(clock.now().as_nanos(), 6_000_000);
/// ```
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at tick zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `delta` and returns the new now.
    pub fn advance(&self, delta: SimDuration) -> SimTime {
        let nanos = self
            .nanos
            .fetch_add(delta.as_nanos(), Ordering::SeqCst)
            .wrapping_add(delta.as_nanos());
        SimTime::from_nanos(nanos)
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    fn sleep_until(&self, deadline: SimTime) {
        // Monotonic step: never move backwards when another thread has
        // already advanced past the deadline.
        self.nanos.fetch_max(deadline.as_nanos(), Ordering::SeqCst);
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic_and_sleeps() {
        let clock = RealClock::new();
        let a = clock.now();
        clock.sleep_until(a + SimDuration::from_micros(500));
        let b = clock.now();
        assert!(b - a >= SimDuration::from_micros(500));
    }

    #[test]
    fn virtual_clock_steps_without_blocking() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.sleep_until(SimTime::from_nanos(1_000));
        assert_eq!(clock.now(), SimTime::from_nanos(1_000));
        // Sleeping to the past is a no-op, not a rewind.
        clock.sleep_until(SimTime::from_nanos(10));
        assert_eq!(clock.now(), SimTime::from_nanos(1_000));
        clock.advance(SimDuration::from_nanos(5));
        assert_eq!(clock.now(), SimTime::from_nanos(1_005));
    }
}
