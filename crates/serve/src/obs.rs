//! The always-on telemetry plane (`vlite-obs`).
//!
//! Every per-request measurement the runtime takes also funnels through
//! one `Mutex<ServeMetrics>` — exact, but a global lock on the hot path
//! and only queryable as an end-of-run [`ServeReport`](crate::ServeReport)
//! snapshot. This module is the *live* counterpart, built from the
//! lock-free instruments in [`vlite_metrics::obs`]:
//!
//! - [`ObsPlane`] — sharded atomic counters and log-bucketed streaming
//!   histograms for every pipeline stage, recorded by the dispatcher,
//!   generation worker and admission path without taking any global lock,
//!   and readable at any moment (the `GET /v1/metrics` Prometheus
//!   exposition) while the runtime keeps serving.
//! - [`RequestTrace`] — a per-request timeline of stage spans (queue →
//!   search → gen-queue → prefill → first token → decode) assembled from
//!   the existing [`RequestTimings`], kept in a bounded ring of recent
//!   traces plus a separate always-captured slow-trace ring
//!   ([`ObsConfig::slow_threshold_s`]), served as JSON by `GET /v1/traces`.
//! - [`ObsEvent`] + a bounded journal — one ordered stream for the
//!   runtime's discrete events (repartitions, tier migrations, sheds, SLO
//!   breaches), served by `GET /v1/events`.
//! - [`BoundedRing`] — the fixed-capacity, eviction-counting ring behind
//!   the trace and journal stores, also capping the repartition/migration
//!   histories that previously grew without bound.
//!
//! The plane is deliberately *additive*: the exact mutex-guarded metrics
//! remain the source of truth for [`ServeReport`](crate::ServeReport)
//! (tests pin its exact values), while the plane answers the same totals
//! lock-free — and a test asserts the two agree.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vlite_metrics::obs::{Counter, StreamingHistogram};

use crate::http::json::Json;
use crate::request::{RequestTimings, TenantId};

/// Telemetry-plane knobs ([`ServeConfig::obs`](crate::ServeConfig)).
#[derive(Debug, Clone, PartialEq)]
pub struct ObsConfig {
    /// Master switch. Disabled, every hook is an early return (the
    /// `serve_smoke` obs-on-vs-off comparison measures the difference) and
    /// the endpoints serve empty/zero data.
    pub enabled: bool,
    /// Capacity of the recent-trace ring.
    pub recent_traces: usize,
    /// Capacity of the slow-trace ring (kept separately so a flood of
    /// fast requests can never evict the interesting outliers).
    pub slow_traces: usize,
    /// End-to-end latency (seconds) at or above which a request's trace is
    /// always captured into the slow ring. Sheds are always slow.
    pub slow_threshold_s: f64,
    /// Capacity of the unified event journal.
    pub journal_capacity: usize,
    /// Capacity of the repartition-history ring (the previously unbounded
    /// `Vec<RepartitionEvent>`).
    pub repartition_capacity: usize,
    /// Capacity of the migration-history ring (the previously unbounded
    /// `Vec<MigrationEvent>`).
    pub migration_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            recent_traces: 256,
            slow_traces: 64,
            slow_threshold_s: 0.25,
            journal_capacity: 1024,
            repartition_capacity: 1024,
            migration_capacity: 1024,
        }
    }
}

/// A fixed-capacity ring that counts what it evicts.
///
/// This is *not* a hot-path instrument — pushes take a (short, dedicated)
/// mutex — it is the bounded replacement for the runtime's grow-forever
/// event vectors, and the store behind the trace rings and journal.
#[derive(Debug)]
pub struct BoundedRing<T> {
    items: Mutex<VecDeque<T>>,
    capacity: usize,
    evicted: AtomicU64,
}

impl<T: Clone> BoundedRing<T> {
    /// An empty ring holding at most `capacity` items (capacity 0 keeps
    /// nothing and counts every push as an eviction).
    pub fn new(capacity: usize) -> Self {
        Self {
            items: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity,
            evicted: AtomicU64::new(0),
        }
    }

    /// Appends `item`, evicting the oldest entry when full.
    pub fn push(&self, item: T) {
        let mut items = crate::sync::lock_recover(&self.items);
        if self.capacity == 0 {
            // relaxed: eviction stat counter; the ring's contents are
            // ordered by the mutex, the counter is a lone tally.
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if items.len() == self.capacity {
            items.pop_front();
            // relaxed: eviction stat counter, as above.
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        items.push_back(item);
    }

    /// The retained items, oldest first.
    pub fn snapshot(&self) -> Vec<T> {
        crate::sync::lock_recover(&self.items)
            .iter()
            .cloned()
            .collect()
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        crate::sync::lock_recover(&self.items).len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items evicted (or dropped at capacity 0) over the ring's lifetime.
    pub fn evicted(&self) -> u64 {
        // relaxed: stat counter read for reporting only.
        self.evicted.load(Ordering::Relaxed)
    }
}

/// One stage span of a [`RequestTrace`], in seconds relative to the
/// request's admission. A zero-length span is an instant marker (the
/// `first_token` event).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Stage name (`queue`, `search`, `gen_queue`, `prefill`,
    /// `first_token`, `decode`).
    pub stage: &'static str,
    /// Span start, seconds after admission.
    pub start_s: f64,
    /// Span end, seconds after admission.
    pub end_s: f64,
}

/// The timeline of one served request, assembled from its
/// [`RequestTimings`] at the moment its lifecycle ends.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Request id (assigned at admission).
    pub id: u64,
    /// The submitting tenant.
    pub tenant: TenantId,
    /// Admission instant, nanoseconds on the server's clock.
    pub admitted_ns: u64,
    /// Admission → final delivery, seconds.
    pub e2e_s: f64,
    /// Whether KV-aware admission shed the request (retrieval-only reply,
    /// no generation spans).
    pub shed: bool,
    /// Stage spans in timeline order.
    pub spans: Vec<TraceSpan>,
}

impl RequestTrace {
    /// Builds the timeline from one request's timings. Span boundaries are
    /// cumulative offsets from admission, so the trace renders directly as
    /// a waterfall.
    pub fn from_timings(
        id: u64,
        tenant: TenantId,
        admitted_ns: u64,
        timings: &RequestTimings,
        shed: bool,
    ) -> Self {
        let mut spans = Vec::with_capacity(6);
        let queue_end = timings.queue;
        let search_end = queue_end + timings.search;
        spans.push(TraceSpan {
            stage: "queue",
            start_s: 0.0,
            end_s: queue_end,
        });
        spans.push(TraceSpan {
            stage: "search",
            start_s: queue_end,
            end_s: search_end,
        });
        if let Some(gen) = &timings.generation {
            let gen_queue_end = search_end + gen.gen_queue;
            let prefill_end = gen_queue_end + gen.prefill;
            spans.push(TraceSpan {
                stage: "gen_queue",
                start_s: search_end,
                end_s: gen_queue_end,
            });
            spans.push(TraceSpan {
                stage: "prefill",
                start_s: gen_queue_end,
                end_s: prefill_end,
            });
            // The instant the user first saw output — by construction
            // ttft = queue + search + gen_queue + prefill.
            spans.push(TraceSpan {
                stage: "first_token",
                start_s: gen.ttft,
                end_s: gen.ttft,
            });
            spans.push(TraceSpan {
                stage: "decode",
                start_s: prefill_end,
                end_s: prefill_end + gen.decode,
            });
        }
        Self {
            id,
            tenant,
            admitted_ns,
            e2e_s: timings.e2e,
            shed,
            spans,
        }
    }

    /// The trace as a JSON value (what `GET /v1/traces` serves per entry).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Num(self.id as f64)),
            ("tenant".into(), Json::Num(f64::from(self.tenant.0))),
            ("admitted_ns".into(), Json::Num(self.admitted_ns as f64)),
            ("e2e_s".into(), Json::Num(self.e2e_s)),
            ("shed".into(), Json::Bool(self.shed)),
            (
                "spans".into(),
                Json::Arr(
                    self.spans
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("stage".into(), Json::Str(s.stage.into())),
                                ("start_s".into(), Json::Num(s.start_s)),
                                ("end_s".into(), Json::Num(s.end_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// How serious a journal event is. Routine bookkeeping (repartitions,
/// migrations) is `Info`; degradations and sheds are `Warn`; conditions
/// that demand an operator (worker panics, critical SLO burn) are
/// `Critical`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Routine bookkeeping.
    Info,
    /// Degraded service: sheds, SLO breaches, deadline drops.
    Warn,
    /// Operator-demanding: panics, critical burn rates.
    Critical,
}

impl Severity {
    /// Lowercase name as rendered in `/v1/events`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }

    /// Parses the lowercase name (the `?severity=` query value).
    pub fn parse(s: &str) -> Option<Severity> {
        match s {
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One discrete runtime event in the unified journal.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// When the event happened, nanoseconds on the server's clock.
    pub at_ns: u64,
    /// How serious the event is.
    pub severity: Severity,
    /// Event kind (`repartition`, `migration`, `shed`, `deadline-shed`,
    /// `degrade`, `panic`, `slo_breach`, `slo_burn`).
    pub kind: &'static str,
    /// Human-readable detail line.
    pub detail: String,
}

impl ObsEvent {
    /// The event as a JSON value (what `GET /v1/events` serves per entry).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("at_ns".into(), Json::Num(self.at_ns as f64)),
            ("severity".into(), Json::Str(self.severity.as_str().into())),
            ("kind".into(), Json::Str(self.kind.into())),
            ("detail".into(), Json::Str(self.detail.clone())),
        ])
    }
}

/// The pipeline-stage histograms, in the exposition's fixed order.
const STAGES: [&str; 7] = [
    "queue",
    "search",
    "e2e",
    "ttft",
    "gen_queue",
    "prefill",
    "decode",
];

/// Index into the deadline-shed counters: shed at admission (rung 1 of
/// the degradation ladder — the estimated queue wait already exceeds the
/// whole budget).
pub const DEADLINE_STAGE_ADMISSION: usize = 0;
/// Index into the deadline-shed counters: shed at batch formation (rung 2
/// — the request expired while queued).
pub const DEADLINE_STAGE_QUEUE: usize = 1;
/// Index into the deadline-shed counters: shed by generation admission
/// (rung 5 — the estimated first token would land past the deadline).
pub const DEADLINE_STAGE_GENERATION: usize = 2;

/// Names of the deadline-shed stages, indexed by the
/// `DEADLINE_STAGE_*` constants.
pub const DEADLINE_STAGES: [&str; 3] = ["admission", "queue", "generation"];

/// Index into the budget-burn histograms: fraction of the budget burned
/// waiting in the admission queue.
pub const BURN_STAGE_QUEUE: usize = 0;
/// Index into the budget-burn histograms: fraction burned in retrieval.
pub const BURN_STAGE_SEARCH: usize = 1;
/// Index into the budget-burn histograms: fraction burned in generation.
pub const BURN_STAGE_GENERATION: usize = 2;

/// Names of the budget-burn stages, indexed by the `BURN_STAGE_*`
/// constants.
pub const BURN_STAGES: [&str; 3] = ["queue", "search", "generation"];

/// The live telemetry plane: one instance per server, shared by every
/// runtime thread. All counter/histogram recording is lock-free
/// ([`vlite_metrics::obs`]); only trace/journal capture takes a (short,
/// dedicated) ring mutex. Every hook is an early return when the plane is
/// disabled.
#[derive(Debug)]
pub struct ObsPlane {
    enabled: bool,
    slow_threshold_s: f64,
    /// Requests admitted into a queue (mirrors `QueueStats::admitted`).
    pub admitted: Counter,
    /// Requests rejected by a full tenant queue (mirrors
    /// `QueueStats::rejected`).
    pub rejected: Counter,
    /// Requests whose lifecycle ended (mirrors `ServeMetrics::completed`).
    pub completed: Counter,
    /// Requests shed by KV-aware generation admission.
    pub gen_sheds: Counter,
    /// Batches launched.
    pub batches: Counter,
    /// Requests absorbed into batches.
    pub batched_requests: Counter,
    /// Requests whose search stage missed its SLO.
    pub search_slo_breaches: Counter,
    /// Requests whose TTFT missed `slo_ttft` (sheds included).
    pub ttft_slo_breaches: Counter,
    /// Requests shed on deadline grounds, indexed like
    /// [`DEADLINE_STAGES`].
    pub deadline_sheds: [Counter; 3],
    /// Requests whose probe list was shrunk to fit the remaining budget
    /// (rung 3 of the degradation ladder).
    pub degraded_probes: Counter,
    /// Requests whose cold-tier (CPU) probes were skipped because only the
    /// fast tier fit the remaining budget (rung 4).
    pub cold_skips: Counter,
    /// Stage latency histograms, indexed like [`STAGES`].
    stage_hist: [StreamingHistogram; 7],
    /// Budget-burn ratio histograms (stage seconds over budget seconds),
    /// indexed like [`BURN_STAGES`].
    burn_hist: [StreamingHistogram; 3],
    recent: BoundedRing<RequestTrace>,
    slow: BoundedRing<RequestTrace>,
    journal: BoundedRing<ObsEvent>,
}

impl ObsPlane {
    /// Builds the plane from its config.
    pub fn new(config: &ObsConfig) -> Self {
        Self {
            enabled: config.enabled,
            slow_threshold_s: config.slow_threshold_s,
            admitted: Counter::new(),
            rejected: Counter::new(),
            completed: Counter::new(),
            gen_sheds: Counter::new(),
            batches: Counter::new(),
            batched_requests: Counter::new(),
            search_slo_breaches: Counter::new(),
            ttft_slo_breaches: Counter::new(),
            deadline_sheds: std::array::from_fn(|_| Counter::new()),
            degraded_probes: Counter::new(),
            cold_skips: Counter::new(),
            stage_hist: std::array::from_fn(|_| StreamingHistogram::new()),
            burn_hist: std::array::from_fn(|_| StreamingHistogram::new()),
            recent: BoundedRing::new(config.recent_traces),
            slow: BoundedRing::new(config.slow_traces),
            journal: BoundedRing::new(config.journal_capacity),
        }
    }

    /// Whether the plane records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The stage histogram for `stage` (one of `queue`, `search`, `e2e`,
    /// `ttft`, `gen_queue`, `prefill`, `decode`).
    pub fn stage(&self, stage: &str) -> Option<&StreamingHistogram> {
        STAGES
            .iter()
            .position(|&s| s == stage)
            .map(|i| &self.stage_hist[i])
    }

    /// [`ObsPlane::stage`] for the fixed stage names used internally.
    fn hist(&self, stage: &str) -> &StreamingHistogram {
        self.stage(stage).expect("known stage name")
    }

    /// One request admitted.
    pub fn on_admit(&self) {
        if self.enabled {
            self.admitted.inc();
        }
    }

    /// One request rejected by its tenant's full queue.
    pub fn on_reject(&self) {
        if self.enabled {
            self.rejected.inc();
        }
    }

    /// One batch of `n` requests completed.
    pub fn on_batch(&self, n: usize) {
        if self.enabled {
            self.batches.inc();
            self.batched_requests.add(n as u64);
        }
    }

    /// One request shed on deadline grounds at `stage` (a
    /// `DEADLINE_STAGE_*` index).
    pub fn on_deadline_shed(&self, stage: usize) {
        if self.enabled {
            self.deadline_sheds[stage].inc();
        }
    }

    /// One budgeted request burned `ratio` of its budget in `stage` (a
    /// `BURN_STAGE_*` index). Ratios above 1.0 mean the stage alone
    /// overran the whole budget.
    pub fn on_budget_burn(&self, stage: usize, ratio: f64) {
        if self.enabled {
            self.burn_hist[stage].record(ratio);
        }
    }

    /// One request's probe list was shrunk from `full` to `kept` lists to
    /// fit its remaining budget, at `at_ns` on the server's clock.
    pub fn on_degraded_probes(&self, at_ns: u64, id: u64, kept: usize, full: usize) {
        if self.enabled {
            self.degraded_probes.inc();
            self.journal(
                at_ns,
                Severity::Warn,
                "degrade",
                format!("request {id} probes shrunk {full} -> {kept} to fit its budget"),
            );
        }
    }

    /// One request's cold-tier probes were skipped because only the fast
    /// tier fit its remaining budget.
    pub fn on_cold_skip(&self) {
        if self.enabled {
            self.cold_skips.inc();
        }
    }

    /// The budget-burn histogram for `stage` (one of [`BURN_STAGES`]).
    pub fn burn(&self, stage: &str) -> Option<&StreamingHistogram> {
        BURN_STAGES
            .iter()
            .position(|&s| s == stage)
            .map(|i| &self.burn_hist[i])
    }

    /// One request's lifecycle ended: record every stage histogram, the
    /// breach counters, and capture the trace. `ttft_met` is `None` on
    /// retrieval-only servers, `Some(false)` for sheds.
    #[allow(clippy::too_many_arguments)]
    pub fn on_request(
        &self,
        id: u64,
        tenant: TenantId,
        admitted_ns: u64,
        timings: &RequestTimings,
        search_met: bool,
        ttft_met: Option<bool>,
        shed: bool,
    ) {
        if !self.enabled {
            return;
        }
        self.completed.inc();
        self.hist("queue").record(timings.queue);
        self.hist("search").record(timings.search);
        self.hist("e2e").record(timings.e2e);
        if let Some(gen) = &timings.generation {
            self.hist("ttft").record(gen.ttft);
            self.hist("gen_queue").record(gen.gen_queue);
            self.hist("prefill").record(gen.prefill);
            self.hist("decode").record(gen.decode);
        }
        // Breach timestamps are derived (admission + e2e): the hooks run
        // on hot paths and must not take an extra clock read per request.
        let finished_ns = admitted_ns.saturating_add((timings.e2e * 1e9) as u64);
        if !search_met {
            self.search_slo_breaches.inc();
            self.journal(
                finished_ns,
                Severity::Warn,
                "slo_breach",
                format!(
                    "request {id} ({tenant}) search stage took {:.4}s",
                    timings.search
                ),
            );
        }
        if ttft_met == Some(false) {
            self.ttft_slo_breaches.inc();
            if let Some(gen) = &timings.generation {
                self.journal(
                    finished_ns,
                    Severity::Warn,
                    "slo_breach",
                    format!("request {id} ({tenant}) TTFT was {:.4}s", gen.ttft),
                );
            }
        }
        if shed {
            self.gen_sheds.inc();
        }
        let trace = RequestTrace::from_timings(id, tenant, admitted_ns, timings, shed);
        if shed || timings.e2e >= self.slow_threshold_s {
            self.slow.push(trace.clone());
        }
        self.recent.push(trace);
    }

    /// Appends one event to the unified journal.
    pub fn journal(&self, at_ns: u64, severity: Severity, kind: &'static str, detail: String) {
        if self.enabled {
            self.journal.push(ObsEvent {
                at_ns,
                severity,
                kind,
                detail,
            });
        }
    }

    /// The recent-trace ring, oldest first.
    pub fn recent_traces(&self) -> Vec<RequestTrace> {
        self.recent.snapshot()
    }

    /// The slow-trace ring (threshold breaches and sheds), oldest first.
    pub fn slow_traces(&self) -> Vec<RequestTrace> {
        self.slow.snapshot()
    }

    /// The unified event journal, oldest first.
    pub fn journal_snapshot(&self) -> Vec<ObsEvent> {
        self.journal.snapshot()
    }

    /// The recent- and slow-trace rings as the `/v1/traces` JSON body.
    pub fn traces_json(&self) -> Json {
        let ring = |r: &BoundedRing<RequestTrace>| {
            Json::Arr(r.snapshot().iter().map(RequestTrace::to_json).collect())
        };
        Json::Obj(vec![
            ("recent".into(), ring(&self.recent)),
            ("slow".into(), ring(&self.slow)),
            ("slow_threshold_s".into(), Json::Num(self.slow_threshold_s)),
            (
                "recent_evicted".into(),
                Json::Num(self.recent.evicted() as f64),
            ),
            ("slow_evicted".into(), Json::Num(self.slow.evicted() as f64)),
        ])
    }

    /// The journal as the `/v1/events` JSON body.
    pub fn events_json(&self) -> Json {
        self.events_json_filtered(None)
    }

    /// [`ObsPlane::events_json`] restricted to one severity when
    /// `severity` is `Some` (the `?severity=` query parameter).
    pub fn events_json_filtered(&self, severity: Option<Severity>) -> Json {
        let events: Vec<Json> = self
            .journal
            .snapshot()
            .iter()
            .filter(|e| severity.is_none_or(|s| e.severity == s))
            .map(ObsEvent::to_json)
            .collect();
        Json::Obj(vec![
            ("events".into(), Json::Arr(events)),
            (
                "severity".into(),
                severity.map_or(Json::Null, |s| Json::Str(s.as_str().into())),
            ),
            ("evicted".into(), Json::Num(self.journal.evicted() as f64)),
        ])
    }

    /// Trace/journal ring occupancy and evictions, for the exposition's
    /// bookkeeping gauges.
    pub fn ring_stats(&self) -> [(&'static str, usize, u64); 3] {
        [
            ("recent_traces", self.recent.len(), self.recent.evicted()),
            ("slow_traces", self.slow.len(), self.slow.evicted()),
            ("journal", self.journal.len(), self.journal.evicted()),
        ]
    }

    /// Writes the plane's own metric families (counters + stage
    /// histograms) in Prometheus text exposition format. The caller
    /// appends scrape-time gauges (queue depth, placement generation,
    /// store residency, uptime) before serving.
    pub fn prometheus_into(&self, out: &mut String) {
        for (name, help, counter) in [
            (
                "vlite_admitted_total",
                "Requests admitted into a tenant queue",
                &self.admitted,
            ),
            (
                "vlite_rejected_total",
                "Requests rejected by a full tenant queue",
                &self.rejected,
            ),
            (
                "vlite_completed_total",
                "Requests whose lifecycle ended (delivered or shed)",
                &self.completed,
            ),
            (
                "vlite_gen_sheds_total",
                "Requests shed by KV-aware generation admission",
                &self.gen_sheds,
            ),
            (
                "vlite_batches_total",
                "Batches launched by the on-demand batcher",
                &self.batches,
            ),
            (
                "vlite_batched_requests_total",
                "Requests absorbed into batches",
                &self.batched_requests,
            ),
            (
                "vlite_search_slo_breaches_total",
                "Requests whose search stage missed its SLO",
                &self.search_slo_breaches,
            ),
            (
                "vlite_ttft_slo_breaches_total",
                "Requests whose TTFT missed the slo_ttft target (sheds included)",
                &self.ttft_slo_breaches,
            ),
        ] {
            prom_counter(out, name, help, counter.get());
        }
        out.push_str(
            "# HELP vlite_deadline_sheds_total Requests shed on deadline grounds, by pipeline stage\n\
             # TYPE vlite_deadline_sheds_total counter\n",
        );
        for (i, stage) in DEADLINE_STAGES.iter().enumerate() {
            out.push_str(&format!(
                "vlite_deadline_sheds_total{{stage=\"{stage}\"}} {}\n",
                self.deadline_sheds[i].get()
            ));
        }
        prom_counter(
            out,
            "vlite_degraded_probes_total",
            "Requests whose probe list was shrunk to fit the remaining budget",
            self.degraded_probes.get(),
        );
        prom_counter(
            out,
            "vlite_cold_skips_total",
            "Requests whose cold-tier probes were skipped to fit the remaining budget",
            self.cold_skips.get(),
        );
        out.push_str(
            "# HELP vlite_budget_burn Per-stage budget-burn ratio distributions (stage seconds / budget seconds)\n\
             # TYPE vlite_budget_burn histogram\n",
        );
        for (i, stage) in BURN_STAGES.iter().enumerate() {
            let hist = &self.burn_hist[i];
            for (bound, cumulative) in hist.cumulative_buckets() {
                out.push_str(&format!(
                    "vlite_budget_burn_bucket{{stage=\"{stage}\",le=\"{bound:e}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "vlite_budget_burn_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {}\n",
                hist.count()
            ));
            out.push_str(&format!(
                "vlite_budget_burn_sum{{stage=\"{stage}\"}} {}\n",
                hist.sum_seconds()
            ));
            out.push_str(&format!(
                "vlite_budget_burn_count{{stage=\"{stage}\"}} {}\n",
                hist.count()
            ));
        }
        out.push_str(
            "# HELP vlite_stage_seconds Per-stage latency distributions (log-bucketed)\n\
             # TYPE vlite_stage_seconds histogram\n",
        );
        for (i, stage) in STAGES.iter().enumerate() {
            let hist = &self.stage_hist[i];
            // Only materialized buckets are emitted — with log-spaced
            // bounds every emitted `le` is still a valid cumulative row,
            // and ~320 mostly-empty rows per stage would drown the scrape.
            for (bound, cumulative) in hist.cumulative_buckets() {
                out.push_str(&format!(
                    "vlite_stage_seconds_bucket{{stage=\"{stage}\",le=\"{bound:e}\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!(
                "vlite_stage_seconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {}\n",
                hist.count()
            ));
            out.push_str(&format!(
                "vlite_stage_seconds_sum{{stage=\"{stage}\"}} {}\n",
                hist.sum_seconds()
            ));
            out.push_str(&format!(
                "vlite_stage_seconds_count{{stage=\"{stage}\"}} {}\n",
                hist.count()
            ));
        }
    }
}

/// Writes one counter family in exposition format.
pub(crate) fn prom_counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

/// Writes one gauge family in exposition format.
pub(crate) fn prom_gauge(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

/// Escapes a label value per the Prometheus text-format spec: backslash,
/// double-quote and newline must be escaped inside `label="..."`.
pub(crate) fn prom_label_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::GenerationTimings;

    fn timings(e2e: f64) -> RequestTimings {
        RequestTimings {
            queue: 0.001,
            search: 0.002,
            e2e,
            generation: None,
        }
    }

    #[test]
    fn bounded_ring_evicts_oldest_and_counts() {
        let ring = BoundedRing::new(3);
        for i in 0..5 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![2, 3, 4]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.evicted(), 2);
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let ring = BoundedRing::new(0);
        ring.push(1);
        assert!(ring.is_empty());
        assert_eq!(ring.evicted(), 1);
    }

    #[test]
    fn trace_spans_are_cumulative_offsets() {
        let t = RequestTimings {
            queue: 0.001,
            search: 0.002,
            e2e: 0.020,
            generation: Some(GenerationTimings {
                gen_queue: 0.003,
                prefill: 0.004,
                decode: 0.010,
                ttft: 0.010,
            }),
        };
        let trace = RequestTrace::from_timings(7, TenantId(1), 42, &t, false);
        let stages: Vec<&str> = trace.spans.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            [
                "queue",
                "search",
                "gen_queue",
                "prefill",
                "first_token",
                "decode"
            ]
        );
        // queue + search + gen_queue + prefill == ttft == the marker.
        assert!((trace.spans[3].end_s - 0.010).abs() < 1e-12);
        assert_eq!(trace.spans[4].start_s, trace.spans[4].end_s);
        // decode ends at e2e.
        assert!((trace.spans[5].end_s - 0.020).abs() < 1e-12);
    }

    #[test]
    fn retrieval_only_trace_has_no_generation_spans() {
        let trace = RequestTrace::from_timings(1, TenantId(0), 0, &timings(0.003), false);
        assert_eq!(trace.spans.len(), 2);
    }

    #[test]
    fn slow_and_shed_traces_land_in_the_slow_ring() {
        let config = ObsConfig {
            slow_threshold_s: 0.01,
            ..ObsConfig::default()
        };
        let plane = ObsPlane::new(&config);
        plane.on_request(0, TenantId(0), 0, &timings(0.003), true, None, false);
        plane.on_request(1, TenantId(0), 0, &timings(0.5), false, None, false);
        plane.on_request(2, TenantId(0), 0, &timings(0.004), true, Some(false), true);
        assert_eq!(plane.recent.len(), 3);
        let slow: Vec<u64> = plane.slow.snapshot().iter().map(|t| t.id).collect();
        assert_eq!(slow, vec![1, 2], "the slow request and the shed");
        assert_eq!(plane.completed.get(), 3);
        assert_eq!(plane.gen_sheds.get(), 1);
        assert_eq!(plane.search_slo_breaches.get(), 1);
        assert_eq!(plane.ttft_slo_breaches.get(), 1);
    }

    #[test]
    fn disabled_plane_records_nothing() {
        let config = ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        };
        let plane = ObsPlane::new(&config);
        plane.on_admit();
        plane.on_batch(4);
        plane.on_request(0, TenantId(0), 0, &timings(9.0), false, None, true);
        plane.journal(0, Severity::Warn, "shed", "x".into());
        assert_eq!(plane.admitted.get(), 0);
        assert_eq!(plane.completed.get(), 0);
        assert!(plane.recent.is_empty() && plane.slow.is_empty());
        assert!(plane.journal.is_empty());
    }

    #[test]
    fn exposition_counts_agree_with_the_counters() {
        let plane = ObsPlane::new(&ObsConfig::default());
        plane.on_admit();
        plane.on_admit();
        plane.on_reject();
        plane.on_batch(2);
        plane.on_request(0, TenantId(0), 0, &timings(0.003), true, None, false);
        let mut text = String::new();
        plane.prometheus_into(&mut text);
        assert!(text.contains("vlite_admitted_total 2\n"));
        assert!(text.contains("vlite_rejected_total 1\n"));
        assert!(text.contains("vlite_completed_total 1\n"));
        assert!(text.contains("vlite_batches_total 1\n"));
        assert!(text.contains("vlite_stage_seconds_count{stage=\"search\"} 1\n"));
        assert!(text.contains("le=\"+Inf\"}"));
        // Retrieval-only: generation stages exist but are empty.
        assert!(text.contains("vlite_stage_seconds_count{stage=\"ttft\"} 0\n"));
    }

    #[test]
    fn deadline_hooks_count_and_expose() {
        let plane = ObsPlane::new(&ObsConfig::default());
        plane.on_deadline_shed(DEADLINE_STAGE_ADMISSION);
        plane.on_deadline_shed(DEADLINE_STAGE_QUEUE);
        plane.on_deadline_shed(DEADLINE_STAGE_QUEUE);
        plane.on_deadline_shed(DEADLINE_STAGE_GENERATION);
        plane.on_degraded_probes(42, 7, 4, 16);
        plane.on_cold_skip();
        plane.on_budget_burn(BURN_STAGE_QUEUE, 0.5);
        plane.on_budget_burn(BURN_STAGE_SEARCH, 0.25);
        let mut text = String::new();
        plane.prometheus_into(&mut text);
        assert!(text.contains("vlite_deadline_sheds_total{stage=\"admission\"} 1\n"));
        assert!(text.contains("vlite_deadline_sheds_total{stage=\"queue\"} 2\n"));
        assert!(text.contains("vlite_deadline_sheds_total{stage=\"generation\"} 1\n"));
        assert!(text.contains("vlite_degraded_probes_total 1\n"));
        assert!(text.contains("vlite_cold_skips_total 1\n"));
        assert!(text.contains("vlite_budget_burn_count{stage=\"queue\"} 1\n"));
        assert!(text.contains("vlite_budget_burn_count{stage=\"search\"} 1\n"));
        assert!(text.contains("vlite_budget_burn_count{stage=\"generation\"} 0\n"));
        let events = plane.journal_snapshot();
        assert!(events.iter().any(|e| e.kind == "degrade"));
        assert!(plane.burn("queue").is_some() && plane.burn("nope").is_none());
    }

    #[test]
    fn disabled_plane_ignores_deadline_hooks() {
        let config = ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        };
        let plane = ObsPlane::new(&config);
        plane.on_deadline_shed(DEADLINE_STAGE_QUEUE);
        plane.on_degraded_probes(0, 1, 1, 2);
        plane.on_cold_skip();
        plane.on_budget_burn(BURN_STAGE_GENERATION, 1.5);
        assert_eq!(plane.deadline_sheds[DEADLINE_STAGE_QUEUE].get(), 0);
        assert_eq!(plane.degraded_probes.get(), 0);
        assert_eq!(plane.cold_skips.get(), 0);
        assert_eq!(plane.burn_hist[BURN_STAGE_GENERATION].count(), 0);
    }

    #[test]
    fn journal_severity_renders_and_filters() {
        let plane = ObsPlane::new(&ObsConfig::default());
        plane.journal(1, Severity::Info, "repartition", "routine".into());
        plane.journal(2, Severity::Warn, "shed", "degraded".into());
        plane.journal(3, Severity::Critical, "panic", "bad".into());
        let all = plane.events_json().render();
        assert!(all.contains("\"severity\":\"info\""));
        assert!(all.contains("\"severity\":\"critical\""));
        let warn_only = plane.events_json_filtered(Some(Severity::Warn)).render();
        assert!(warn_only.contains("degraded"));
        assert!(!warn_only.contains("routine") && !warn_only.contains("bad"));
        assert_eq!(Severity::parse("critical"), Some(Severity::Critical));
        assert_eq!(Severity::parse("nope"), None);
    }

    #[test]
    fn label_values_escape_per_spec() {
        assert_eq!(prom_label_escape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(prom_label_escape("plain-1.2.3"), "plain-1.2.3");
    }

    #[test]
    fn stage_lookup_knows_every_stage() {
        let plane = ObsPlane::new(&ObsConfig::default());
        for stage in STAGES {
            assert!(plane.stage(stage).is_some());
        }
        assert!(plane.stage("nope").is_none());
    }
}
