//! Aggregate serving report: the real-tier analogue of the simulator's
//! `RunResult`, feeding the same figure harnesses (latency variance, SLO
//! attainment, dispatcher behaviour), with a per-tenant breakdown for
//! multi-tenant runs.

use vlite_metrics::{fmt_seconds, Summary, Table};
use vlite_store::TieredStore;

use crate::config::TenantSpec;
use crate::control::RepartitionEvent;
use crate::http::json::Json;
use crate::migrate::MigrationEvent;
use crate::queue::QueueStats;
use crate::request::TenantId;
use crate::server::ServeMetrics;
use crate::trace::StageProfile;

/// One tenant's slice of a serving run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant this row describes.
    pub tenant: TenantId,
    /// Configured weighted-fair share.
    pub weight: u32,
    /// Configured bounded queue capacity.
    pub queue_capacity: usize,
    /// Requests admitted into this tenant's queue.
    pub admitted: u64,
    /// Requests rejected against this tenant's quota.
    pub rejected: u64,
    /// Requests fully served for this tenant.
    pub completed: u64,
    /// Deepest backlog this tenant's queue reached.
    pub peak_queue_depth: usize,
    /// Queueing delay (admission → batch launch).
    pub queue: Summary,
    /// Search execution (batch launch → merged top-k).
    pub search: Summary,
    /// End-to-end latency (admission → merged top-k).
    pub e2e: Summary,
    /// This tenant's search-stage SLO target in seconds.
    pub slo_target: f64,
    /// Fraction of this tenant's requests whose search stage met its SLO.
    pub slo_attainment: f64,
    /// Admission → first token for this tenant's requests (zero samples on
    /// retrieval-only servers).
    pub ttft: Summary,
    /// Fraction of this tenant's requests whose TTFT met the global
    /// `slo_ttft` target (`0.0` when generation is disabled). Sheds count
    /// as misses.
    pub ttft_attainment: f64,
    /// This tenant's requests shed by KV-aware generation admission
    /// (served retrieval-only, counted as TTFT misses).
    pub gen_sheds: u64,
    /// Mean cache hit rate across this tenant's served requests.
    pub mean_hit_rate: f64,
}

/// Physical-tiering snapshot of one serving run: fast-tier residency,
/// per-tier probe/byte counters, and the tier migrations the background
/// migrator applied. Present only when the runtime scans through a
/// [`TieredStore`].
#[derive(Debug, Clone)]
pub struct StoreReport {
    /// Clusters resident in the fast tier at snapshot time.
    pub fast_clusters: usize,
    /// Total clusters in the store.
    pub total_clusters: usize,
    /// Bytes resident in fast-tier arenas.
    pub fast_bytes: u64,
    /// Bytes the slow tier's mmap'd SQ8 extents cover.
    pub cold_bytes: u64,
    /// Fast-tier share of total stored bytes.
    pub fast_residency: f64,
    /// Probes scanned against fast-tier (resident full-precision)
    /// clusters.
    pub hot_probes: u64,
    /// Probes scanned against slow-tier (mmap'd SQ8) clusters.
    pub cold_probes: u64,
    /// Payload bytes touched by fast-tier scans.
    pub hot_bytes_scanned: u64,
    /// Payload bytes touched by slow-tier scans.
    pub cold_bytes_scanned: u64,
    /// Bytes materialized into resident arenas by promotions, lifetime.
    pub bytes_promoted: u64,
    /// Resident bytes released by demotions, lifetime.
    pub bytes_demoted: u64,
    /// The store generation (bumped by every applied migration).
    pub store_generation: u64,
    /// Times a scan found the tier map write-locked (0 in healthy runs:
    /// migrations swap a pointer, they do not hold the lock for I/O).
    pub snapshot_waits: u64,
    /// Blocked (cluster-major) passes that scored ≥ 2 batched queries in
    /// one sweep over a cluster's bytes.
    pub blocked_scans: u64,
    /// The distance-kernel implementation dispatch selects on this host
    /// (`scalar`, `avx2_fma`, or `neon`).
    pub kernel: &'static str,
    /// Whether the segment file was reopened from disk (save → load →
    /// serve) rather than freshly written.
    pub opened_existing: bool,
    /// Tier migrations applied by the background migrator, in order.
    pub migrations: Vec<MigrationEvent>,
}

impl StoreReport {
    /// Captures the store's residency and counters at report time.
    pub(crate) fn capture(store: &TieredStore, migrations: Vec<MigrationEvent>) -> StoreReport {
        let residency = store.residency();
        let stats = store.stats();
        StoreReport {
            fast_clusters: residency.hot_clusters,
            total_clusters: residency.total_clusters,
            fast_bytes: residency.hot_bytes,
            cold_bytes: residency.cold_bytes,
            fast_residency: residency.byte_fraction(),
            hot_probes: stats.hot_probes,
            cold_probes: stats.cold_probes,
            hot_bytes_scanned: stats.hot_bytes_scanned,
            cold_bytes_scanned: stats.cold_bytes_scanned,
            bytes_promoted: stats.bytes_promoted,
            bytes_demoted: stats.bytes_demoted,
            store_generation: store.generation(),
            snapshot_waits: stats.snapshot_waits,
            blocked_scans: stats.blocked_scans,
            kernel: vlite_ann::kernel::active().name(),
            opened_existing: store.opened_existing(),
            migrations,
        }
    }
}

/// Snapshot of everything a serving run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests admitted into the queue (all tenants).
    pub admitted: u64,
    /// Requests rejected by admission control (all tenants).
    pub rejected: u64,
    /// Requests fully served (merged + delivered).
    pub completed: u64,
    /// Deepest total queue backlog observed (summed over tenants).
    pub peak_queue_depth: usize,
    /// Queueing delay (admission → batch launch).
    pub queue: Summary,
    /// Search execution (batch launch → merged top-k).
    pub search: Summary,
    /// End-to-end latency (admission → merged top-k).
    pub e2e: Summary,
    /// The global search-stage SLO target in seconds.
    pub slo_target: f64,
    /// Fraction of requests whose search stage met the global SLO.
    pub slo_attainment: f64,
    /// Admission → first token (zero samples on retrieval-only servers).
    pub ttft: Summary,
    /// Merged top-k → prefill start (generation-stage queueing).
    pub gen_queue: Summary,
    /// Prefill start → first token.
    pub prefill: Summary,
    /// First token → last token.
    pub decode: Summary,
    /// The TTFT SLO target in seconds; `None` when generation is disabled.
    pub slo_ttft: Option<f64>,
    /// Fraction of requests whose TTFT met `slo_ttft` (`0.0` when
    /// generation is disabled). Sheds count as misses.
    pub ttft_attainment: f64,
    /// Requests shed by KV-aware generation admission (served
    /// retrieval-only, counted as TTFT misses).
    pub gen_sheds: u64,
    /// Batches launched.
    pub batches: u64,
    /// Mean batch size (dynamic on-demand batching).
    pub mean_batch: f64,
    /// Largest batch absorbed in one launch.
    pub max_batch: usize,
    /// Mean cache hit rate across served requests.
    pub mean_hit_rate: f64,
    /// Per-tenant breakdown, indexed by [`TenantId`].
    pub tenants: Vec<TenantReport>,
    /// Online repartitions performed by the control loop, in order.
    pub repartitions: Vec<RepartitionEvent>,
    /// Physical-tiering snapshot; `None` when the runtime scans the
    /// index's own in-memory lists.
    pub store: Option<StoreReport>,
    /// Placement generation at snapshot time.
    pub generation: u64,
    /// Worker scans that panicked and were degraded to empty partials
    /// (0 in healthy runs; nonzero means results were incomplete).
    pub worker_panics: u64,
    /// Requests shed on deadline grounds, indexed like
    /// [`crate::obs::DEADLINE_STAGES`] (admission, queue, generation).
    pub deadline_sheds: [u64; 3],
    /// Requests whose probe list was shrunk to fit the remaining budget.
    pub degraded_probes: u64,
    /// Requests whose cold-tier probes were skipped to fit the remaining
    /// budget.
    pub cold_skips: u64,
    /// Budgeted requests that finished (or were shed) on or before their
    /// deadline.
    pub deadline_met: u64,
    /// Budgeted requests that finished (or were shed) past their deadline.
    pub deadline_missed: u64,
    /// `met / (met + missed)` over budgeted requests; `None` when the run
    /// carried no deadlines.
    pub deadline_attainment: Option<f64>,
    /// Budget-burn ratio (queue seconds / budget seconds) over budgeted
    /// requests.
    pub burn_queue: Summary,
    /// Budget-burn ratio (search seconds / budget seconds).
    pub burn_search: Summary,
    /// Budget-burn ratio (generation seconds / budget seconds).
    pub burn_gen: Summary,
    /// Per-stage wall vs CPU profile from the trace plane's stage timers
    /// and sampling profiler (empty when tracing is disabled).
    pub profile: Vec<StageProfile>,
}

impl ServeReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        metrics: &ServeMetrics,
        queue_stats: QueueStats,
        specs: &[TenantSpec],
        repartitions: Vec<RepartitionEvent>,
        store: Option<StoreReport>,
        slo_target: f64,
        slo_ttft: Option<f64>,
        generation: u64,
        worker_panics: u64,
        profile: Vec<StageProfile>,
    ) -> ServeReport {
        let mut queue_lat = metrics.queue_lat.clone();
        let mut search_lat = metrics.search_lat.clone();
        let mut e2e_lat = metrics.e2e_lat.clone();
        let completed = metrics.completed;
        let tenants = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let m = &metrics.tenants[i];
                let q = &queue_stats.tenants[i];
                TenantReport {
                    tenant: TenantId(i as u16),
                    weight: spec.weight,
                    queue_capacity: spec.queue_capacity,
                    admitted: q.admitted,
                    rejected: q.rejected,
                    completed: m.completed,
                    peak_queue_depth: q.peak_depth,
                    queue: m.queue_lat.clone().summary(),
                    search: m.search_lat.clone().summary(),
                    e2e: m.e2e_lat.clone().summary(),
                    slo_target: spec.slo_search,
                    slo_attainment: m.slo.attainment(),
                    ttft: m.ttft_lat.clone().summary(),
                    ttft_attainment: m.ttft_slo.attainment(),
                    gen_sheds: m.gen_sheds,
                    mean_hit_rate: if m.completed == 0 {
                        0.0
                    } else {
                        m.hit_sum / m.completed as f64
                    },
                }
            })
            .collect();
        ServeReport {
            admitted: queue_stats.admitted,
            rejected: queue_stats.rejected,
            completed,
            peak_queue_depth: queue_stats.peak_depth,
            queue: queue_lat.summary(),
            search: search_lat.summary(),
            e2e: e2e_lat.summary(),
            slo_target,
            slo_attainment: metrics.slo.attainment(),
            ttft: metrics.ttft_lat.clone().summary(),
            gen_queue: metrics.gen_queue_lat.clone().summary(),
            prefill: metrics.prefill_lat.clone().summary(),
            decode: metrics.decode_lat.clone().summary(),
            slo_ttft,
            ttft_attainment: metrics.ttft_slo.attainment(),
            gen_sheds: metrics.gen_sheds,
            batches: metrics.batches,
            mean_batch: if metrics.batches == 0 {
                0.0
            } else {
                metrics.batched_requests as f64 / metrics.batches as f64
            },
            max_batch: metrics.max_batch,
            mean_hit_rate: if completed == 0 {
                0.0
            } else {
                metrics.hit_sum / completed as f64
            },
            tenants,
            repartitions,
            store,
            generation,
            worker_panics,
            deadline_sheds: metrics.deadline_sheds,
            degraded_probes: metrics.degraded_probes,
            cold_skips: metrics.cold_skips,
            deadline_met: metrics.deadline_met,
            deadline_missed: metrics.deadline_missed,
            deadline_attainment: {
                let budgeted = metrics.deadline_met + metrics.deadline_missed;
                (budgeted > 0).then(|| metrics.deadline_met as f64 / budgeted as f64)
            },
            burn_queue: metrics.burn_queue.clone().summary(),
            burn_search: metrics.burn_search.clone().summary(),
            burn_gen: metrics.burn_gen.clone().summary(),
            profile,
        }
    }

    /// Renders the report as aligned text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests: admitted {}  rejected {}  completed {}  peak queue depth {}\n",
            self.admitted, self.rejected, self.completed, self.peak_queue_depth
        ));
        out.push_str(&format!(
            "batching: {} batches, mean {:.1}, max {}  |  mean hit rate {:.3}  |  generation {}\n",
            self.batches, self.mean_batch, self.max_batch, self.mean_hit_rate, self.generation
        ));
        out.push_str(&format!(
            "search SLO {}: attainment {:.1}%\n",
            fmt_seconds(self.slo_target),
            100.0 * self.slo_attainment
        ));
        if let Some(slo_ttft) = self.slo_ttft {
            out.push_str(&format!(
                "TTFT SLO {}: attainment {:.1}% (co-scheduled generation{})\n",
                fmt_seconds(slo_ttft),
                100.0 * self.ttft_attainment,
                if self.gen_sheds > 0 {
                    format!(", {} KV-admission sheds", self.gen_sheds)
                } else {
                    String::new()
                }
            ));
        }
        let sheds_total: u64 = self.deadline_sheds.iter().sum();
        if let Some(attainment) = self.deadline_attainment {
            out.push_str(&format!(
                "deadlines: {:.1}% met ({} met / {} missed)  \
                 sheds adm/queue/gen {}/{}/{}  degraded probes {}  cold skips {}\n",
                100.0 * attainment,
                self.deadline_met,
                self.deadline_missed,
                self.deadline_sheds[0],
                self.deadline_sheds[1],
                self.deadline_sheds[2],
                self.degraded_probes,
                self.cold_skips
            ));
            out.push_str(&format!(
                "  budget burn p99: queue {:.2}  search {:.2}  generation {:.2}\n",
                self.burn_queue.p99, self.burn_search.p99, self.burn_gen.p99
            ));
        } else if sheds_total > 0 {
            out.push_str(&format!(
                "deadlines: every budgeted request shed (adm/queue/gen {}/{}/{})\n",
                self.deadline_sheds[0], self.deadline_sheds[1], self.deadline_sheds[2]
            ));
        }
        if self.worker_panics > 0 {
            out.push_str(&format!(
                "WARNING: {} worker scan(s) panicked and returned degraded partials\n",
                self.worker_panics
            ));
        }
        out.push('\n');

        let mut latencies = Table::new(vec!["stage", "p50", "p95", "p99", "mean", "max"]);
        for (stage, s) in self.stages() {
            latencies.row(vec![
                stage.to_string(),
                fmt_seconds(s.p50),
                fmt_seconds(s.p95),
                fmt_seconds(s.p99),
                fmt_seconds(s.mean),
                fmt_seconds(s.max),
            ]);
        }
        out.push_str(&latencies.render());

        let active_stages: Vec<&StageProfile> = self
            .profile
            .iter()
            .filter(|p| p.sections > 0 || p.samples > 0)
            .collect();
        if !active_stages.is_empty() {
            let mut prof = Table::new(vec![
                "stage", "wall", "cpu", "stall", "sections", "sampled", "samples",
            ]);
            for p in active_stages {
                prof.row(vec![
                    p.stage.to_string(),
                    fmt_seconds(p.wall_s),
                    fmt_seconds(p.cpu_s),
                    fmt_seconds(p.stall_s),
                    p.sections.to_string(),
                    fmt_seconds(p.sampled_cpu_s),
                    p.samples.to_string(),
                ]);
            }
            out.push('\n');
            out.push_str("per-stage profile (wall vs CPU inside instrumented sections):\n");
            out.push_str(&prof.render());
        }

        if self.tenants.len() > 1 {
            out.push('\n');
            out.push_str("per-tenant (weighted-fair admission and draining):\n");
            out.push_str(&self.tenant_table().render());
        }

        if self.repartitions.is_empty() {
            out.push_str("\nonline repartitions: none\n");
        } else {
            let mut events = Table::new(vec![
                "gen",
                "at request",
                "tripped by",
                "obs by tenant",
                "coverage",
                "hot overlap",
                "queue@swap",
                "rebuild",
            ]);
            for e in &self.repartitions {
                let by_tenant = e
                    .observed_by_tenant
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("/");
                events.row(vec![
                    e.generation.to_string(),
                    e.at_request.to_string(),
                    e.triggered_by.to_string(),
                    by_tenant,
                    format!(
                        "{:.1}% -> {:.1}%",
                        100.0 * e.old_coverage,
                        100.0 * e.new_coverage
                    ),
                    format!("{:.2}", e.hot_overlap),
                    e.queue_depth_at_swap.to_string(),
                    fmt_seconds(e.duration.as_secs_f64()),
                ]);
            }
            out.push('\n');
            out.push_str("online repartitions (queue never drained):\n");
            out.push_str(&events.render());
        }

        if let Some(store) = &self.store {
            out.push('\n');
            out.push_str(&format!(
                "tiered store: {}/{} clusters fast ({:.1}% of bytes resident)  \
                 generation {}  reopened {}\n",
                store.fast_clusters,
                store.total_clusters,
                100.0 * store.fast_residency,
                store.store_generation,
                if store.opened_existing { "yes" } else { "no" }
            ));
            out.push_str(&format!(
                "  probes: fast {} / cold {}  scanned: fast {} B / cold {} B  \
                 migrated: +{} B / -{} B  snapshot waits {}\n",
                store.hot_probes,
                store.cold_probes,
                store.hot_bytes_scanned,
                store.cold_bytes_scanned,
                store.bytes_promoted,
                store.bytes_demoted,
                store.snapshot_waits
            ));
            out.push_str(&format!(
                "  kernel {}  blocked scans {} (cluster passes scoring >= 2 batched queries)\n",
                store.kernel, store.blocked_scans
            ));
            if !store.migrations.is_empty() {
                let mut table = Table::new(vec![
                    "placement gen",
                    "store gen",
                    "tripped by",
                    "promoted",
                    "demoted",
                    "bytes +/-",
                    "batches during",
                    "duration",
                ]);
                for m in &store.migrations {
                    table.row(vec![
                        m.placement_generation.to_string(),
                        m.store_generation.to_string(),
                        m.triggered_by.to_string(),
                        m.promoted.to_string(),
                        m.demoted.to_string(),
                        format!("+{}/-{}", m.bytes_promoted, m.bytes_demoted),
                        format!("{}..{}", m.batches_before, m.batches_after),
                        fmt_seconds(m.duration.as_secs_f64()),
                    ]);
                }
                out.push_str("  tier migrations (dispatcher never stalled):\n");
                out.push_str(&table.render());
            }
        }
        out
    }

    /// The report's latency stages in fixed order: the retrieval stages,
    /// then the generation stages (all-zero summaries when generation is
    /// disabled). The render/CSV row set, stable for parsers.
    pub fn stages(&self) -> [(&'static str, &Summary); 7] {
        [
            ("queue", &self.queue),
            ("search", &self.search),
            ("e2e", &self.e2e),
            ("gen_queue", &self.gen_queue),
            ("prefill", &self.prefill),
            ("decode", &self.decode),
            ("ttft", &self.ttft),
        ]
    }

    /// The per-tenant breakdown as an aligned table (one row per tenant).
    pub fn tenant_table(&self) -> Table {
        let mut table = Table::new(vec![
            "tenant",
            "weight",
            "admitted",
            "rejected",
            "completed",
            "queue p99",
            "search p50",
            "search p99",
            "e2e p99",
            "SLO",
            "attainment",
            "ttft p99",
            "ttft att.",
            "sheds",
            "hit rate",
        ]);
        for t in &self.tenants {
            table.row(vec![
                t.tenant.to_string(),
                t.weight.to_string(),
                t.admitted.to_string(),
                t.rejected.to_string(),
                t.completed.to_string(),
                fmt_seconds(t.queue.p99),
                fmt_seconds(t.search.p50),
                fmt_seconds(t.search.p99),
                fmt_seconds(t.e2e.p99),
                fmt_seconds(t.slo_target),
                format!("{:.1}%", 100.0 * t.slo_attainment),
                if self.slo_ttft.is_some() {
                    fmt_seconds(t.ttft.p99)
                } else {
                    "-".into()
                },
                if self.slo_ttft.is_some() {
                    format!("{:.1}%", 100.0 * t.ttft_attainment)
                } else {
                    "-".into()
                },
                t.gen_sheds.to_string(),
                format!("{:.3}", t.mean_hit_rate),
            ]);
        }
        table
    }

    /// The whole report as a JSON value — what `GET /v1/report` serves.
    /// Field names mirror the struct exactly so the wire format needs no
    /// separate documentation.
    pub fn to_json(&self) -> Json {
        fn summary_json(s: &Summary) -> Json {
            Json::Obj(vec![
                ("count".into(), Json::Num(s.count as f64)),
                ("mean".into(), Json::Num(s.mean)),
                ("min".into(), Json::Num(s.min)),
                ("max".into(), Json::Num(s.max)),
                ("p50".into(), Json::Num(s.p50)),
                ("p90".into(), Json::Num(s.p90)),
                ("p95".into(), Json::Num(s.p95)),
                ("p99".into(), Json::Num(s.p99)),
            ])
        }
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("tenant".into(), Json::Num(f64::from(t.tenant.0))),
                    ("weight".into(), Json::Num(f64::from(t.weight))),
                    ("queue_capacity".into(), Json::Num(t.queue_capacity as f64)),
                    ("admitted".into(), Json::Num(t.admitted as f64)),
                    ("rejected".into(), Json::Num(t.rejected as f64)),
                    ("completed".into(), Json::Num(t.completed as f64)),
                    (
                        "peak_queue_depth".into(),
                        Json::Num(t.peak_queue_depth as f64),
                    ),
                    ("queue".into(), summary_json(&t.queue)),
                    ("search".into(), summary_json(&t.search)),
                    ("e2e".into(), summary_json(&t.e2e)),
                    ("slo_target".into(), Json::Num(t.slo_target)),
                    ("slo_attainment".into(), Json::Num(t.slo_attainment)),
                    ("ttft".into(), summary_json(&t.ttft)),
                    ("ttft_attainment".into(), Json::Num(t.ttft_attainment)),
                    ("gen_sheds".into(), Json::Num(t.gen_sheds as f64)),
                    ("mean_hit_rate".into(), Json::Num(t.mean_hit_rate)),
                ])
            })
            .collect();
        let repartitions = self
            .repartitions
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("generation".into(), Json::Num(e.generation as f64)),
                    ("at_request".into(), Json::Num(e.at_request as f64)),
                    (
                        "triggered_by".into(),
                        Json::Num(f64::from(e.triggered_by.0)),
                    ),
                    (
                        "observed_by_tenant".into(),
                        Json::Arr(
                            e.observed_by_tenant
                                .iter()
                                .map(|&n| Json::Num(n as f64))
                                .collect(),
                        ),
                    ),
                    ("old_coverage".into(), Json::Num(e.old_coverage)),
                    ("new_coverage".into(), Json::Num(e.new_coverage)),
                    ("hot_overlap".into(), Json::Num(e.hot_overlap)),
                    (
                        "queue_depth_at_swap".into(),
                        Json::Num(e.queue_depth_at_swap as f64),
                    ),
                    ("duration_s".into(), Json::Num(e.duration.as_secs_f64())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("admitted".into(), Json::Num(self.admitted as f64)),
            ("rejected".into(), Json::Num(self.rejected as f64)),
            ("completed".into(), Json::Num(self.completed as f64)),
            (
                "peak_queue_depth".into(),
                Json::Num(self.peak_queue_depth as f64),
            ),
            ("queue".into(), summary_json(&self.queue)),
            ("search".into(), summary_json(&self.search)),
            ("e2e".into(), summary_json(&self.e2e)),
            ("slo_target".into(), Json::Num(self.slo_target)),
            ("slo_attainment".into(), Json::Num(self.slo_attainment)),
            ("ttft".into(), summary_json(&self.ttft)),
            ("gen_queue".into(), summary_json(&self.gen_queue)),
            ("prefill".into(), summary_json(&self.prefill)),
            ("decode".into(), summary_json(&self.decode)),
            (
                "slo_ttft".into(),
                match self.slo_ttft {
                    Some(s) => Json::Num(s),
                    None => Json::Null,
                },
            ),
            ("ttft_attainment".into(), Json::Num(self.ttft_attainment)),
            ("gen_sheds".into(), Json::Num(self.gen_sheds as f64)),
            ("batches".into(), Json::Num(self.batches as f64)),
            ("mean_batch".into(), Json::Num(self.mean_batch)),
            ("max_batch".into(), Json::Num(self.max_batch as f64)),
            ("mean_hit_rate".into(), Json::Num(self.mean_hit_rate)),
            ("tenants".into(), Json::Arr(tenants)),
            ("repartitions".into(), Json::Arr(repartitions)),
            (
                "store".into(),
                match &self.store {
                    None => Json::Null,
                    Some(s) => {
                        let migrations = s
                            .migrations
                            .iter()
                            .map(|m| {
                                Json::Obj(vec![
                                    (
                                        "placement_generation".into(),
                                        Json::Num(m.placement_generation as f64),
                                    ),
                                    (
                                        "store_generation".into(),
                                        Json::Num(m.store_generation as f64),
                                    ),
                                    (
                                        "triggered_by".into(),
                                        Json::Num(f64::from(m.triggered_by.0)),
                                    ),
                                    ("promoted".into(), Json::Num(m.promoted as f64)),
                                    ("demoted".into(), Json::Num(m.demoted as f64)),
                                    ("bytes_promoted".into(), Json::Num(m.bytes_promoted as f64)),
                                    ("bytes_demoted".into(), Json::Num(m.bytes_demoted as f64)),
                                    ("batches_before".into(), Json::Num(m.batches_before as f64)),
                                    ("batches_after".into(), Json::Num(m.batches_after as f64)),
                                    ("duration_s".into(), Json::Num(m.duration.as_secs_f64())),
                                ])
                            })
                            .collect();
                        Json::Obj(vec![
                            ("fast_clusters".into(), Json::Num(s.fast_clusters as f64)),
                            ("total_clusters".into(), Json::Num(s.total_clusters as f64)),
                            ("fast_bytes".into(), Json::Num(s.fast_bytes as f64)),
                            ("cold_bytes".into(), Json::Num(s.cold_bytes as f64)),
                            ("fast_residency".into(), Json::Num(s.fast_residency)),
                            ("hot_probes".into(), Json::Num(s.hot_probes as f64)),
                            ("cold_probes".into(), Json::Num(s.cold_probes as f64)),
                            (
                                "hot_bytes_scanned".into(),
                                Json::Num(s.hot_bytes_scanned as f64),
                            ),
                            (
                                "cold_bytes_scanned".into(),
                                Json::Num(s.cold_bytes_scanned as f64),
                            ),
                            ("bytes_promoted".into(), Json::Num(s.bytes_promoted as f64)),
                            ("bytes_demoted".into(), Json::Num(s.bytes_demoted as f64)),
                            (
                                "store_generation".into(),
                                Json::Num(s.store_generation as f64),
                            ),
                            ("snapshot_waits".into(), Json::Num(s.snapshot_waits as f64)),
                            ("blocked_scans".into(), Json::Num(s.blocked_scans as f64)),
                            ("kernel".into(), Json::Str(s.kernel.into())),
                            ("opened_existing".into(), Json::Bool(s.opened_existing)),
                            ("migrations".into(), Json::Arr(migrations)),
                        ])
                    }
                },
            ),
            ("generation".into(), Json::Num(self.generation as f64)),
            ("worker_panics".into(), Json::Num(self.worker_panics as f64)),
            (
                "deadline_sheds".into(),
                Json::Obj(vec![
                    ("admission".into(), Json::Num(self.deadline_sheds[0] as f64)),
                    ("queue".into(), Json::Num(self.deadline_sheds[1] as f64)),
                    (
                        "generation".into(),
                        Json::Num(self.deadline_sheds[2] as f64),
                    ),
                ]),
            ),
            (
                "degraded_probes".into(),
                Json::Num(self.degraded_probes as f64),
            ),
            ("cold_skips".into(), Json::Num(self.cold_skips as f64)),
            ("deadline_met".into(), Json::Num(self.deadline_met as f64)),
            (
                "deadline_missed".into(),
                Json::Num(self.deadline_missed as f64),
            ),
            (
                "deadline_attainment".into(),
                match self.deadline_attainment {
                    Some(a) => Json::Num(a),
                    None => Json::Null,
                },
            ),
            ("burn_queue".into(), summary_json(&self.burn_queue)),
            ("burn_search".into(), summary_json(&self.burn_search)),
            ("burn_gen".into(), summary_json(&self.burn_gen)),
            (
                "profile".into(),
                Json::Arr(
                    self.profile
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("stage".into(), Json::Str(p.stage.into())),
                                ("wall_s".into(), Json::Num(p.wall_s)),
                                ("cpu_s".into(), Json::Num(p.cpu_s)),
                                ("stall_s".into(), Json::Num(p.stall_s)),
                                ("sections".into(), Json::Num(p.sections as f64)),
                                ("sampled_cpu_s".into(), Json::Num(p.sampled_cpu_s)),
                                ("samples".into(), Json::Num(p.samples as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// The report's latency rows as CSV (stage, p50, p95, p99, mean, max):
    /// the three retrieval stages plus the four generation stages (all-zero
    /// rows when generation is disabled, so the arity is stable). The
    /// per-tenant breakdown is a differently-shaped table and gets its own
    /// file: see [`ServeReport::tenants_to_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("stage,p50,p95,p99,mean,max\n");
        for (stage, s) in self.stages() {
            out.push_str(&format!(
                "{stage},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                s.p50, s.p95, s.p99, s.mean, s.max
            ));
        }
        out
    }

    /// The per-tenant breakdown as CSV, one row per tenant.
    pub fn tenants_to_csv(&self) -> String {
        let mut out = String::from(
            "tenant,weight,admitted,rejected,completed,queue_p99,search_p50,search_p99,\
             e2e_p99,slo,attainment,ttft_p50,ttft_p99,ttft_attainment,gen_sheds,hit_rate\n",
        );
        for t in &self.tenants {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4},{:.6},{:.6},{:.4},{},{:.4}\n",
                t.tenant.0,
                t.weight,
                t.admitted,
                t.rejected,
                t.completed,
                t.queue.p99,
                t.search.p50,
                t.search.p99,
                t.e2e.p99,
                t.slo_target,
                t.slo_attainment,
                t.ttft.p50,
                t.ttft.p99,
                t.ttft_attainment,
                t.gen_sheds,
                t.mean_hit_rate
            ));
        }
        out
    }

    /// The physical-tiering snapshot as CSV: one header plus one row
    /// (empty string when the runtime has no tiered store).
    pub fn store_to_csv(&self) -> String {
        let Some(s) = &self.store else {
            return String::new();
        };
        let mut out = String::from(
            "fast_clusters,total_clusters,fast_bytes,cold_bytes,fast_residency,\
             hot_probes,cold_probes,hot_bytes_scanned,cold_bytes_scanned,\
             bytes_promoted,bytes_demoted,store_generation,snapshot_waits,\
             opened_existing,migrations\n",
        );
        out.push_str(&format!(
            "{},{},{},{},{:.4},{},{},{},{},{},{},{},{},{},{}\n",
            s.fast_clusters,
            s.total_clusters,
            s.fast_bytes,
            s.cold_bytes,
            s.fast_residency,
            s.hot_probes,
            s.cold_probes,
            s.hot_bytes_scanned,
            s.cold_bytes_scanned,
            s.bytes_promoted,
            s.bytes_demoted,
            s.store_generation,
            s.snapshot_waits,
            s.opened_existing,
            s.migrations.len()
        ));
        out
    }
}
