//! Aggregate serving report: the real-tier analogue of the simulator's
//! `RunResult`, feeding the same figure harnesses (latency variance, SLO
//! attainment, dispatcher behaviour), with a per-tenant breakdown for
//! multi-tenant runs.

use vlite_metrics::{fmt_seconds, Summary, Table};

use crate::config::TenantSpec;
use crate::control::RepartitionEvent;
use crate::http::json::Json;
use crate::queue::QueueStats;
use crate::request::TenantId;
use crate::server::ServeMetrics;

/// One tenant's slice of a serving run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant this row describes.
    pub tenant: TenantId,
    /// Configured weighted-fair share.
    pub weight: u32,
    /// Configured bounded queue capacity.
    pub queue_capacity: usize,
    /// Requests admitted into this tenant's queue.
    pub admitted: u64,
    /// Requests rejected against this tenant's quota.
    pub rejected: u64,
    /// Requests fully served for this tenant.
    pub completed: u64,
    /// Deepest backlog this tenant's queue reached.
    pub peak_queue_depth: usize,
    /// Queueing delay (admission → batch launch).
    pub queue: Summary,
    /// Search execution (batch launch → merged top-k).
    pub search: Summary,
    /// End-to-end latency (admission → merged top-k).
    pub e2e: Summary,
    /// This tenant's search-stage SLO target in seconds.
    pub slo_target: f64,
    /// Fraction of this tenant's requests whose search stage met its SLO.
    pub slo_attainment: f64,
    /// Admission → first token for this tenant's requests (zero samples on
    /// retrieval-only servers).
    pub ttft: Summary,
    /// Fraction of this tenant's requests whose TTFT met the global
    /// `slo_ttft` target (`0.0` when generation is disabled).
    pub ttft_attainment: f64,
    /// Mean cache hit rate across this tenant's served requests.
    pub mean_hit_rate: f64,
}

/// Snapshot of everything a serving run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests admitted into the queue (all tenants).
    pub admitted: u64,
    /// Requests rejected by admission control (all tenants).
    pub rejected: u64,
    /// Requests fully served (merged + delivered).
    pub completed: u64,
    /// Deepest total queue backlog observed (summed over tenants).
    pub peak_queue_depth: usize,
    /// Queueing delay (admission → batch launch).
    pub queue: Summary,
    /// Search execution (batch launch → merged top-k).
    pub search: Summary,
    /// End-to-end latency (admission → merged top-k).
    pub e2e: Summary,
    /// The global search-stage SLO target in seconds.
    pub slo_target: f64,
    /// Fraction of requests whose search stage met the global SLO.
    pub slo_attainment: f64,
    /// Admission → first token (zero samples on retrieval-only servers).
    pub ttft: Summary,
    /// Merged top-k → prefill start (generation-stage queueing).
    pub gen_queue: Summary,
    /// Prefill start → first token.
    pub prefill: Summary,
    /// First token → last token.
    pub decode: Summary,
    /// The TTFT SLO target in seconds; `None` when generation is disabled.
    pub slo_ttft: Option<f64>,
    /// Fraction of requests whose TTFT met `slo_ttft` (`0.0` when
    /// generation is disabled).
    pub ttft_attainment: f64,
    /// Batches launched.
    pub batches: u64,
    /// Mean batch size (dynamic on-demand batching).
    pub mean_batch: f64,
    /// Largest batch absorbed in one launch.
    pub max_batch: usize,
    /// Mean cache hit rate across served requests.
    pub mean_hit_rate: f64,
    /// Per-tenant breakdown, indexed by [`TenantId`].
    pub tenants: Vec<TenantReport>,
    /// Online repartitions performed by the control loop, in order.
    pub repartitions: Vec<RepartitionEvent>,
    /// Placement generation at snapshot time.
    pub generation: u64,
    /// Worker scans that panicked and were degraded to empty partials
    /// (0 in healthy runs; nonzero means results were incomplete).
    pub worker_panics: u64,
}

impl ServeReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        metrics: &ServeMetrics,
        queue_stats: QueueStats,
        specs: &[TenantSpec],
        repartitions: Vec<RepartitionEvent>,
        slo_target: f64,
        slo_ttft: Option<f64>,
        generation: u64,
        worker_panics: u64,
    ) -> ServeReport {
        let mut queue_lat = metrics.queue_lat.clone();
        let mut search_lat = metrics.search_lat.clone();
        let mut e2e_lat = metrics.e2e_lat.clone();
        let completed = metrics.completed;
        let tenants = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let m = &metrics.tenants[i];
                let q = &queue_stats.tenants[i];
                TenantReport {
                    tenant: TenantId(i as u16),
                    weight: spec.weight,
                    queue_capacity: spec.queue_capacity,
                    admitted: q.admitted,
                    rejected: q.rejected,
                    completed: m.completed,
                    peak_queue_depth: q.peak_depth,
                    queue: m.queue_lat.clone().summary(),
                    search: m.search_lat.clone().summary(),
                    e2e: m.e2e_lat.clone().summary(),
                    slo_target: spec.slo_search,
                    slo_attainment: m.slo.attainment(),
                    ttft: m.ttft_lat.clone().summary(),
                    ttft_attainment: m.ttft_slo.attainment(),
                    mean_hit_rate: if m.completed == 0 {
                        0.0
                    } else {
                        m.hit_sum / m.completed as f64
                    },
                }
            })
            .collect();
        ServeReport {
            admitted: queue_stats.admitted,
            rejected: queue_stats.rejected,
            completed,
            peak_queue_depth: queue_stats.peak_depth,
            queue: queue_lat.summary(),
            search: search_lat.summary(),
            e2e: e2e_lat.summary(),
            slo_target,
            slo_attainment: metrics.slo.attainment(),
            ttft: metrics.ttft_lat.clone().summary(),
            gen_queue: metrics.gen_queue_lat.clone().summary(),
            prefill: metrics.prefill_lat.clone().summary(),
            decode: metrics.decode_lat.clone().summary(),
            slo_ttft,
            ttft_attainment: metrics.ttft_slo.attainment(),
            batches: metrics.batches,
            mean_batch: if metrics.batches == 0 {
                0.0
            } else {
                metrics.batched_requests as f64 / metrics.batches as f64
            },
            max_batch: metrics.max_batch,
            mean_hit_rate: if completed == 0 {
                0.0
            } else {
                metrics.hit_sum / completed as f64
            },
            tenants,
            repartitions,
            generation,
            worker_panics,
        }
    }

    /// Renders the report as aligned text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests: admitted {}  rejected {}  completed {}  peak queue depth {}\n",
            self.admitted, self.rejected, self.completed, self.peak_queue_depth
        ));
        out.push_str(&format!(
            "batching: {} batches, mean {:.1}, max {}  |  mean hit rate {:.3}  |  generation {}\n",
            self.batches, self.mean_batch, self.max_batch, self.mean_hit_rate, self.generation
        ));
        out.push_str(&format!(
            "search SLO {}: attainment {:.1}%\n",
            fmt_seconds(self.slo_target),
            100.0 * self.slo_attainment
        ));
        if let Some(slo_ttft) = self.slo_ttft {
            out.push_str(&format!(
                "TTFT SLO {}: attainment {:.1}% (co-scheduled generation)\n",
                fmt_seconds(slo_ttft),
                100.0 * self.ttft_attainment
            ));
        }
        if self.worker_panics > 0 {
            out.push_str(&format!(
                "WARNING: {} worker scan(s) panicked and returned degraded partials\n",
                self.worker_panics
            ));
        }
        out.push('\n');

        let mut latencies = Table::new(vec!["stage", "p50", "p95", "p99", "mean", "max"]);
        for (stage, s) in self.stages() {
            latencies.row(vec![
                stage.to_string(),
                fmt_seconds(s.p50),
                fmt_seconds(s.p95),
                fmt_seconds(s.p99),
                fmt_seconds(s.mean),
                fmt_seconds(s.max),
            ]);
        }
        out.push_str(&latencies.render());

        if self.tenants.len() > 1 {
            out.push('\n');
            out.push_str("per-tenant (weighted-fair admission and draining):\n");
            out.push_str(&self.tenant_table().render());
        }

        if self.repartitions.is_empty() {
            out.push_str("\nonline repartitions: none\n");
        } else {
            let mut events = Table::new(vec![
                "gen",
                "at request",
                "obs by tenant",
                "coverage",
                "hot overlap",
                "queue@swap",
                "rebuild",
            ]);
            for e in &self.repartitions {
                let by_tenant = e
                    .observed_by_tenant
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join("/");
                events.row(vec![
                    e.generation.to_string(),
                    e.at_request.to_string(),
                    by_tenant,
                    format!(
                        "{:.1}% -> {:.1}%",
                        100.0 * e.old_coverage,
                        100.0 * e.new_coverage
                    ),
                    format!("{:.2}", e.hot_overlap),
                    e.queue_depth_at_swap.to_string(),
                    fmt_seconds(e.duration.as_secs_f64()),
                ]);
            }
            out.push('\n');
            out.push_str("online repartitions (queue never drained):\n");
            out.push_str(&events.render());
        }
        out
    }

    /// The report's latency stages in fixed order: the retrieval stages,
    /// then the generation stages (all-zero summaries when generation is
    /// disabled). The render/CSV row set, stable for parsers.
    pub fn stages(&self) -> [(&'static str, &Summary); 7] {
        [
            ("queue", &self.queue),
            ("search", &self.search),
            ("e2e", &self.e2e),
            ("gen_queue", &self.gen_queue),
            ("prefill", &self.prefill),
            ("decode", &self.decode),
            ("ttft", &self.ttft),
        ]
    }

    /// The per-tenant breakdown as an aligned table (one row per tenant).
    pub fn tenant_table(&self) -> Table {
        let mut table = Table::new(vec![
            "tenant",
            "weight",
            "admitted",
            "rejected",
            "completed",
            "queue p99",
            "search p50",
            "search p99",
            "e2e p99",
            "SLO",
            "attainment",
            "ttft p99",
            "ttft att.",
            "hit rate",
        ]);
        for t in &self.tenants {
            table.row(vec![
                t.tenant.to_string(),
                t.weight.to_string(),
                t.admitted.to_string(),
                t.rejected.to_string(),
                t.completed.to_string(),
                fmt_seconds(t.queue.p99),
                fmt_seconds(t.search.p50),
                fmt_seconds(t.search.p99),
                fmt_seconds(t.e2e.p99),
                fmt_seconds(t.slo_target),
                format!("{:.1}%", 100.0 * t.slo_attainment),
                if self.slo_ttft.is_some() {
                    fmt_seconds(t.ttft.p99)
                } else {
                    "-".into()
                },
                if self.slo_ttft.is_some() {
                    format!("{:.1}%", 100.0 * t.ttft_attainment)
                } else {
                    "-".into()
                },
                format!("{:.3}", t.mean_hit_rate),
            ]);
        }
        table
    }

    /// The whole report as a JSON value — what `GET /v1/report` serves.
    /// Field names mirror the struct exactly so the wire format needs no
    /// separate documentation.
    pub fn to_json(&self) -> Json {
        fn summary_json(s: &Summary) -> Json {
            Json::Obj(vec![
                ("count".into(), Json::Num(s.count as f64)),
                ("mean".into(), Json::Num(s.mean)),
                ("min".into(), Json::Num(s.min)),
                ("max".into(), Json::Num(s.max)),
                ("p50".into(), Json::Num(s.p50)),
                ("p90".into(), Json::Num(s.p90)),
                ("p95".into(), Json::Num(s.p95)),
                ("p99".into(), Json::Num(s.p99)),
            ])
        }
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("tenant".into(), Json::Num(f64::from(t.tenant.0))),
                    ("weight".into(), Json::Num(f64::from(t.weight))),
                    ("queue_capacity".into(), Json::Num(t.queue_capacity as f64)),
                    ("admitted".into(), Json::Num(t.admitted as f64)),
                    ("rejected".into(), Json::Num(t.rejected as f64)),
                    ("completed".into(), Json::Num(t.completed as f64)),
                    (
                        "peak_queue_depth".into(),
                        Json::Num(t.peak_queue_depth as f64),
                    ),
                    ("queue".into(), summary_json(&t.queue)),
                    ("search".into(), summary_json(&t.search)),
                    ("e2e".into(), summary_json(&t.e2e)),
                    ("slo_target".into(), Json::Num(t.slo_target)),
                    ("slo_attainment".into(), Json::Num(t.slo_attainment)),
                    ("ttft".into(), summary_json(&t.ttft)),
                    ("ttft_attainment".into(), Json::Num(t.ttft_attainment)),
                    ("mean_hit_rate".into(), Json::Num(t.mean_hit_rate)),
                ])
            })
            .collect();
        let repartitions = self
            .repartitions
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("generation".into(), Json::Num(e.generation as f64)),
                    ("at_request".into(), Json::Num(e.at_request as f64)),
                    (
                        "observed_by_tenant".into(),
                        Json::Arr(
                            e.observed_by_tenant
                                .iter()
                                .map(|&n| Json::Num(n as f64))
                                .collect(),
                        ),
                    ),
                    ("old_coverage".into(), Json::Num(e.old_coverage)),
                    ("new_coverage".into(), Json::Num(e.new_coverage)),
                    ("hot_overlap".into(), Json::Num(e.hot_overlap)),
                    (
                        "queue_depth_at_swap".into(),
                        Json::Num(e.queue_depth_at_swap as f64),
                    ),
                    ("duration_s".into(), Json::Num(e.duration.as_secs_f64())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("admitted".into(), Json::Num(self.admitted as f64)),
            ("rejected".into(), Json::Num(self.rejected as f64)),
            ("completed".into(), Json::Num(self.completed as f64)),
            (
                "peak_queue_depth".into(),
                Json::Num(self.peak_queue_depth as f64),
            ),
            ("queue".into(), summary_json(&self.queue)),
            ("search".into(), summary_json(&self.search)),
            ("e2e".into(), summary_json(&self.e2e)),
            ("slo_target".into(), Json::Num(self.slo_target)),
            ("slo_attainment".into(), Json::Num(self.slo_attainment)),
            ("ttft".into(), summary_json(&self.ttft)),
            ("gen_queue".into(), summary_json(&self.gen_queue)),
            ("prefill".into(), summary_json(&self.prefill)),
            ("decode".into(), summary_json(&self.decode)),
            (
                "slo_ttft".into(),
                match self.slo_ttft {
                    Some(s) => Json::Num(s),
                    None => Json::Null,
                },
            ),
            ("ttft_attainment".into(), Json::Num(self.ttft_attainment)),
            ("batches".into(), Json::Num(self.batches as f64)),
            ("mean_batch".into(), Json::Num(self.mean_batch)),
            ("max_batch".into(), Json::Num(self.max_batch as f64)),
            ("mean_hit_rate".into(), Json::Num(self.mean_hit_rate)),
            ("tenants".into(), Json::Arr(tenants)),
            ("repartitions".into(), Json::Arr(repartitions)),
            ("generation".into(), Json::Num(self.generation as f64)),
            ("worker_panics".into(), Json::Num(self.worker_panics as f64)),
        ])
    }

    /// The report's latency rows as CSV (stage, p50, p95, p99, mean, max):
    /// the three retrieval stages plus the four generation stages (all-zero
    /// rows when generation is disabled, so the arity is stable). The
    /// per-tenant breakdown is a differently-shaped table and gets its own
    /// file: see [`ServeReport::tenants_to_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("stage,p50,p95,p99,mean,max\n");
        for (stage, s) in self.stages() {
            out.push_str(&format!(
                "{stage},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                s.p50, s.p95, s.p99, s.mean, s.max
            ));
        }
        out
    }

    /// The per-tenant breakdown as CSV, one row per tenant.
    pub fn tenants_to_csv(&self) -> String {
        let mut out = String::from(
            "tenant,weight,admitted,rejected,completed,queue_p99,search_p50,search_p99,\
             e2e_p99,slo,attainment,ttft_p50,ttft_p99,ttft_attainment,hit_rate\n",
        );
        for t in &self.tenants {
            out.push_str(&format!(
                "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4},{:.6},{:.6},{:.4},{:.4}\n",
                t.tenant.0,
                t.weight,
                t.admitted,
                t.rejected,
                t.completed,
                t.queue.p99,
                t.search.p50,
                t.search.p99,
                t.e2e.p99,
                t.slo_target,
                t.slo_attainment,
                t.ttft.p50,
                t.ttft.p99,
                t.ttft_attainment,
                t.mean_hit_rate
            ));
        }
        out
    }
}
