//! Aggregate serving report: the real-tier analogue of the simulator's
//! `RunResult`, feeding the same figure harnesses (latency variance, SLO
//! attainment, dispatcher behaviour).

use vlite_metrics::{fmt_seconds, Summary, Table};

use crate::control::RepartitionEvent;
use crate::queue::QueueStats;
use crate::server::ServeMetrics;

/// Snapshot of everything a serving run measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Requests fully served (merged + delivered).
    pub completed: u64,
    /// Deepest queue backlog observed.
    pub peak_queue_depth: usize,
    /// Queueing delay (admission → batch launch).
    pub queue: Summary,
    /// Search execution (batch launch → merged top-k).
    pub search: Summary,
    /// End-to-end latency (admission → merged top-k).
    pub e2e: Summary,
    /// The search-stage SLO target in seconds.
    pub slo_target: f64,
    /// Fraction of requests whose search stage met the SLO.
    pub slo_attainment: f64,
    /// Batches launched.
    pub batches: u64,
    /// Mean batch size (dynamic on-demand batching).
    pub mean_batch: f64,
    /// Largest batch absorbed in one launch.
    pub max_batch: usize,
    /// Mean cache hit rate across served requests.
    pub mean_hit_rate: f64,
    /// Online repartitions performed by the control loop, in order.
    pub repartitions: Vec<RepartitionEvent>,
    /// Placement generation at snapshot time.
    pub generation: u64,
    /// Worker scans that panicked and were degraded to empty partials
    /// (0 in healthy runs; nonzero means results were incomplete).
    pub worker_panics: u64,
}

impl ServeReport {
    pub(crate) fn assemble(
        metrics: &ServeMetrics,
        queue_stats: QueueStats,
        repartitions: Vec<RepartitionEvent>,
        slo_target: f64,
        generation: u64,
        worker_panics: u64,
    ) -> ServeReport {
        let mut queue_lat = metrics.queue_lat.clone();
        let mut search_lat = metrics.search_lat.clone();
        let mut e2e_lat = metrics.e2e_lat.clone();
        let completed = metrics.completed;
        ServeReport {
            admitted: queue_stats.admitted,
            rejected: queue_stats.rejected,
            completed,
            peak_queue_depth: queue_stats.peak_depth,
            queue: queue_lat.summary(),
            search: search_lat.summary(),
            e2e: e2e_lat.summary(),
            slo_target,
            slo_attainment: metrics.slo.attainment(),
            batches: metrics.batches,
            mean_batch: if metrics.batches == 0 {
                0.0
            } else {
                metrics.batched_requests as f64 / metrics.batches as f64
            },
            max_batch: metrics.max_batch,
            mean_hit_rate: if completed == 0 {
                0.0
            } else {
                metrics.hit_sum / completed as f64
            },
            repartitions,
            generation,
            worker_panics,
        }
    }

    /// Renders the report as aligned text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "requests: admitted {}  rejected {}  completed {}  peak queue depth {}\n",
            self.admitted, self.rejected, self.completed, self.peak_queue_depth
        ));
        out.push_str(&format!(
            "batching: {} batches, mean {:.1}, max {}  |  mean hit rate {:.3}  |  generation {}\n",
            self.batches, self.mean_batch, self.max_batch, self.mean_hit_rate, self.generation
        ));
        out.push_str(&format!(
            "search SLO {}: attainment {:.1}%\n",
            fmt_seconds(self.slo_target),
            100.0 * self.slo_attainment
        ));
        if self.worker_panics > 0 {
            out.push_str(&format!(
                "WARNING: {} worker scan(s) panicked and returned degraded partials\n",
                self.worker_panics
            ));
        }
        out.push('\n');

        let mut latencies = Table::new(vec!["stage", "p50", "p95", "p99", "mean", "max"]);
        for (stage, s) in [
            ("queue", &self.queue),
            ("search", &self.search),
            ("e2e", &self.e2e),
        ] {
            latencies.row(vec![
                stage.to_string(),
                fmt_seconds(s.p50),
                fmt_seconds(s.p95),
                fmt_seconds(s.p99),
                fmt_seconds(s.mean),
                fmt_seconds(s.max),
            ]);
        }
        out.push_str(&latencies.render());

        if self.repartitions.is_empty() {
            out.push_str("\nonline repartitions: none\n");
        } else {
            let mut events = Table::new(vec![
                "gen",
                "at request",
                "coverage",
                "hot overlap",
                "queue@swap",
                "rebuild",
            ]);
            for e in &self.repartitions {
                events.row(vec![
                    e.generation.to_string(),
                    e.at_request.to_string(),
                    format!(
                        "{:.1}% -> {:.1}%",
                        100.0 * e.old_coverage,
                        100.0 * e.new_coverage
                    ),
                    format!("{:.2}", e.hot_overlap),
                    e.queue_depth_at_swap.to_string(),
                    fmt_seconds(e.duration.as_secs_f64()),
                ]);
            }
            out.push('\n');
            out.push_str("online repartitions (queue never drained):\n");
            out.push_str(&events.render());
        }
        out
    }

    /// The report's latency rows as CSV (stage, p50, p95, p99, mean, max).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("stage,p50,p95,p99,mean,max\n");
        for (stage, s) in [
            ("queue", &self.queue),
            ("search", &self.search),
            ("e2e", &self.e2e),
        ] {
            out.push_str(&format!(
                "{stage},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                s.p50, s.p95, s.p99, s.mean, s.max
            ));
        }
        out
    }
}
