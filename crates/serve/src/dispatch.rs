//! The threaded dynamic dispatcher (§IV-B2), one-shot form.
//!
//! Moved here from `vlite-core`'s `real.rs` prototype: shard ("GPU")
//! workers scan their pruned probe lists for the whole batch and raise
//! completion flags; the CPU worker scans cold probes query-by-query and
//! pushes each finished query into a channel; the dispatcher waits for all
//! shard flags, then merges and re-ranks each query as it arrives,
//! recording completion order. [`RagServer`](crate::RagServer) runs the
//! same structure with *persistent* workers; this free-standing form serves
//! ad-hoc batches against a [`RealDeployment`] without spinning up the full
//! runtime.

use std::sync::atomic::{AtomicBool, Ordering};

use crossbeam::channel;

use vlite_ann::{merge_sorted, Neighbor, VecSet};
use vlite_core::{RealDeployment, RoutedQuery};

/// Outcome of one dispatched batch.
#[derive(Debug)]
pub struct DispatchOutcome {
    /// Final merged top-k per query (input order).
    pub results: Vec<Vec<Neighbor>>,
    /// Query indices in dispatcher completion order.
    pub completion_order: Vec<usize>,
}

/// Hybrid batched search through the threaded dispatcher against a built
/// deployment. Returns the final top-k per query plus the completion order
/// observed by the dispatcher.
///
/// # Panics
///
/// Panics if `queries` is empty.
pub fn hybrid_search_batch(deployment: &RealDeployment, queries: &VecSet) -> DispatchOutcome {
    assert!(!queries.is_empty(), "batch must be non-empty");
    let routed: Vec<RoutedQuery> = queries
        .iter()
        .map(|q| deployment.router.route(&deployment.probe_global(q)))
        .collect();
    run_dispatcher(&deployment.index, queries, &routed, deployment.config.top_k)
}

/// Runs one batch through shard workers + CPU worker + dispatcher thread.
///
/// Scans use *global* cluster ids (`shard_probes_global`), so the result is
/// identical to a single-path scan of the union probe list — routing only
/// changes who scans what, never what is scanned.
pub fn run_dispatcher(
    index: &vlite_ann::IvfIndex,
    queries: &VecSet,
    routed: &[RoutedQuery],
    k: usize,
) -> DispatchOutcome {
    let n_queries = queries.len();
    let n_shards = routed.first().map_or(0, |r| r.shard_probes.len());
    let shard_flags: Vec<AtomicBool> = (0..n_shards).map(|_| AtomicBool::new(false)).collect();
    // vlite-allow(bounded-queues): one message per shard per batch; the
    // fan-in is bounded by the shard count.
    let (shard_tx, shard_rx) = channel::unbounded::<(usize, Vec<Vec<Neighbor>>)>();
    // vlite-allow(bounded-queues): one message per query in the batch.
    let (cpu_tx, cpu_rx) = channel::unbounded::<(usize, Vec<Neighbor>)>();

    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); n_queries];
    let mut completion_order: Vec<usize> = Vec::with_capacity(n_queries);

    std::thread::scope(|scope| {
        // Shard ("GPU") workers: scan all queries' pruned lists, publish the
        // partials, raise the completion flag.
        for shard in 0..n_shards {
            let tx = shard_tx.clone();
            let flags = &shard_flags;
            scope.spawn(move || {
                let mut partials: Vec<Vec<Neighbor>> = vec![Vec::new(); n_queries];
                for (qi, out) in partials.iter_mut().enumerate() {
                    let lists = &routed[qi].shard_probes_global[shard];
                    if !lists.is_empty() {
                        *out = index.scan_lists(queries.get(qi), lists, k);
                    }
                }
                flags[shard].store(true, Ordering::Release);
                // A closed channel means the dispatcher is gone; exiting
                // quietly beats panicking a scoped worker.
                let _ = tx.send((shard, partials));
            });
        }
        drop(shard_tx);
        // CPU worker: query-by-query cold scan with completion callback.
        scope.spawn(move || {
            for (qi, r) in routed.iter().enumerate() {
                let partial = if r.cpu_probes.is_empty() {
                    Vec::new()
                } else {
                    index.scan_lists(queries.get(qi), &r.cpu_probes, k)
                };
                // The callback: the query has scanned all assigned clusters.
                if cpu_tx.send((qi, partial)).is_err() {
                    return; // dispatcher gone; nothing left to report to
                }
            }
            drop(cpu_tx);
        });
        // Dispatcher: wait for all GPU flags (collecting the partials), then
        // poll the CPU completion queue, merging and re-ranking per query.
        let mut shard_partials: Vec<Vec<Vec<Neighbor>>> =
            vec![vec![Vec::new(); n_queries]; n_shards];
        for _ in 0..n_shards {
            // A worker that died without sending surfaces as Err here; the
            // batch degrades to the partials that did arrive, and the
            // scope join below still propagates the worker's panic.
            let Ok((shard, partials)) = shard_rx.recv() else {
                break;
            };
            debug_assert!(shard_flags[shard].load(Ordering::Acquire));
            shard_partials[shard] = partials;
        }
        while let Ok((qi, cpu_partial)) = cpu_rx.recv() {
            let mut lists: Vec<Vec<Neighbor>> = vec![cpu_partial];
            for partials in &shard_partials {
                lists.push(partials[qi].clone());
            }
            results[qi] = merge_sorted(&lists, k);
            completion_order.push(qi);
        }
    });

    DispatchOutcome {
        results,
        completion_order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlite_core::RealConfig;
    use vlite_workload::{CorpusConfig, SyntheticCorpus};

    fn corpus() -> SyntheticCorpus {
        SyntheticCorpus::generate(&CorpusConfig {
            n_vectors: 6000,
            dim: 16,
            n_centers: 32,
            zipf_exponent: 1.2,
            noise: 0.25,
            seed: 9,
        })
    }

    fn deployment() -> RealDeployment {
        RealDeployment::build(&corpus(), RealConfig::small()).expect("build succeeds")
    }

    #[test]
    fn hybrid_results_match_plain_search_exactly() {
        // Routing partitions the probe list; scanning hot lists on shard
        // workers and cold lists on the CPU must reproduce the single-path
        // scan exactly after the merge.
        let d = deployment();
        let queries = corpus().queries(12, 77);
        let outcome = hybrid_search_batch(&d, &queries);
        for (qi, q) in queries.iter().enumerate() {
            let plain = d.search_flat_path(q);
            assert_eq!(outcome.results[qi], plain, "query {qi} diverged");
        }
    }

    #[test]
    fn dispatcher_completes_every_query_exactly_once() {
        let d = deployment();
        let queries = corpus().queries(9, 31);
        let outcome = hybrid_search_batch(&d, &queries);
        let mut order = outcome.completion_order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..9).collect::<Vec<_>>());
    }
}
